#!/usr/bin/env python3
"""Quickstart: a legitimate TCP user vs. a colluding UDP flooder.

Builds a four-router NetFence deployment around a 800 Kbps bottleneck:

    user ----\                                    /---- victim
              Ra ==== Rbl ---(bottleneck)--- Rbr ==== Rd
    attacker-/                                    \---- colluder

The attacker floods 600 Kbps of UDP toward a colluding receiver that happily
returns congestion policing feedback; the user runs one long TCP transfer to
the victim.  Without NetFence the attacker would starve the TCP flow; with
NetFence both senders converge to roughly half of the bottleneck.

Run:  python examples/quickstart.py
"""

from repro.core import NetFenceEndHost, NetFenceParams
from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.simulator import Topology
from repro.simulator.trace import LinkMonitor, ThroughputMonitor
from repro.transport.traffic import LongRunningTcpApp
from repro.transport.udp import UdpSender, UdpSink

BOTTLENECK_BPS = 800e3
SIM_TIME = 120.0
WARMUP = 40.0


def build_network(params: NetFenceParams, domain: NetFenceDomain) -> Topology:
    """Wire up hosts, access routers, and the bottleneck."""
    topo = Topology()
    queue_factory = netfence_queue_factory(topo.clock, params)

    for name, as_name in [("user", "AS-src"), ("attacker", "AS-src"),
                          ("victim", "AS-dst"), ("colluder", "AS-dst")]:
        topo.add_host(name, as_name=as_name)
    topo.add_router("Ra", as_name="AS-src", router_cls=NetFenceAccessRouter, domain=domain)
    topo.add_router("Rbl", as_name="AS-transit", router_cls=NetFenceRouter, domain=domain)
    topo.add_router("Rbr", as_name="AS-transit", router_cls=NetFenceRouter, domain=domain)
    topo.add_router("Rd", as_name="AS-dst", router_cls=NetFenceAccessRouter, domain=domain)

    topo.add_duplex_link("user", "Ra", 100e6, 0.001)
    topo.add_duplex_link("attacker", "Ra", 100e6, 0.001)
    topo.add_duplex_link("Ra", "Rbl", 100e6, 0.01)
    topo.add_duplex_link("Rbl", "Rbr", BOTTLENECK_BPS, 0.01, queue_factory=queue_factory)
    topo.add_duplex_link("Rbr", "Rd", 100e6, 0.01)
    topo.add_duplex_link("victim", "Rd", 100e6, 0.001)
    topo.add_duplex_link("colluder", "Rd", 100e6, 0.001)
    topo.finalize()
    return topo


def main() -> None:
    params = NetFenceParams()
    domain = NetFenceDomain(params=params)
    topo = build_network(params, domain)
    sim = topo.clock

    # End-host shims: every NetFence sender/receiver gets one.  The colluder
    # gladly returns feedback to the attacker (that is what makes this a
    # colluding attack rather than one the victim could simply block).
    for host in ("user", "attacker"):
        NetFenceEndHost(sim, topo.host(host), params=params)
    for host in ("victim", "colluder"):
        NetFenceEndHost(sim, topo.host(host), params=params, send_feedback_packets=True)

    monitor = ThroughputMonitor(sim, start_time=WARMUP)
    link_monitor = LinkMonitor(sim, topo.link_between("Rbl", "Rbr"))
    link_monitor.start()

    UdpSink(sim, topo.host("colluder"), monitor=monitor)
    attacker = UdpSender(sim, topo.host("attacker"), "colluder", rate_bps=600e3)
    attacker.start()

    app = LongRunningTcpApp(sim, topo.host("user"), topo.host("victim"), monitor=monitor)
    app.start(at=0.5)

    print(f"Simulating {SIM_TIME:.0f} s of a colluding flood on a "
          f"{BOTTLENECK_BPS / 1e3:.0f} Kbps bottleneck...")
    topo.run(until=SIM_TIME)
    monitor.stop()
    link_monitor.stop()

    user_kbps = monitor.throughput_bps("user") / 1e3
    attacker_kbps = monitor.throughput_bps("attacker") / 1e3
    rbl = topo.router("Rbl")
    bottleneck_name = topo.link_between("Rbl", "Rbr").name

    print(f"\nBottleneck monitoring cycle active: "
          f"{rbl.in_monitoring_cycle(bottleneck_name)}")
    print(f"Bottleneck utilization:              {link_monitor.mean_utilization:.2f}")
    print(f"Legitimate TCP user throughput:      {user_kbps:8.1f} Kbps")
    print(f"UDP attacker throughput:             {attacker_kbps:8.1f} Kbps")
    print(f"Fair share (C / 2 senders):          {BOTTLENECK_BPS / 2 / 1e3:8.1f} Kbps")
    ratio = user_kbps / attacker_kbps if attacker_kbps else float("inf")
    print(f"Throughput ratio (user / attacker):  {ratio:8.2f}")
    if ratio > 0.5:
        print("\nNetFence confined the flooder to roughly its fair share.")
    else:
        print("\nUnexpected: the attacker still dominates — check the parameters.")


if __name__ == "__main__":
    main()
