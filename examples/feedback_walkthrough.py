#!/usr/bin/env python3
"""A guided tour of NetFence's secure congestion policing feedback.

This example uses the low-level API directly (no simulation): it stamps the
three kinds of feedback, shows the header wire sizes from Fig. 6, and then
plays attacker by trying to forge, replay, and tamper with feedback — all of
which the access router's validation rejects.

Run:  python examples/feedback_walkthrough.py
"""

from repro.core.domain import NetFenceDomain
from repro.core.feedback import (
    BottleneckStamper,
    Feedback,
    FeedbackAction,
    FeedbackMode,
    FeedbackStamper,
)
from repro.core.header import NetFenceHeader
from repro.core.params import NetFenceParams
from repro.crypto.keys import AccessRouterSecret

SRC, DST = "alice", "bob"
BOTTLENECK_LINK = "Rbl->Rbr"
BOTTLENECK_AS = "AS-transit"
ACCESS_AS = "AS-alice"


def main() -> None:
    params = NetFenceParams()
    domain = NetFenceDomain(params=params)
    domain.register_link(BOTTLENECK_LINK, BOTTLENECK_AS)

    secret = AccessRouterSecret("Ra-alice")
    access = FeedbackStamper(secret, domain.key_registry, ACCESS_AS)
    bottleneck = BottleneckStamper(domain.key_registry, BOTTLENECK_AS)

    now = 100.0
    print("1. The access router stamps nop feedback into Alice's request packet.")
    nop = access.stamp_nop(SRC, DST, now)
    print(f"   feedback = {nop.describe()}, MAC = {nop.mac.hex()}")
    print(f"   header wire size: {NetFenceHeader(feedback=nop, returned=nop).wire_size()} bytes "
          "(the 20-byte common case of Fig. 6)")

    print("\n2. The bottleneck link enters the mon state and replaces nop with L↓.")
    decr = bottleneck.stamp_decr(nop, SRC, DST, ACCESS_AS, BOTTLENECK_LINK)
    print(f"   feedback = {decr.describe()}, MAC = {decr.mac.hex()}")
    print(f"   header wire size: {NetFenceHeader(feedback=decr, returned=decr).wire_size()} bytes "
          "(the 28-byte worst case)")

    print("\n3. Bob returns the feedback; Alice presents it; the access router validates it.")
    ok = access.validate(decr, SRC, DST, now + 0.1, params.feedback_expiration,
                         link_as=domain.as_for_link(BOTTLENECK_LINK))
    print(f"   validation result: {ok}")

    print("\n4. The access router later stamps L↑ when the link is no longer overloaded.")
    incr = access.stamp_incr(SRC, DST, BOTTLENECK_LINK, now + 2.0)
    print(f"   feedback = {incr.describe()}, valid = "
          f"{access.validate(incr, SRC, DST, now + 2.1, params.feedback_expiration)}")

    print("\n5. Attacks that must fail:")
    forged = Feedback(mode=FeedbackMode.MON, link=BOTTLENECK_LINK,
                      action=FeedbackAction.INCR, ts=now + 2.0, mac=b"\x00" * 4)
    print(f"   forged MAC accepted?          "
          f"{access.validate(forged, SRC, DST, now + 2.1, params.feedback_expiration)}")

    replayed = incr.copy()
    print(f"   replay for another sender?    "
          f"{access.validate(replayed, 'mallory', DST, now + 2.1, params.feedback_expiration)}")

    stale = incr.copy()
    print(f"   expired feedback accepted?    "
          f"{access.validate(stale, SRC, DST, now + 2.0 + params.feedback_expiration + 1.0, params.feedback_expiration)}")

    upgraded = decr.copy()
    upgraded.action = FeedbackAction.INCR
    print(f"   L↓ relabelled as L↑ accepted? "
          f"{access.validate(upgraded, SRC, DST, now + 0.1, params.feedback_expiration, link_as=BOTTLENECK_AS)}")

    print("\nOnly the genuine feedback validates — that is the whole trick that lets")
    print("NetFence police senders without keeping per-host state at the bottleneck.")


if __name__ == "__main__":
    main()
