#!/usr/bin/env python3
"""Strategic on-off (shrew) attacks against NetFence (Fig. 11 in miniature).

Attackers synchronize bursts — full rate for ``Ton`` seconds, silence for
``Toff`` — hoping to congest the link while keeping their *average* rate
low.  NetFence's leaky-bucket rate limiters and the 2·Ilim feedback
hysteresis mean the burst shape cannot take a legitimate user below its fair
share; longer off-periods just hand the idle capacity to the TCP users.

Run:  python examples/onoff_attack.py
"""

from repro.experiments.scenarios import DumbbellScenarioConfig, run_dumbbell_scenario

CASES = [
    ("always on", None),
    ("Ton=0.5s Toff=1.5s", (0.5, 1.5)),
    ("Ton=4s   Toff=10s", (4.0, 10.0)),
    ("Ton=4s   Toff=50s", (4.0, 50.0)),
]


def main() -> None:
    bottleneck = 1.2e6
    senders = 12
    fair = bottleneck / senders / 1e3
    print("Synchronized on-off UDP attacks against NetFence "
          f"(fair share {fair:.0f} Kbps):\n")
    print(f"{'attack shape':22s} {'avg user kbps':>14s}")
    for label, pattern in CASES:
        config = DumbbellScenarioConfig(
            system="netfence",
            num_source_as=3,
            hosts_per_as=4,
            bottleneck_bps=bottleneck,
            workload="longrun",
            attack_type="regular",
            attack_rate_bps=1.0e6,
            attack_on_off=pattern,
            num_colluders=9,
            sim_time=200.0,
            warmup=80.0,
        )
        result = run_dumbbell_scenario(config)
        print(f"{label:22s} {result.avg_user_throughput_bps / 1e3:14.1f}")
    print("\nExpected shape: the user never drops below the always-on fair share,")
    print("and longer off-periods push user throughput well above it.")


if __name__ == "__main__":
    main()
