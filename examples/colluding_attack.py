#!/usr/bin/env python3
"""Colluding sender–receiver floods (Fig. 9a in miniature).

When attackers pair up with colluding receivers, capabilities and filters do
not help: the receivers authorize everything.  The defense must fall back to
fairness.  This example runs the same colluding flood against NetFence and
TVA+ and reports the throughput ratio between an average legitimate TCP user
and an average attacker.

Run:  python examples/colluding_attack.py
"""

from repro.experiments.scenarios import DumbbellScenarioConfig, run_dumbbell_scenario


def main() -> None:
    print("Colluding regular-traffic flood, 25% users / 75% attackers "
          "(small-scale Fig. 9a):\n")
    print(f"{'system':10s} {'user kbps':>10s} {'attacker kbps':>14s} "
          f"{'ratio':>7s} {'utilization':>12s}")
    for system in ("netfence", "fq", "tva"):
        config = DumbbellScenarioConfig(
            system=system,
            num_source_as=3,
            hosts_per_as=4,
            bottleneck_bps=1.2e6,
            workload="longrun",
            attack_type="regular",
            attack_rate_bps=400e3,
            num_colluders=9,
            sim_time=200.0,
            warmup=100.0,
        )
        result = run_dumbbell_scenario(config)
        print(f"{system:10s} {result.avg_user_throughput_bps / 1e3:10.1f} "
              f"{result.avg_attacker_throughput_bps / 1e3:14.1f} "
              f"{result.throughput_ratio:7.2f} {result.bottleneck_utilization:12.2f}")
    fair = 1.2e6 / 12 / 1e3
    print(f"\nPer-sender fair share: {fair:.0f} Kbps.")
    print("Expected shape: NetFence and FQ hold every sender near the fair share")
    print("(ratio close to 1); TVA+ collapses to roughly 1/3 because its regular")
    print("channel is fair-queued per *destination* and the nine colluding")
    print("receivers soak up nine tenths of the link.")


if __name__ == "__main__":
    main()
