#!/usr/bin/env python3
"""Unwanted-traffic flooding (Fig. 8 in miniature).

Attackers flood the victim directly; the victim identifies them and uses each
defense system's mechanism to cut them off — NetFence withholds congestion
policing feedback, TVA+ denies capabilities, StopIt installs filters, and FQ
has nothing but per-sender fair queuing.  Legitimate users keep fetching a
20 KB file from the victim; the number that matters is how long a fetch takes.

Run:  python examples/unwanted_flooding.py
"""

from repro.experiments.scenarios import DumbbellScenarioConfig, run_dumbbell_scenario

SYSTEMS = ("stopit", "tva", "netfence", "fq")


def main() -> None:
    print("20 KB file transfers while the victim is being flooded "
          "(small-scale Fig. 8):\n")
    print(f"{'system':10s} {'avg transfer time':>18s} {'completion':>12s}")
    for system in SYSTEMS:
        attack_type = "request" if system in ("netfence", "tva") else "regular"
        config = DumbbellScenarioConfig(
            system=system,
            num_source_as=3,
            hosts_per_as=4,
            legit_per_as=1,
            bottleneck_bps=1.2e6,
            workload="files",
            file_bytes=20_000,
            attack_type=attack_type,
            attack_rate_bps=400e3,
            victim_blocks_attackers=True,
            num_colluders=0,
            sim_time=60.0,
            warmup=0.0,
        )
        result = run_dumbbell_scenario(config)
        print(f"{system:10s} {result.average_transfer_time:15.2f} s "
              f"{result.completion_ratio:12.2f}")
    print("\nExpected shape: StopIt fastest (filters near the source), TVA+ close")
    print("behind, NetFence roughly one second slower (the level-0 request packet")
    print("must back off once), and FQ much slower because the attack traffic is")
    print("never removed — it only gets squeezed to its fair share.")


if __name__ == "__main__":
    main()
