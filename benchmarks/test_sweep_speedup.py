"""Sweep engine benchmarks: parallel speedup and serial/parallel identity.

Two properties of :mod:`repro.experiments.sweep` are recorded here:

* ``--jobs N`` is actually faster: a multi-point sweep of latency-bound
  points must complete at least 1.8× faster with four workers than serially.
  The points sleep rather than burn CPU so the measurement captures the
  engine's dispatch overhead and scaling even on single-core CI runners.
* parallel execution is *safe*: real scenario points run in worker processes
  produce rows byte-identical to the serial path (each point builds its own
  simulator and draws randomness only from the spec's seed).
"""

import time

from repro.experiments import fig8_unwanted, fig9_colluding
from repro.experiments.sweep import ScenarioSpec, merge_rows, run_sweep


def _timed(specs, jobs):
    start = time.perf_counter()
    rows = merge_rows(run_sweep(specs, jobs=jobs))
    return rows, time.perf_counter() - start


def test_sweep_parallel_speedup():
    """Serial vs ``--jobs 4`` wall time on an eight-point sweep."""
    specs = [ScenarioSpec.make("bench_sleep", seed=i, duration=0.25, payload=i)
             for i in range(8)]
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=4)
    speedup = serial_s / parallel_s
    print(f"\nsweep wall time: serial {serial_s:.2f}s, --jobs 4 {parallel_s:.2f}s "
          f"-> {speedup:.2f}x speedup")
    assert parallel_rows == serial_rows
    assert speedup >= 1.8


def test_fig8_parallel_rows_identical_to_serial():
    """The Fig. 8 quick sweep is byte-identical under ``--jobs 2``."""
    specs = fig8_unwanted.grid(scale_steps=fig8_unwanted.SCALE_STEPS[:2],
                               sim_time=40.0)
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=2)
    print(f"\nfig8 quick sweep: serial {serial_s:.1f}s, --jobs 2 {parallel_s:.1f}s")
    assert [row.as_tuple() for row in parallel_rows] \
        == [row.as_tuple() for row in serial_rows]
    assert parallel_rows == serial_rows


def test_fig9_parallel_rows_identical_to_serial():
    """A reduced Fig. 9 sweep (both workloads) is byte-identical under --jobs 2.

    The full quick grid is exercised by CI's sweep smoke; this check keeps the
    benchmark suite's runtime bounded while still covering both workloads and
    every defense system through the worker-process path.
    """
    specs = fig9_colluding.grid(scale_steps=fig9_colluding.SCALE_STEPS[:1],
                                sim_time=60.0, warmup=30.0)
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=2)
    print(f"\nfig9 reduced sweep: serial {serial_s:.1f}s, --jobs 2 {parallel_s:.1f}s")
    assert [row.as_tuple() for row in parallel_rows] \
        == [row.as_tuple() for row in serial_rows]
    assert parallel_rows == serial_rows
