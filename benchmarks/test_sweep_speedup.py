"""Sweep engine benchmarks: parallel speedup and serial/parallel identity.

Two properties of :mod:`repro.experiments.sweep` are recorded here:

* ``--jobs N`` is actually faster: a multi-point sweep of latency-bound
  points must complete at least 1.8× faster with four workers than serially.
  The points sleep rather than burn CPU so the measurement captures the
  engine's dispatch overhead and scaling even on single-core CI runners.
* parallel execution is *safe*: real scenario points run in worker processes
  produce rows byte-identical to the serial path (each point builds its own
  simulator and draws randomness only from the spec's seed).

Every parallel run here commits through a :class:`repro.store.ResultStore`,
and each test folds the store's per-point wall times into a
``BENCH_sweep.json`` perf-trajectory artifact (section per benchmark) —
the feedstock for hot-path profiling of the simulator loop.  Set
``BENCH_SWEEP_PATH`` to relocate the artifact.
"""

import time

from bench_artifact import emit as _emit
from repro.experiments import fig6_scaling, fig8_unwanted, fig9_colluding
from repro.experiments.sweep import ScenarioSpec, merge_rows, run_sweep
from repro.store import ResultStore


def _trajectory(store):
    """Per-point wall times as recorded by the result store."""
    return [
        {"experiment": p["experiment"], "seed": p["seed"], "params": p["params"],
         "elapsed_s": round(p["elapsed_s"], 4), "worker_id": p["worker_id"]}
        for p in store.perf_trajectory()
    ]


def _timed(specs, jobs, cache=None):
    start = time.perf_counter()
    rows = merge_rows(run_sweep(specs, jobs=jobs, cache=cache))
    return rows, time.perf_counter() - start


def test_sweep_parallel_speedup(tmp_path):
    """Serial vs ``--jobs 4`` wall time on an eight-point sweep."""
    specs = [ScenarioSpec.make("bench_sleep", seed=i, duration=0.25, payload=i)
             for i in range(8)]
    store = ResultStore(str(tmp_path / "speedup.sqlite"))
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=4, cache=store)
    speedup = serial_s / parallel_s
    print(f"\nsweep wall time: serial {serial_s:.2f}s, --jobs 4 {parallel_s:.2f}s "
          f"-> {speedup:.2f}x speedup")
    _emit("bench_sleep_speedup", {
        "serial_s": round(serial_s, 3), "parallel_s": round(parallel_s, 3),
        "jobs": 4, "speedup": round(speedup, 2), "points": _trajectory(store),
    })
    assert parallel_rows == serial_rows
    assert speedup >= 1.8


def test_fig8_parallel_rows_identical_to_serial(tmp_path):
    """The Fig. 8 quick sweep is byte-identical under ``--jobs 2``."""
    specs = fig8_unwanted.grid(scale_steps=fig8_unwanted.SCALE_STEPS[:2],
                               sim_time=40.0)
    store = ResultStore(str(tmp_path / "fig8.sqlite"))
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=2, cache=store)
    print(f"\nfig8 quick sweep: serial {serial_s:.1f}s, --jobs 2 {parallel_s:.1f}s")
    _emit("fig8_quick", {"serial_s": round(serial_s, 3),
                         "parallel_s": round(parallel_s, 3), "jobs": 2,
                         "points": _trajectory(store)})
    assert [row.as_tuple() for row in parallel_rows] \
        == [row.as_tuple() for row in serial_rows]
    assert parallel_rows == serial_rows


def test_fig6_point_wall_time_recorded(tmp_path):
    """One large-topology fig6_scaling point's wall time joins the trajectory.

    The perf artifact so far only covered dumbbell/parking-lot points; this
    section starts the trend line for generated AS-graph topologies (64 ASes,
    a million represented bots) so future simulator-loop optimizations are
    measured against the workload the scaling sweep actually runs.
    """
    specs = fig6_scaling.grid(
        systems=("netfence",), placements=("uniform",),
        topology_sizes=(64,), botnet_sizes=(1_000_000,),
        size_ref=64, botnet_ref=1_000_000,
        sim_time=30.0, warmup=10.0,
    )
    assert len(specs) == 1
    store = ResultStore(str(tmp_path / "fig6.sqlite"))
    rows, elapsed = _timed(specs, jobs=1, cache=store)
    (row,) = rows
    print(f"\nfig6 point (64 AS, 1M bots): {elapsed:.1f}s wall, "
          f"{row.limiter_state_total} limiters")
    _emit("fig6_point", {
        "wall_s": round(elapsed, 3),
        "num_as": row.num_as,
        "botnet_size": row.botnet_size,
        "attacker_hosts": row.attacker_hosts,
        "limiter_state_total": row.limiter_state_total,
        "points": _trajectory(store),
    })
    assert row.limiter_state_total > 0


def test_fig9_parallel_rows_identical_to_serial(tmp_path):
    """A reduced Fig. 9 sweep (both workloads) is byte-identical under --jobs 2.

    The full quick grid is exercised by CI's sweep smoke; this check keeps the
    benchmark suite's runtime bounded while still covering both workloads and
    every defense system through the worker-process path.
    """
    specs = fig9_colluding.grid(scale_steps=fig9_colluding.SCALE_STEPS[:1],
                                sim_time=60.0, warmup=30.0)
    store = ResultStore(str(tmp_path / "fig9.sqlite"))
    serial_rows, serial_s = _timed(specs, jobs=1)
    parallel_rows, parallel_s = _timed(specs, jobs=2, cache=store)
    print(f"\nfig9 reduced sweep: serial {serial_s:.1f}s, --jobs 2 {parallel_s:.1f}s")
    _emit("fig9_reduced", {"serial_s": round(serial_s, 3),
                           "parallel_s": round(parallel_s, 3), "jobs": 2,
                           "points": _trajectory(store)})
    assert [row.as_tuple() for row in parallel_rows] \
        == [row.as_tuple() for row in serial_rows]
    assert parallel_rows == serial_rows
