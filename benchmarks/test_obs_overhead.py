"""Telemetry overhead gate: metrics + tracing must stay cheap on the hot path.

Times the fig12 ``--quick`` single point in two modes — the default
disabled telemetry (the null fast path) and an enabled
:class:`~repro.obs.metrics.MetricsRegistry` plus an active
:class:`~repro.obs.trace.PacketTracer` plus an active
:class:`~repro.obs.spans.SpanRecorder` — and gates the slowdown of the
enabled mode.  Shared-machine noise comes in phases that dwarf the effect
being measured, so the estimator pairs aggressively: each iteration runs
*both* modes back to back (alternating which goes first, so a drift ramp
cannot systematically land on one mode) and yields one
calibration-normalized ratio; the gate takes the minimum ratio across
iterations.  A quiet pair reveals the true per-mode cost, while a genuine
instrumentation regression shifts every pair — including the minimum —
which is the same one-sided-noise argument ``benchmarks/test_hotpath.py``
makes for min-of-pairs wall times.

The gate also re-checks the PR's zero-interference claim: the point's
swept rows must stay byte-identical to the committed hotpath golden in
both modes — instrumentation observes decisions, it never changes them.

Results land in the ``obs`` section of ``BENCH_sweep.json``.
"""

import json
import os
import time

from bench_artifact import emit as _emit
from repro import perf
from repro.analysis.rows import json_safe, rows_to_dicts
from repro.experiments import fig12_deployment
from repro.experiments.sweep import execute_spec
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import SpanRecorder, use_span_recorder
from repro.obs.trace import PacketTracer, use_tracer

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_PATH = os.path.join(DATA_DIR, "hotpath_golden_fig12.json")

#: Maximum tolerated calibration-normalized slowdown with telemetry enabled.
#: The acceptance target is <=5 %; the default leaves headroom for shared-CI
#: machine character (see HOTPATH_REGRESSION_TOLERANCE's rationale) and can
#: be tightened on a quiet baseline host.
MAX_OVERHEAD = float(os.environ.get("OBS_MAX_OVERHEAD", "1.05"))

SAMPLES = int(os.environ.get("OBS_OVERHEAD_SAMPLES", "5"))

#: Sampling rounds.  Shared-machine noise phases can outlast one round of
#: pairs (every sample of one mode lands in a loud phase while the other
#: mode catches a quiet slot); a fresh round minutes^-1 later almost never
#: repeats that alignment, so the gate keeps the best estimate across
#: rounds and stops early once it is under the limit.
MAX_ROUNDS = int(os.environ.get("OBS_OVERHEAD_ROUNDS", "3"))


def _fig12_point_spec():
    specs = fig12_deployment.grid(fractions=(0.5,), strategies=("constant",),
                                  sim_time=80.0, warmup=30.0)
    return specs[0]


def _timed_point(spec):
    """One (normalized, wall, calib, rows) sample with paired calibration."""
    calib = perf.calibration_workload()
    start = time.perf_counter()
    result = execute_spec(spec)
    wall = time.perf_counter() - start
    return wall / calib, wall, calib, result.rows


def test_fig12_quick_point_telemetry_overhead_and_row_identity():
    with open(GOLDEN_PATH) as fh:
        golden = json.load(fh)["rows"]
    spec = _fig12_point_spec()

    def _enabled_point():
        registry = MetricsRegistry(enabled=True)
        tracer = PacketTracer()
        spans = SpanRecorder()
        with use_registry(registry), use_tracer(tracer), \
                use_span_recorder(spans):
            sample = _timed_point(spec)
        return sample, tracer.emitted, spans.finished

    overhead = float("inf")
    disabled_norm = enabled_norm = float("inf")
    all_ratios = []
    disabled_rows = enabled_rows = None
    events = spans_finished = rounds = 0
    for rounds in range(1, MAX_ROUNDS + 1):
        ratios, disabled_norms, enabled_norms = [], [], []
        for i in range(SAMPLES):
            if i % 2 == 0:
                disabled = _timed_point(spec)
                enabled, events, spans_finished = _enabled_point()
            else:
                enabled, events, spans_finished = _enabled_point()
                disabled = _timed_point(spec)
            disabled_rows, enabled_rows = disabled[3], enabled[3]
            disabled_norms.append(disabled[0])
            enabled_norms.append(enabled[0])
            ratios.append(enabled[0] / disabled[0])
        all_ratios.extend(ratios)

        # Two conservative estimators, gate on the lower: the quietest
        # adjacent pair, and the ratio of per-mode minima across the round.
        # A noise phase can inflate either one, but a genuine
        # instrumentation regression inflates both — noise is one-sided, so
        # neither can hide a real cost that is present in every sample.
        estimate = min(min(ratios), min(enabled_norms) / min(disabled_norms))
        if estimate < overhead:
            overhead = estimate
            disabled_norm = min(disabled_norms)
            enabled_norm = min(enabled_norms)
        if overhead <= MAX_OVERHEAD:
            break

    disabled_dicts = json_safe(rows_to_dicts(disabled_rows))
    enabled_dicts = json_safe(rows_to_dicts(enabled_rows))
    print(f"\nobs overhead: disabled {disabled_norm:.2f} vs enabled "
          f"{enabled_norm:.2f} calibration units -> x{overhead:.3f} "
          f"({rounds} round(s); pairs: "
          f"{', '.join(f'x{r:.3f}' for r in all_ratios)}; "
          f"{events} trace events/run, {spans_finished} span(s)); "
          f"gate x{MAX_OVERHEAD}")
    _emit("obs", {"fig12_quick_point_overhead": {
        "disabled_normalized_wall": round(disabled_norm, 2),
        "enabled_normalized_wall": round(enabled_norm, 2),
        "overhead_ratio": round(overhead, 3),
        "pair_ratios": [round(r, 3) for r in all_ratios],
        "rounds": rounds,
        "trace_events_per_run": events,
        "spans_per_run": spans_finished,
        "max_overhead": MAX_OVERHEAD,
        "rows_identical_disabled": disabled_dicts == golden,
        "rows_identical_enabled": enabled_dicts == golden,
        "spec": spec.describe(),
    }})

    # Telemetry observes; it never changes results — in either mode.
    assert disabled_dicts == golden, "rows diverged with telemetry disabled"
    assert enabled_dicts == golden, "rows diverged with telemetry ENABLED"
    # The tracer actually saw the hot path (queue drops dominate this point).
    assert events > 0
    # The span recorder wrapped the point execution itself.
    assert spans_finished > 0
    # The overhead gate itself.
    assert overhead <= MAX_OVERHEAD, (
        f"telemetry overhead x{overhead:.3f} exceeds the x{MAX_OVERHEAD} gate "
        f"(disabled {disabled_norm:.2f}, enabled {enabled_norm:.2f})"
    )
