"""Fig. 8 — 20 KB transfer time under unwanted-traffic floods.

Expected shape: StopIt < TVA+ < NetFence (≈ TVA+ + ~1 s), all flat as the
sender count grows; FQ grows with the sender count; 100 % completion for all
systems.  The benchmark runs a reduced two-point sweep; the full four-point
sweep is available via ``netfence-experiment fig8``.
"""

import pytest

from repro.experiments import fig8_unwanted

#: Reduced sweep for the benchmark run (label, #ASes, hosts/AS, bottleneck bps).
BENCH_STEPS = (
    ("25K", 5, 2, 4.0e6),
    ("50K", 5, 4, 4.0e6),
)

_results = {}


@pytest.mark.parametrize("system", fig8_unwanted.SYSTEMS)
def test_fig8_transfer_time(benchmark, once, system):
    rows = once(
        benchmark,
        fig8_unwanted.run,
        systems=(system,),
        scale_steps=BENCH_STEPS,
        sim_time=40.0,
    )
    _results[system] = rows
    for row in rows:
        print(f"\nFig. 8 [{row.system} @ {row.scale_label}] "
              f"avg transfer {row.avg_transfer_time_s:.2f}s "
              f"completion {row.completion_ratio:.2f}")
        assert row.completion_ratio > 0.9
    # All protected systems finish the 20 KB file in a bounded time.
    if system != "fq":
        assert all(row.avg_transfer_time_s < 10.0 for row in rows)


def test_fig8_shape_summary():
    """Cross-system shape check over whatever the parametrized runs produced."""
    if len(_results) < len(fig8_unwanted.SYSTEMS):
        pytest.skip("needs the per-system benchmarks in the same session")
    mean = {system: sum(r.avg_transfer_time_s for r in rows) / len(rows)
            for system, rows in _results.items()}
    print("\nFig. 8 summary (avg transfer time, s):",
          {k: round(v, 2) for k, v in mean.items()})
    assert mean["stopit"] <= mean["tva"] * 1.5
    assert mean["netfence"] >= mean["tva"]          # the +1 s request back-off
    assert mean["fq"] >= mean["stopit"]             # FQ never removes the attack
