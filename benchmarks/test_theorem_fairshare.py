"""Theorem §3.4 / Appendix A — the ν·ρ·C/(G+B) fair-share guarantee."""

from repro.experiments import theorem_fairshare


def test_theorem_fluid_model_bound(benchmark, once):
    rows = once(benchmark, theorem_fairshare.run_fluid, intervals=300)
    print("\n" + theorem_fairshare.format_table(rows))
    assert all(row.satisfied for row in rows)


def test_theorem_packet_level_bound(benchmark, once):
    row = once(
        benchmark,
        theorem_fairshare.run_packet,
        bottleneck_bps=1.2e6,
        num_source_as=3,
        hosts_per_as=4,
        sim_time=200.0,
        warmup=100.0,
    )
    print("\n" + theorem_fairshare.format_table([row]))
    assert row.satisfied
