"""Fig. 10 — Group-A throughput across two bottlenecks (core design).

Expected shape: Group-A senders obtain roughly the 80 Kbps fair share when
``C_L1 >= C_L2`` but fall well below it (with TCP users below UDP attackers)
when ``C_L1 < C_L2`` — the single-rate-limiter limitation of §4.3.5.
"""

from repro.experiments import fig10_parkinglot


def test_fig10_group_a_throughput(benchmark, once):
    rows = once(
        benchmark,
        fig10_parkinglot.run,
        policy="single",
        hosts_per_group=8,
        sim_time=150.0,
        warmup=75.0,
    )
    print("\n" + fig10_parkinglot.format_table(rows))
    by_case = {row.case_label: row for row in rows}
    fair = rows[0].fair_share_kbps
    # The L1 < L2 case hurts Group A under the core (single-limiter) design.
    hurt = by_case["160M-240M"]
    assert hurt.group_a_user_kbps < 0.8 * fair
    # In the balanced case Group A is at least in the neighbourhood of fair.
    balanced = by_case["160M-160M"]
    assert balanced.group_a_attacker_kbps > 0.5 * fair
    assert balanced.group_a_user_kbps >= hurt.group_a_user_kbps * 0.9
