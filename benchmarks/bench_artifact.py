"""Shared helper: merge benchmark sections into the BENCH_sweep.json artifact.

Every benchmark folds its numbers into one JSON artifact (one section per
benchmark, deep-merged so several tests can contribute to one section).
Set ``BENCH_SWEEP_PATH`` to relocate the artifact.  Writes are best-effort:
a read-only checkout must never fail a benchmark.
"""

import json
import os

#: Where the perf-trajectory artifact accumulates.
ARTIFACT_PATH = os.environ.get("BENCH_SWEEP_PATH", "BENCH_sweep.json")


def _deep_merge(target, update):
    for key, value in update.items():
        if isinstance(value, dict) and isinstance(target.get(key), dict):
            _deep_merge(target[key], value)
        else:
            target[key] = value


def emit(section, payload):
    """Deep-merge one benchmark's section into the artifact, best-effort."""
    artifact = {}
    try:
        with open(ARTIFACT_PATH) as fh:
            artifact = json.load(fh)
    except (OSError, json.JSONDecodeError):
        pass
    section_data = artifact.setdefault(section, {})
    if isinstance(section_data, dict) and isinstance(payload, dict):
        _deep_merge(section_data, payload)
    else:
        artifact[section] = payload
    try:
        with open(ARTIFACT_PATH, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
    except OSError:
        pass
