"""Ablation benchmarks for NetFence design choices (DESIGN.md §6).

These are not paper figures; they probe the design decisions the paper
argues for:

* the 2·Ilim stamping hysteresis (§4.3.4) — without it, synchronized on-off
  attackers can keep obtaining ``L↑`` and ratchet their rate limits up;
* the gentle MD factor δ=0.1 vs TCP's 0.5 — a large δ wastes utilization;
* per-AS policing / heavy-hitter containment of a compromised AS (§4.5).
"""

import pytest

from repro.analysis.convergence import AimdFluidModel, FluidSender
from repro.core.aslevel import HeavyHitterDetector
from repro.experiments.scenarios import DumbbellScenarioConfig, run_dumbbell_scenario
from repro.simulator.packet import Packet


def _onoff_config(hysteresis_intervals):
    return DumbbellScenarioConfig(
        system="netfence",
        num_source_as=3,
        hosts_per_as=4,
        bottleneck_bps=1.2e6,
        workload="longrun",
        attack_type="regular",
        attack_rate_bps=1.0e6,
        attack_on_off=(0.5, 1.5),
        num_colluders=3,
        sim_time=120.0,
        warmup=60.0,
    )


def test_ablation_hysteresis_protects_against_onoff(benchmark, once):
    """Compare the full 2·Ilim hysteresis against no hysteresis."""
    import repro.experiments.scenarios as scenarios

    results = {}

    def run_with_hysteresis(intervals):
        original = scenarios._netfence_components

        def patched(time_factor, policy, master=b"netfence-experiments", plan=None):
            params, domain, policy_cls = original(time_factor, policy,
                                                  master=master, plan=plan)
            params = params.with_overrides(hysteresis_intervals=intervals)
            domain.params = params
            return params, domain, policy_cls

        scenarios._netfence_components = patched
        try:
            return run_dumbbell_scenario(_onoff_config(intervals))
        finally:
            scenarios._netfence_components = original

    def run_both():
        results["with"] = run_with_hysteresis(2.0)
        results["without"] = run_with_hysteresis(0.0)
        return results

    once(benchmark, run_both)
    with_ratio = results["with"].throughput_ratio
    without_ratio = results["without"].throughput_ratio
    print(f"\nAblation — on-off attack, user/attacker ratio: "
          f"with 2·Ilim hysteresis={with_ratio:.2f}, without={without_ratio:.2f}")
    # The hysteresis must not make the user worse off; typically it helps.
    assert with_ratio >= without_ratio * 0.8


@pytest.mark.parametrize("delta", [0.1, 0.5], ids=["delta-0.1", "delta-0.5"])
def test_ablation_md_factor_utilization(benchmark, delta):
    """The paper picks δ=0.1; δ=0.5 (TCP-like) wastes capacity after each cut."""

    def run_model():
        senders = [FluidSender(name=f"s{i}") for i in range(20)]
        model = AimdFluidModel(2e6, senders, multiplicative_decrease=delta)
        model.run(300)
        sent = [sum(s.sent_history[i] for s in senders)
                for i in range(150, model.interval)]
        return sum(min(total, 2e6) for total in sent) / len(sent) / 2e6

    utilization = benchmark.pedantic(run_model, rounds=1, iterations=1)
    print(f"\nAblation — fluid-model utilization with δ={delta}: {utilization:.2f}")
    if delta == 0.1:
        assert utilization > 0.85
    else:
        assert utilization < 0.95


def test_ablation_heavy_hitter_contains_compromised_as(benchmark, once):
    """§4.5: RED-PD-style detection throttles an AS that never slows down."""

    def run_detector():
        detector = HeavyHitterDetector(capacity_bps=10e6, interval_s=1.0,
                                       trigger_intervals=3)
        good_delivered = 0
        bad_delivered = 0
        for _ in range(10):
            for _ in range(800):
                packet = Packet(src="zombie", dst="d", src_as="AS-compromised")
                if detector.admit(packet):
                    bad_delivered += 1
            for i in range(80):
                packet = Packet(src=f"h{i}", dst="d", src_as=f"AS-good-{i % 8}")
                if detector.admit(packet):
                    good_delivered += 1
            detector.end_interval()
        return good_delivered, bad_delivered, dict(detector.throttled)

    good, bad, throttled = once(benchmark, run_detector)
    print(f"\nAblation — heavy hitter: compromised AS throttled={bool(throttled)}, "
          f"good packets delivered={good}, flood packets delivered={bad}")
    assert "AS-compromised" in throttled
    assert good == 800  # legitimate ASes never throttled
    assert bad < 8000
