"""Fig. 13 — Appendix B.1 (multi-bottleneck feedback) restores Group-A fairness."""

from repro.experiments import fig10_parkinglot, fig13_multifeedback


def test_fig13_multifeedback_restores_fair_share(benchmark, once):
    rows = once(
        benchmark,
        fig13_multifeedback.run,
        hosts_per_group=8,
        sim_time=150.0,
        warmup=75.0,
    )
    print("\n" + fig10_parkinglot.format_table(rows, figure="Fig. 13 (multi-feedback)"))
    fair = rows[0].fair_share_kbps
    by_case = {row.case_label: row for row in rows}
    # With per-packet feedback from every bottleneck, even the L1 < L2 case
    # keeps Group-A senders near their fair share.
    hurt = by_case["160M-240M"]
    assert hurt.group_a_user_kbps > 0.4 * fair
    assert hurt.group_a_attacker_kbps > 0.6 * fair
