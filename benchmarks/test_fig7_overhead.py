"""Fig. 7 — per-packet processing overhead (NetFence vs TVA+).

The paper reports nanoseconds per packet on a Linux/Click testbed; this
benchmark reproduces the *structure* of that table with the Python
implementation: which operations are cheap (bottleneck routers outside an
attack), which are expensive (access-router validation + re-stamping during
an attack), and that NetFence and TVA+ are in the same ballpark.
"""

import pytest

from repro.experiments import fig7_overhead


@pytest.mark.parametrize("attack", [False, True], ids=["no-attack", "attack"])
@pytest.mark.parametrize("operation", ["request-access", "regular-access",
                                       "request-bottleneck", "regular-bottleneck"])
def test_netfence_per_packet_operations(benchmark, operation, attack):
    rig = fig7_overhead._NetFenceOverheadRig(attack)
    packet_factory = rig.request_packet if operation.startswith("request") else rig.regular_packet
    op = rig.access_op if operation.endswith("access") else rig.bottleneck_op
    benchmark(lambda: op(packet_factory()))


@pytest.mark.parametrize("attack", [False, True], ids=["no-attack", "attack"])
@pytest.mark.parametrize("operation", ["request-bottleneck", "regular-access"])
def test_tva_per_packet_operations(benchmark, operation, attack):
    rig = fig7_overhead._TvaOverheadRig(attack)
    packet_factory = rig.request_packet if operation.startswith("request") else rig.regular_packet
    op = rig.access_op if operation.endswith("access") else rig.bottleneck_op
    benchmark(lambda: op(packet_factory()))


def test_fig7_full_table(benchmark, once):
    rows = once(benchmark, fig7_overhead.run, 1000)
    print("\n" + fig7_overhead.format_table(rows))
    assert len(rows) == 12
