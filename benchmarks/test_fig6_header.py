"""Fig. 6 / §6.1 — NetFence header construction and wire size.

Verifies the 20-byte common case / 28-byte worst case while measuring how
fast headers and their MACs can be produced (the per-packet cost that the
paper offloads to AES hardware).
"""

from repro.core.domain import NetFenceDomain
from repro.core.feedback import BottleneckStamper, FeedbackStamper
from repro.core.header import NetFenceHeader
from repro.crypto.keys import AccessRouterSecret


def _stampers():
    domain = NetFenceDomain(master=b"bench")
    secret = AccessRouterSecret("Ra", master=b"bench")
    access = FeedbackStamper(secret, domain.key_registry, "AS-src")
    bottleneck = BottleneckStamper(domain.key_registry, "AS-core")
    return access, bottleneck


def test_nop_header_common_case_20_bytes(benchmark):
    access, _ = _stampers()

    def build():
        nop = access.stamp_nop("src", "dst", 1.0)
        return NetFenceHeader(feedback=nop, returned=nop).wire_size()

    size = benchmark(build)
    print(f"\nFig. 6: common-case NetFence header = {size} bytes (paper: 20)")
    assert size == 20


def test_mon_header_worst_case_28_bytes(benchmark):
    access, bottleneck = _stampers()

    def build():
        nop = access.stamp_nop("src", "dst", 1.0)
        decr = bottleneck.stamp_decr(nop, "src", "dst", "AS-src", "L")
        return NetFenceHeader(feedback=decr, returned=decr).wire_size()

    size = benchmark(build)
    print(f"\nFig. 6: worst-case NetFence header = {size} bytes (paper: 28)")
    assert size == 28
