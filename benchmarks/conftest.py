"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md §4 and EXPERIMENTS.md).  Simulation-backed benchmarks run one
round by design — the interesting output is the reproduced table, which each
benchmark prints so that ``pytest benchmarks/ --benchmark-only`` doubles as
the reproduction log.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a (long) experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
