"""Fig. 9 — throughput ratio under colluding attacks.

Expected shape: NetFence / FQ / StopIt near 1; TVA+ far below (per-destination
fair queuing vs. nine colluders); NetFence utilization a bit above 90 % while
the others sit at ~100 %.  Fig. 9a uses long-running TCP, Fig. 9b the
web-like workload.
"""

import pytest

from repro.experiments import fig9_colluding

#: One scale point for the benchmark (the full sweep is in the runner).
BENCH_STEPS = (("100K", 10, 4, 4.0e6),)

_rows = {}


@pytest.mark.parametrize("system", fig9_colluding.SYSTEMS)
def test_fig9a_longrun_ratio(benchmark, once, system):
    rows = once(
        benchmark,
        fig9_colluding.run,
        systems=(system,),
        workloads=("longrun",),
        scale_steps=BENCH_STEPS,
        sim_time=150.0,
        warmup=75.0,
    )
    row = rows[0]
    _rows[("longrun", system)] = row
    print(f"\nFig. 9a [{system}] ratio={row.throughput_ratio:.2f} "
          f"fairness={row.fairness_index:.2f} util={row.bottleneck_utilization:.2f}")
    assert row.fairness_index > 0.8
    if system == "netfence":
        assert row.throughput_ratio > 0.5
        assert row.bottleneck_utilization > 0.85
    if system == "tva":
        assert row.throughput_ratio < 0.6


@pytest.mark.parametrize("system", ("netfence", "tva"))
def test_fig9b_weblike_ratio(benchmark, once, system):
    rows = once(
        benchmark,
        fig9_colluding.run,
        systems=(system,),
        workloads=("web",),
        scale_steps=BENCH_STEPS,
        sim_time=150.0,
        warmup=75.0,
    )
    row = rows[0]
    print(f"\nFig. 9b [{system}] ratio={row.throughput_ratio:.2f} "
          f"fairness={row.fairness_index:.2f}")
    assert row.throughput_ratio > 0.0


def test_fig9_shape_summary():
    needed = [("longrun", s) for s in fig9_colluding.SYSTEMS]
    if not all(key in _rows for key in needed):
        pytest.skip("needs the per-system benchmarks in the same session")
    ratios = {system: _rows[("longrun", system)].throughput_ratio
              for system in fig9_colluding.SYSTEMS}
    print("\nFig. 9a summary (throughput ratio):",
          {k: round(v, 2) for k, v in ratios.items()})
    # TVA+ is the clear loser; the fairness-based systems are all much better.
    assert ratios["tva"] < ratios["netfence"]
    assert ratios["tva"] < ratios["fq"]
    assert ratios["tva"] < ratios["stopit"]
