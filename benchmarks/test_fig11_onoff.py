"""Fig. 11 — microscopic on-off attacks cannot depress a user's share.

Expected shape: the average user throughput never falls below the fair share
computed as if the attackers were always on, and it rises as the attackers'
off-period grows.
"""

from repro.experiments import fig11_onoff


def test_fig11_onoff_attack_guarantee(benchmark, once):
    rows = once(
        benchmark,
        fig11_onoff.run,
        ton_values=(0.5, 4.0),
        toff_values=(1.5, 10.0),
        num_source_as=4,
        hosts_per_as=3,
        bottleneck_bps=1.2e6,
        sim_time=150.0,
        warmup=60.0,
    )
    print("\n" + fig11_onoff.format_table(rows))
    fair = rows[0].always_on_fair_share_kbps
    for row in rows:
        # The guarantee of §5.2.1: burst shape cannot push a user below the
        # always-on fair share (allowing the usual TCP efficiency factor).
        assert row.avg_user_throughput_kbps > 0.5 * fair
    # Longer off-periods leave more capacity to the users.
    short_off = [r for r in rows if r.toff_s == 1.5]
    long_off = [r for r in rows if r.toff_s == 10.0]
    avg_short = sum(r.avg_user_throughput_kbps for r in short_off) / len(short_off)
    avg_long = sum(r.avg_user_throughput_kbps for r in long_off) / len(long_off)
    assert avg_long > avg_short
