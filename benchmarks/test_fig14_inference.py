"""Fig. 14 — Appendix B.2 (rate-limiter inference) narrows, but does not
close, the Fig. 10 gap."""

from repro.experiments import fig10_parkinglot, fig14_inference


def test_fig14_inference_improves_hurt_case(benchmark, once):
    rows = once(
        benchmark,
        fig14_inference.run,
        hosts_per_group=8,
        sim_time=150.0,
        warmup=75.0,
    )
    print("\n" + fig10_parkinglot.format_table(rows, figure="Fig. 14 (inference)"))
    by_case = {row.case_label: row for row in rows}
    hurt = by_case["160M-240M"]
    fair = rows[0].fair_share_kbps
    # Inference keeps user and attacker throughput in the same ballpark (the
    # rate limit no longer flip-flops), even if both may sit below fair share.
    assert hurt.group_a_user_kbps > 0.0
    assert hurt.group_a_attacker_kbps > 0.0
    ratio = hurt.group_a_user_kbps / max(hurt.group_a_attacker_kbps, 1e-9)
    assert ratio > 0.3
    assert hurt.group_a_attacker_kbps < 1.5 * fair
