"""Fig. 12 (§5) — partial deployment protects upgraded ASes first.

Expected shape: under NetFence the legitimate-traffic share of the
bottleneck grows with the deployment fraction, at fraction 1.0 it reaches
the full-deployment operating point of the other dumbbell experiments, and
the strategic attacker (AIMD-clock-aligned bursts plus an increase-farming
trickle) costs legitimate users measurably more than a naive on-off flood
of equal average volume.
"""

from repro.experiments import fig12_deployment
from repro.experiments.sweep import merge_rows, run_sweep


def _run_subset():
    # The netfence half carries the strategy comparison; the fq baseline
    # only needs the endpoints to show deployment-independence.
    specs = fig12_deployment.grid(
        systems=("netfence",), fractions=(0.0, 0.5, 1.0),
        strategies=("constant", "onoff", "strategic"),
        sim_time=150.0, warmup=50.0,
    ) + fig12_deployment.grid(
        systems=("fq",), fractions=(0.0, 1.0), strategies=("constant",),
        sim_time=150.0, warmup=50.0,
    )
    return merge_rows(run_sweep(specs, jobs=4))


def test_fig12_deployment_sweep(benchmark, once):
    rows = once(benchmark, _run_subset)
    print("\n" + fig12_deployment.format_table(rows))

    def share(system, fraction, strategy):
        return [r.legit_share for r in rows
                if r.system == system and r.deployment_fraction == fraction
                and r.attacker_strategy == strategy][0]

    # Deployment helps: going from nobody to everybody upgraded must raise
    # the legitimate share substantially under the constant-rate flood.
    assert share("netfence", 1.0, "constant") > share("netfence", 0.0, "constant") + 0.1
    # FQ has no deployment concept: its share must not depend on the fraction.
    fq_shares = [r.legit_share for r in rows if r.system == "fq"]
    assert max(fq_shares) - min(fq_shares) < 0.05
    # The strategic attacker beats the equal-volume naive on-off attacker.
    assert share("netfence", 1.0, "strategic") < share("netfence", 1.0, "onoff") - 0.05
