"""Live-policer throughput benchmark: serve + loadgen in one process.

Runs the ``runner serve`` policer on an ephemeral loopback port and drives
it with the loadgen scenario, then records the live path's numbers in the
``serve`` section of ``BENCH_sweep.json``:

* ``pps`` — datagrams policed per second (ingress) and emitted per second
  (egress) through the full decode → access-police → stamp → queue →
  pace → encode pipeline;
* ``latency_ms`` — per-packet one-way latency percentiles (sender
  ``created_at`` to egress, same wall clock on loopback), which is
  dominated by queueing at the emulated bottleneck;
* the loadgen verdict (legit goodput share under flood), so the perf
  trajectory also tracks the defense outcome on the live path.

Asserted floors are deliberately loose — this is a paced, loopback,
pure-Python policer; the benchmark tracks trends, the smoke test enforces
behaviour.
"""

import asyncio

from bench_artifact import emit as _emit
from repro.runtime.loadgen import run_scenario
from repro.runtime.serve import start_policer

CAPACITY_BPS = 1_000_000.0
WARMUP_S = 1.5
DURATION_S = 3.0


def test_serve_loadgen_bench():
    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        port = policer.transport.get_extra_info("sockname")[1]
        rx_before = policer.counters["packets_rx"]
        tx_before = policer.counters["packets_tx"]
        result = await run_scenario(
            ("127.0.0.1", port),
            legit=2,
            attackers=2,
            legit_rate_bps=120_000.0,
            attack_rate_bps=480_000.0,
            warmup_s=WARMUP_S,
            duration_s=DURATION_S,
            capacity_bps=CAPACITY_BPS,
        )
        rx = policer.counters["packets_rx"] - rx_before
        tx = policer.counters["packets_tx"] - tx_before
        await policer.shutdown()
        return policer.stats(event="bench"), result, rx, tx

    stats, result, rx, tx = asyncio.run(scenario())
    elapsed = WARMUP_S + DURATION_S
    ingress_pps = rx / elapsed
    egress_pps = tx / elapsed

    assert ingress_pps > 10.0
    assert egress_pps > 10.0
    assert stats["unverified_admissions"] == 0

    _emit("serve", {
        "capacity_bps": CAPACITY_BPS,
        "offered": {
            "legit_senders": result["legit"],
            "attackers": result["attackers"],
            "legit_rate_bps": result["legit_rate_bps"],
            "attack_rate_bps": result["attack_rate_bps"],
        },
        "pps": {
            "ingress": round(ingress_pps, 1),
            "egress": round(egress_pps, 1),
        },
        "latency_ms": stats["latency_ms"],
        "legit_share": round(result["legit_share"], 4),
        "legit_share_of_capacity": round(result["legit_share_of_capacity"], 4),
        "unverified_admissions": stats["unverified_admissions"],
        "queue_dropped": stats["queue"]["dropped"],
    })
