"""``repro.perf`` — hot-path profiling and performance measurement.

Two consumers:

* ``python -m repro.experiments.runner profile <experiment>`` — profile one
  grid point of any registered experiment and print a cProfile-derived
  hot-spot table plus per-phase event counts (see :func:`cli_main`).
* ``benchmarks/test_hotpath.py`` — microbenchmarks of the simulator's hot
  paths and the fig12 single-point speedup gate, normalized across machines
  by :func:`calibration_workload`.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro.perf.profile import (
    HotSpot,
    ProfileReport,
    calibrate,
    calibration_workload,
    format_report,
    profile_spec,
)

__all__ = [
    "HotSpot",
    "ProfileReport",
    "calibrate",
    "calibration_workload",
    "cli_main",
    "format_report",
    "profile_spec",
]


def cli_main(argv: List[str], experiments: Dict[str, Any]) -> int:
    """Entry point for ``runner profile`` (argv excludes the subcommand)."""
    parser = argparse.ArgumentParser(
        prog="netfence-experiment profile",
        description="Profile one grid point of an experiment: cProfile "
                    "hot-spot table plus per-phase event counts.",
    )
    parser.add_argument("experiment", choices=sorted(experiments),
                        help="experiment whose grid supplies the point")
    parser.add_argument("--quick", action="store_true",
                        help="use the experiment's --quick grid")
    parser.add_argument("--point", type=int, default=0, metavar="N",
                        help="grid index of the point to profile (default 0)")
    parser.add_argument("--top", type=int, default=25, metavar="N",
                        help="hot-spot table rows (default 25)")
    parser.add_argument("--no-census", action="store_true",
                        help="skip the event-census pass (two runs, not three)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of a table")
    args = parser.parse_args(argv)

    experiment = experiments[args.experiment]
    specs = experiment.build_grid(args.quick)
    if not 0 <= args.point < len(specs):
        parser.error(f"--point must be in [0, {len(specs) - 1}] "
                     f"({len(specs)} grid points)")
    spec = specs[args.point]
    print(f"profiling point {args.point}/{len(specs) - 1}: {spec.describe()}",
          file=sys.stderr)
    report = profile_spec(spec, top=args.top, census=not args.no_census)
    if args.as_json:
        json.dump(asdict(report), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(format_report(report))
    return 0
