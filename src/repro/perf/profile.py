"""Hot-path profiling for experiment points.

:func:`profile_spec` runs one :class:`~repro.experiments.sweep.ScenarioSpec`
three times:

1. a plain timed run (honest wall time, no instrumentation);
2. a :mod:`cProfile` run, reduced to a hot-spot table;
3. an event-census run — a dispatch tap on the simulator counts every
   executed event per callback, giving per-phase event counts (link
   serialization, propagation deliveries, transport send loops, timer
   ticks, ...) without cProfile's distortion.

Wall times are machine-dependent, so :func:`calibration_workload` measures a
fixed pure-Python spin loop; dividing a wall time by the calibration time
gives a machine-normalized cost that the hot-path benchmarks and the CI
regression gate can compare across runs and hosts.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.simulator.engine import Simulator

#: Iteration count of the calibration spin loop.  Fixed forever: recorded
#: baselines are only comparable against the same workload.
_CALIBRATION_ITERATIONS = 2_000_000


def calibration_workload() -> float:
    """Run the fixed machine-speed calibration loop; returns its wall time."""
    start = time.perf_counter()
    acc = 0
    for i in range(_CALIBRATION_ITERATIONS):
        acc = (acc + i * 31) % 1000003
    # ``acc`` is deliberately unused: the loop exists only to burn a fixed
    # amount of interpreter work.
    return time.perf_counter() - start


def calibrate(repeats: int = 3) -> float:
    """Best (minimum) wall time of the calibration workload over ``repeats``.

    Interference on shared machines only ever slows the loop down, so the
    minimum is the most stable estimate of the machine's real speed.
    """
    return min(calibration_workload() for _ in range(repeats))


@dataclass
class HotSpot:
    """One row of the cProfile hot-spot table."""

    ncalls: int
    tottime: float
    cumtime: float
    location: str  # "file:lineno(function)"


@dataclass
class ProfileReport:
    """Everything :func:`profile_spec` learns about one grid point."""

    description: str
    wall_s: float
    calib_s: float
    hotspots: List[HotSpot] = field(default_factory=list)
    #: Executed events per callback qualname (the per-phase event counts).
    event_census: Dict[str, int] = field(default_factory=dict)
    events_processed: int = 0

    @property
    def normalized_wall(self) -> float:
        """Wall time in calibration units (machine-speed independent)."""
        return self.wall_s / self.calib_s if self.calib_s else float("nan")

    @property
    def events_per_second(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s else 0.0


def _census_run(spec: Any) -> Dict[str, int]:
    """Execute the spec once with a dispatch tap counting callbacks."""
    from repro.experiments.sweep import execute_spec

    counts: Dict[str, int] = {}

    def tap(callback) -> None:
        name = getattr(callback, "__qualname__", None) or repr(callback)
        counts[name] = counts.get(name, 0) + 1

    previous = Simulator.default_dispatch_tap
    Simulator.default_dispatch_tap = tap
    try:
        execute_spec(spec)
    finally:
        Simulator.default_dispatch_tap = previous
    return counts


def _hotspot_table(profiler: cProfile.Profile, top: int) -> List[HotSpot]:
    stats = pstats.Stats(profiler)
    rows: List[HotSpot] = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(HotSpot(
            ncalls=nc,
            tottime=round(tt, 4),
            cumtime=round(ct, 4),
            location=f"{filename}:{lineno}({funcname})",
        ))
    rows.sort(key=lambda r: r.tottime, reverse=True)
    return rows[:top]


def profile_spec(
    spec: Any,
    top: int = 25,
    census: bool = True,
    calib_s: Optional[float] = None,
) -> ProfileReport:
    """Profile one grid point; see the module docstring for the passes run.

    ``calib_s`` may be supplied to skip re-measuring the calibration loop
    (e.g. when profiling several points in one process).
    """
    from repro.experiments.sweep import execute_spec

    started = time.perf_counter()
    execute_spec(spec)
    wall_s = time.perf_counter() - started

    profiler = cProfile.Profile()
    profiler.enable()
    execute_spec(spec)
    profiler.disable()

    report = ProfileReport(
        description=spec.describe(),
        wall_s=wall_s,
        calib_s=calibrate() if calib_s is None else calib_s,
        hotspots=_hotspot_table(profiler, top),
    )
    if census:
        report.event_census = _census_run(spec)
        report.events_processed = sum(report.event_census.values())
    return report


def format_report(report: ProfileReport, census_top: int = 20) -> str:
    """Render a profile report as the ``runner profile`` hot-spot table."""
    lines = [
        f"Profile: {report.description}",
        f"wall time         : {report.wall_s:.3f} s",
        f"calibration       : {report.calib_s:.3f} s "
        f"(normalized wall: {report.normalized_wall:.2f} calibration units)",
    ]
    if report.events_processed:
        lines.append(
            f"events dispatched : {report.events_processed:,} "
            f"({report.events_per_second:,.0f}/s)"
        )
    lines.append("")
    lines.append("hot spots (by internal time):")
    lines.append(f"{'ncalls':>10}  {'tottime':>8}  {'cumtime':>8}  function")
    for spot in report.hotspots:
        lines.append(
            f"{spot.ncalls:>10}  {spot.tottime:>8.3f}  {spot.cumtime:>8.3f}  {spot.location}"
        )
    if report.event_census:
        lines.append("")
        lines.append("per-phase event counts (by callback):")
        lines.append(f"{'events':>10}  callback")
        ranked = sorted(report.event_census.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in ranked[:census_top]:
            lines.append(f"{count:>10,}  {name}")
        hidden = len(ranked) - census_top
        if hidden > 0:
            lines.append(f"{'':>10}  ... and {hidden} more callbacks")
    return "\n".join(lines)
