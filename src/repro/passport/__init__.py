"""Passport source authentication substrate (Liu et al., NSDI 2008 [26]).

NetFence relies on Passport for two things (§4.5):

1. preventing source address (and source AS) spoofing, so that per-AS
   policing and per-sender rate limiting key on trustworthy identifiers, and
2. the pairwise AS secrets used to protect ``L↓`` feedback (Eq. 3).

This package implements a simplified Passport: the source AS's border/access
router stamps one MAC per AS on the path, computed with the key it shares
with that AS; each on-path AS verifies and strips its MAC.
"""

from repro.passport.passport import PassportHeader, PassportStamper, PassportValidator

__all__ = ["PassportHeader", "PassportStamper", "PassportValidator"]
