"""Simplified Passport source authentication.

A Passport header carries one MAC per downstream AS, each computed with the
secret the source AS shares with that AS over fields that bind the packet to
its source (source address, destination address, length, and the first bytes
of the payload — we use the flow id as the payload surrogate).  An on-path AS
validates its MAC; a valid MAC proves the packet really originated in the
claimed source AS, because only the source AS (and the verifying AS) know the
pairwise key.

The paper estimates the Passport header at 24 bytes (§4.6); we model that
constant for packet-size accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.crypto.keys import ASKeyRegistry
from repro.crypto.mac import compute_mac, mac_equal
from repro.simulator.packet import Packet

#: On-wire size of a Passport header (§4.6).
PASSPORT_HEADER_BYTES = 24

HEADER_KEY = "passport"


@dataclass
class PassportHeader:
    """Per-AS MACs proving the packet's source AS."""

    source_as: str
    macs: Dict[str, bytes] = field(default_factory=dict)

    def wire_size(self) -> int:
        return PASSPORT_HEADER_BYTES


def _mac_fields(packet: Packet) -> tuple:
    return (packet.src, packet.dst, packet.size_bytes, packet.flow_id)


class PassportStamper:
    """Stamps Passport MACs at the source AS's access/border router."""

    def __init__(self, registry: ASKeyRegistry, source_as: str) -> None:
        self.registry = registry
        self.source_as = source_as

    def stamp(self, packet: Packet, path_ases: Iterable[str]) -> PassportHeader:
        """Attach a Passport header with one MAC per downstream AS."""
        header = PassportHeader(source_as=self.source_as)
        for as_name in path_ases:
            if as_name == self.source_as:
                continue
            key = self.registry.key_for(self.source_as, as_name)
            header.macs[as_name] = compute_mac(key, *_mac_fields(packet))
        packet.set_header(HEADER_KEY, header)
        return header


class PassportValidator:
    """Validates (and strips) the local AS's Passport MAC on transit packets."""

    def __init__(self, registry: ASKeyRegistry, local_as: str) -> None:
        self.registry = registry
        self.local_as = local_as
        self.validated = 0
        self.rejected = 0

    def validate(self, packet: Packet) -> bool:
        """Return True when the packet's claimed source AS is authentic.

        Packets without a Passport header are treated as legacy traffic: the
        caller decides their fate (NetFence forwards them at low priority).
        """
        header: Optional[PassportHeader] = packet.get_header(HEADER_KEY)
        if header is None:
            return False
        mac = header.macs.get(self.local_as)
        if mac is None:
            self.rejected += 1
            return False
        key = self.registry.key_for(header.source_as, self.local_as)
        expected = compute_mac(key, *_mac_fields(packet))
        if not mac_equal(mac, expected):
            self.rejected += 1
            return False
        # Consume this AS's MAC the way Passport border routers do.
        del header.macs[self.local_as]
        self.validated += 1
        return True
