"""Lightweight symmetric-key cryptography substrate.

The paper assumes line-speed symmetric cryptography (AES-128 used as a MAC,
§2.1, §6.2) and AS-pairwise keys established by piggybacking a Diffie–Hellman
exchange on BGP via Passport [26] (§4.4, §4.5).  This package provides the
equivalents the NetFence logic needs:

* :func:`repro.crypto.mac.compute_mac` — a truncated keyed MAC (BLAKE2b).
* :class:`repro.crypto.keys.AccessRouterSecret` — the periodically changing
  secret ``Ka`` each access router uses for nop / ``L↑`` feedback.
* :class:`repro.crypto.keys.ASKeyRegistry` — pairwise AS keys ``Kai`` standing
  in for the BGP/Passport Diffie–Hellman exchange.
"""

from repro.crypto.mac import compute_mac, mac_equal
from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry

__all__ = ["compute_mac", "mac_equal", "AccessRouterSecret", "ASKeyRegistry"]
