"""Key management: access-router secrets and AS pairwise keys.

Two kinds of keys appear in NetFence (§4.4):

* ``Ka`` — a periodically changing secret known only to an access router,
  used to protect ``nop`` and ``L↑`` feedback (Eqs. 1–2).
* ``Kai`` — a secret shared between the bottleneck link's AS and the
  sender's AS, used to protect ``L↓`` feedback (Eq. 3).  The paper
  establishes these by piggybacking a Diffie–Hellman exchange on BGP through
  Passport [26]; here a registry derives each pair's key deterministically
  from a global master secret, which gives the same functional property
  (every AS pair shares a secret that end systems do not know).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.crypto.mac import derive_key


class AccessRouterSecret:
    """The time-varying secret ``Ka`` of one access router.

    The secret rotates every ``rotation_interval`` seconds.  Validation must
    accept feedback computed with either the current or the previous secret,
    because feedback up to ``w`` seconds old is still considered fresh
    (§4.4); the access router therefore exposes :meth:`candidates`.
    """

    def __init__(
        self,
        router_name: str,
        rotation_interval: float = 128.0,
        master: Optional[bytes] = None,
    ) -> None:
        if rotation_interval <= 0:
            raise ValueError("rotation_interval must be positive")
        self.router_name = router_name
        self.rotation_interval = rotation_interval
        self._master = master if master is not None else os.urandom(16)
        # The per-epoch key derivation is a keyed hash; caching it is a pure
        # memoization (same epoch → same key) but removes two MAC
        # computations from *every* feedback validation on the hot path.
        # Entries from epochs older than current−1 are evicted whenever the
        # clock reaches a new epoch: a finite simulation crosses a handful of
        # epochs, but a wall-clock ``runner serve`` process crosses one every
        # ``rotation_interval`` seconds for as long as it runs, and no key
        # older than the previous epoch can validate still-fresh feedback.
        self._key_cache: Dict[int, bytes] = {}
        self._candidate_cache: Dict[int, Tuple[bytes, ...]] = {}
        self._max_epoch = 0

    def _epoch(self, now: float) -> int:
        return int(now // self.rotation_interval)

    def epoch_of(self, now: float) -> int:
        """The key epoch in force at time ``now`` (public for cache owners)."""
        return int(now // self.rotation_interval)

    def _note_epoch(self, epoch: int) -> None:
        """Record clock progress; evict cache entries from expired epochs."""
        if epoch <= self._max_epoch:
            return
        self._max_epoch = epoch
        floor = epoch - 1
        for cache in (self._key_cache, self._candidate_cache):
            stale = [e for e in cache if e < floor]
            for e in stale:
                del cache[e]

    def _key_for_epoch(self, epoch: int) -> bytes:
        key = self._key_cache.get(epoch)
        if key is None:
            key = derive_key(self._master, self.router_name, epoch)
            self._key_cache[epoch] = key
        return key

    def current(self, now: float) -> bytes:
        """The secret in force at simulation time ``now``."""
        epoch = self._epoch(now)
        self._note_epoch(epoch)
        return self._key_for_epoch(epoch)

    def candidates(self, now: float) -> Tuple[bytes, ...]:
        """Secrets that may have signed still-fresh feedback (current + previous)."""
        epoch = self._epoch(now)
        cached = self._candidate_cache.get(epoch)
        if cached is None:
            self._note_epoch(epoch)
            previous = max(epoch - 1, 0)
            epochs = (epoch,) if previous == epoch else (epoch, previous)
            cached = tuple(self._key_for_epoch(e) for e in epochs)
            self._candidate_cache[epoch] = cached
        return cached

    @property
    def cache_size(self) -> int:
        """Cached epoch entries (key + candidate caches), for telemetry gauges."""
        return len(self._key_cache) + len(self._candidate_cache)


class ASKeyRegistry:
    """Pairwise AS keys ``Kai`` (stand-in for the Passport/BGP DH exchange).

    Keys are symmetric in the AS pair: ``key_for(A, B) == key_for(B, A)``.
    A single registry instance is shared by all routers in a simulation,
    mirroring the fact that the DH exchange gives both ASes the same secret.
    """

    def __init__(self, master: Optional[bytes] = None) -> None:
        self._master = master if master is not None else os.urandom(16)
        self._cache: Dict[Tuple[str, str], bytes] = {}

    def key_for(self, as_a: str, as_b: str) -> bytes:
        pair = tuple(sorted((as_a, as_b)))
        key = self._cache.get(pair)
        if key is None:
            key = derive_key(self._master, "as-pair", pair[0], pair[1])
            self._cache[pair] = key
        return key

    def __contains__(self, pair: Tuple[str, str]) -> bool:
        return True  # every AS pair can derive a key on demand
