"""Keyed message authentication codes.

The paper uses AES-128 as the MAC primitive because of hardware support
(§6.2).  Any secure keyed MAC provides the property NetFence relies on —
end systems and downstream routers cannot forge feedback without the key —
so we use Python's built-in BLAKE2b in keyed mode, truncated to 32 bits to
match the header's MAC field width (Fig. 6).
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union

Field = Union[str, bytes, int, float, None]

#: Width of the MAC field in the NetFence header (Fig. 6): 32 bits.
MAC_BYTES = 4


def quantize_ts(ts: float) -> int:
    """Timestamp → integer microseconds, matching :func:`_encode_field`.

    The wire codec (:mod:`repro.runtime.codec`) carries timestamps as this
    integer so that a MAC stamped on one side of a socket verifies on the
    other: both sides hash ``quantize_ts(ts)``, and ``quantize_ts(us / 1e6)
    == us`` exactly for any |us| below ~2**52 (microsecond counts fit a
    float's 53-bit mantissa for tens of millions of years).
    """
    return int(round(ts * 1e6))


def unquantize_ts(us: int) -> float:
    """Inverse of :func:`quantize_ts` (exact for |us| < 2**52)."""
    return us / 1e6


def _encode_field(field: Field) -> bytes:
    # Checks ordered by hot-path frequency (src/dst/link strings, then the
    # float timestamp, then token bytes); bool must stay ahead of int since
    # bool is an int subclass.  Encodings are unchanged.
    if isinstance(field, str):
        return field.encode("utf-8")
    if isinstance(field, float):
        # Quantize to microseconds so equal timestamps hash identically
        # (shared with the wire codec via quantize_ts).
        return quantize_ts(field).to_bytes(16, "big", signed=True)
    if isinstance(field, bytes):
        return field
    if field is None:
        return b"\x00"
    if isinstance(field, bool):
        return b"\x01" if field else b"\x00"
    if isinstance(field, int):
        return field.to_bytes(16, "big", signed=True)
    raise TypeError(f"unsupported MAC field type: {type(field)!r}")


#: Keyed-hasher midstates, one per MAC key.  Initializing a keyed BLAKE2b
#: hashes a full key block; ``copy()`` of the initialized hasher reproduces
#: that state with a memcpy.  Keys are few (per-epoch router secrets and
#: AS-pair keys), so the cache stays tiny; it is cleared defensively if a
#: pathological caller floods it with distinct keys.
_midstate_cache: dict = {}


def compute_mac(key: bytes, *fields: Field, length: int = MAC_BYTES) -> bytes:
    """Compute a truncated keyed MAC over the given fields.

    Fields are length-prefixed before hashing so that ("ab", "c") and
    ("a", "bc") produce different MACs.
    """
    if not key:
        raise ValueError("MAC key must be non-empty")
    base = _midstate_cache.get(key)
    if base is None:
        base = hashlib.blake2b(key=key[:64], digest_size=16)
        if len(_midstate_cache) >= 4096:
            _midstate_cache.clear()
        _midstate_cache[key] = base
    digest = base.copy()
    parts = []
    for field in fields:
        encoded = _encode_field(field)
        parts.append(len(encoded).to_bytes(4, "big"))
        parts.append(encoded)
    digest.update(b"".join(parts))
    return digest.digest()[:length]


def mac_equal(a: bytes, b: bytes) -> bool:
    """Constant-time MAC comparison."""
    return hmac.compare_digest(a, b)


def derive_key(master: bytes, *labels: Field) -> bytes:
    """Derive a sub-key from a master secret and a list of labels."""
    return compute_mac(master, "key-derivation", *labels, length=16)
