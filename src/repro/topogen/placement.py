"""Botnet / victim / legitimate-user placement over an AS graph.

A placement decides **where** the actors of a scaling scenario live and
**how many real hosts** each simulated host stands in for:

* ``uniform`` — bots spread across every eligible AS (the "every ISP has
  infections" model);
* ``stub_concentrated`` — bots only in stub (edge) ASes, the measured
  botnet shape: compromised machines live in access networks, not in
  transit cores;
* ``clustered`` — bots packed into a few colluding ASes (the §4.5
  compromised-AS threat model), which is the worst case for per-AS
  policing.

**Aggregation** is what makes multimillion-node botnets simulable: each
AS gets at most ``max_attacker_hosts_per_as`` simulated attacker hosts,
and every host carries a ``multiplicity`` — the number of real bots it
represents.  The scenario layer scales each host's attack rate by its
multiplicity, so the traffic entering the network is that of the full
botnet while the simulated host count stays O(#AS).  The per-AS
congestion-policing state the paper bounds (rate limiters keyed on
(sender, bottleneck)) then scales with the number of ASes, never with
``num_bots`` — exactly the claim the ``fig6_scaling`` sweep measures.

The victim (and its colluding receivers, the targets of fig.-9-style
colluding floods) lives in a stub AS; the victim's AS and its direct
providers never host senders, so the access side of the bottleneck link
stays clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.seeding import derive_seed
from repro.topogen.asgraph import ASGraphSpec, TIER_STUB

PLACEMENT_MODELS = ("uniform", "stub_concentrated", "clustered")

ROLE_ATTACKER = "attacker"
ROLE_USER = "user"
ROLE_VICTIM = "victim"
ROLE_COLLUDER = "colluder"


@dataclass(frozen=True)
class PlacedHost:
    """One simulated host: its AS, its role, and how many real hosts it
    stands in for (``multiplicity`` > 1 only for aggregated attackers)."""

    name: str
    as_name: str
    role: str
    multiplicity: int = 1


@dataclass(frozen=True)
class PlacementPlan:
    """Where every actor of a scaling scenario lives."""

    model: str
    seed: int
    num_bots: int
    victim_as: str
    hosts: Tuple[PlacedHost, ...]

    def __post_init__(self) -> None:
        if self.model not in PLACEMENT_MODELS:
            raise ValueError(f"unknown placement model {self.model!r}")

    def with_role(self, role: str) -> Tuple[PlacedHost, ...]:
        return tuple(host for host in self.hosts if host.role == role)

    @property
    def attackers(self) -> Tuple[PlacedHost, ...]:
        return self.with_role(ROLE_ATTACKER)

    @property
    def users(self) -> Tuple[PlacedHost, ...]:
        return self.with_role(ROLE_USER)

    @property
    def victim(self) -> PlacedHost:
        return self.with_role(ROLE_VICTIM)[0]

    @property
    def colluders(self) -> Tuple[PlacedHost, ...]:
        return self.with_role(ROLE_COLLUDER)

    @property
    def represented_bots(self) -> int:
        """Real bots represented across all aggregated attacker hosts."""
        return sum(host.multiplicity for host in self.attackers)

    @property
    def sender_as_names(self) -> Tuple[str, ...]:
        """ASes hosting senders (attackers or users), sorted."""
        return tuple(sorted({h.as_name for h in self.hosts
                             if h.role in (ROLE_ATTACKER, ROLE_USER)}))

    def bots_per_as(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for host in self.attackers:
            out[host.as_name] = out.get(host.as_name, 0) + host.multiplicity
        return out

    def describe(self) -> str:
        return (f"PlacementPlan({self.model}, {self.num_bots} bots as "
                f"{len(self.attackers)} aggregated hosts across "
                f"{len(self.bots_per_as())} ASes, {len(self.users)} users, "
                f"victim in {self.victim_as})")


def _spread(total: int, buckets: Sequence[str], rng: random.Random) -> Dict[str, int]:
    """Deterministically split ``total`` units across buckets, remainder
    assigned to a random (seeded) subset so no bucket is systematically
    favoured across grid points."""
    if not buckets:
        raise ValueError("no eligible ASes to place bots in")
    base, remainder = divmod(total, len(buckets))
    counts = {name: base for name in buckets}
    for name in rng.sample(list(buckets), remainder):
        counts[name] += 1
    return {name: count for name, count in counts.items() if count > 0}


def place(
    spec: ASGraphSpec,
    model: str,
    num_bots: int,
    num_users: int = 8,
    num_colluders: int = 4,
    max_attacker_hosts_per_as: int = 2,
    cluster_fraction: float = 0.1,
    seed: int = 1,
) -> PlacementPlan:
    """Place the botnet, the legitimate users, and the victim side.

    Bots are spread over the model's eligible ASes and then *aggregated*:
    each AS contributes at most ``max_attacker_hosts_per_as`` simulated
    hosts whose multiplicities sum to the AS's bot count.  Users go to
    stub ASes round-robin (sharing ASes with bots, as real eyeballs do).
    """
    if model not in PLACEMENT_MODELS:
        raise ValueError(f"unknown placement model {model!r}; "
                         f"expected one of {PLACEMENT_MODELS}")
    if num_bots < 1:
        raise ValueError("num_bots must be positive")
    rng = random.Random(derive_seed(seed, "placement", model, num_bots, num_users))

    stubs = list(spec.names_in_tier(TIER_STUB))
    if not stubs:
        raise ValueError("graph has no stub ASes to host a victim")
    # Prefer a single-homed, peering-free stub: its one provider uplink is
    # then the unavoidable bottleneck for every sender (a multihomed victim
    # would let part of the traffic route around the congested link).
    single_homed = [name for name in sorted(stubs)
                    if len(spec.providers_of(name)) == 1
                    and not spec.peers_of(name)]
    victim_as = rng.choice(single_homed or sorted(stubs))
    # The victim's AS, its direct providers, and its peers never host
    # senders, so the bottleneck (the victim AS's uplink) is congested only
    # by transit traffic, mirroring the dumbbell's source/destination
    # separation.
    excluded: Set[str] = ({victim_as} | set(spec.providers_of(victim_as))
                          | set(spec.peers_of(victim_as)))

    all_eligible = [name for name in spec.as_names() if name not in excluded]
    stub_eligible = [name for name in stubs if name not in excluded]
    if model == "uniform":
        bot_ases: Sequence[str] = all_eligible
    elif model == "stub_concentrated":
        bot_ases = stub_eligible or all_eligible
    else:  # clustered: a few colluding ASes harbour the whole botnet
        pool = stub_eligible or all_eligible
        cluster_size = max(1, round(cluster_fraction * len(pool)))
        bot_ases = sorted(rng.sample(sorted(pool), min(cluster_size, len(pool))))

    hosts: List[PlacedHost] = []
    for as_name, bots in sorted(_spread(num_bots, bot_ases, rng).items()):
        host_count = min(max_attacker_hosts_per_as, bots)
        base, remainder = divmod(bots, host_count)
        for index in range(host_count):
            multiplicity = base + (1 if index < remainder else 0)
            hosts.append(PlacedHost(
                name=f"bot_{as_name}_{index}", as_name=as_name,
                role=ROLE_ATTACKER, multiplicity=multiplicity,
            ))

    user_ases = stub_eligible or all_eligible
    for index in range(num_users):
        as_name = user_ases[index % len(user_ases)]
        hosts.append(PlacedHost(
            name=f"usr_{as_name}_{index}", as_name=as_name, role=ROLE_USER,
        ))

    hosts.append(PlacedHost(name="victim", as_name=victim_as, role=ROLE_VICTIM))
    for index in range(num_colluders):
        hosts.append(PlacedHost(
            name=f"col{index}", as_name=victim_as, role=ROLE_COLLUDER,
        ))

    return PlacementPlan(model=model, seed=seed, num_bots=num_bots,
                         victim_as=victim_as, hosts=tuple(hosts))
