"""Internet-scale topology generation (`repro.topogen`).

The paper's headline scaling claim — per-AS congestion policing keeps
router state O(#AS), so the defense survives multimillion-node botnets —
cannot be probed on the two hand-built evaluation layouts.  This package
turns "add a scenario" into "describe a graph":

* :mod:`repro.topogen.asgraph` — seeded generators for AS-level graphs
  with power-law degree tiers (core / transit / stub), provider-customer
  and IXP-style peering edges, and Gao-Rexford valley-free route
  selection, all captured in a declarative :class:`ASGraphSpec`.
* :mod:`repro.topogen.placement` — botnet / victim / legitimate-user
  placement models (uniform, stub-concentrated, colluding-AS clusters)
  with per-AS host *aggregation*: one simulated host stands in for N
  bots, which is what lets a single grid point represent 10^4–10^6
  attackers.
* :mod:`repro.topogen.realize` — compiles an ``ASGraphSpec`` plus a
  ``PlacementPlan`` into the existing :class:`~repro.simulator.topology.
  Topology` / router machinery, injecting per-system router classes the
  same way :func:`~repro.simulator.topology.dumbbell_layout` does.
"""

from repro.topogen.asgraph import (
    ASEdge,
    ASGraphSpec,
    generate_as_graph,
    valley_free_next_hops,
)
from repro.topogen.placement import (
    PLACEMENT_MODELS,
    PlacedHost,
    PlacementPlan,
    place,
)
from repro.topogen.realize import RealizedScenario, realize

__all__ = [
    "ASEdge",
    "ASGraphSpec",
    "PLACEMENT_MODELS",
    "PlacedHost",
    "PlacementPlan",
    "RealizedScenario",
    "generate_as_graph",
    "place",
    "realize",
    "valley_free_next_hops",
]
