"""Seeded AS-level graph generation and valley-free route selection.

The generator follows the measured shape of the inter-domain topology
(a small densely peered core, a transit tier, and a power-law-weighted
stub fringe — cf. Kotronis et al., *Stitching Inter-Domain Paths over
IXPs*, and the scalable-internetworking hierarchy of Garcia-Luna-Aceves
& Varma) rather than reproducing any specific measured snapshot:

* **core** ASes peer in a full mesh (the IXP / tier-1 clique);
* **transit** ASes buy transit from one or two cores (chosen with
  preferential attachment, so core customer degrees follow a power law)
  and peer with earlier transits with some probability;
* **stub** ASes buy transit from one or two transits (again chosen
  preferentially) and occasionally open a public peering with another
  stub.

Everything is derived from a single seed through dedicated
:func:`~repro.seeding.derive_seed` streams, so a given
``(num_as, seed)`` pair always yields a byte-identical edge list —
:meth:`ASGraphSpec.edge_list_bytes` is the determinism contract the CI
check compares across builds.

Route selection is Gao-Rexford valley-free: customer routes are
preferred over peer routes over provider routes, ties broken by path
length and then lexicographic next hop, so the next-hop maps are as
deterministic as the graph itself.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.seeding import derive_seed

TIER_CORE = "core"
TIER_TRANSIT = "transit"
TIER_STUB = "stub"
TIERS = (TIER_CORE, TIER_TRANSIT, TIER_STUB)

#: Edge kinds: ``p2c`` runs provider -> customer, ``p2p`` is (settlement
#: free) peering and is stored once with src < dst.
P2C = "p2c"
P2P = "p2p"


@dataclass(frozen=True)
class ASEdge:
    """One inter-AS business relationship.

    ``p2c`` edges run provider → customer; ``p2p`` edges are symmetric
    and canonicalized with ``src < dst`` so the edge list has a single
    spelling per relationship.
    """

    src: str
    dst: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in (P2C, P2P):
            raise ValueError(f"unknown edge kind {self.kind!r}")
        if self.kind == P2P and self.src > self.dst:
            low, high = self.dst, self.src
            object.__setattr__(self, "src", low)
            object.__setattr__(self, "dst", high)

    def describe(self) -> str:
        arrow = "->" if self.kind == P2C else "--"
        return f"{self.src}{arrow}{self.dst}"


@dataclass(frozen=True)
class ASGraphSpec:
    """A declarative AS-level graph: tiers plus relationship edges.

    The spec is a value object (hashable, picklable) so sweep grid
    points can carry or re-derive it; all adjacency views are computed
    on demand and cached per instance.
    """

    seed: int
    tiers: Tuple[Tuple[str, str], ...]     # (as_name, tier), generation order
    edges: Tuple[ASEdge, ...]              # canonical sorted order

    # -- basic views ---------------------------------------------------------
    @property
    def num_as(self) -> int:
        return len(self.tiers)

    def as_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.tiers)

    def tier_of(self, as_name: str) -> str:
        return self._tier_map()[as_name]

    def names_in_tier(self, tier: str) -> Tuple[str, ...]:
        return tuple(name for name, t in self.tiers if t == tier)

    def _tier_map(self) -> Dict[str, str]:
        cached = self.__dict__.get("_tier_map_cache")
        if cached is None:
            cached = dict(self.tiers)
            self.__dict__["_tier_map_cache"] = cached
        return cached

    # -- adjacency -----------------------------------------------------------
    def adjacency(self) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]], Dict[str, Set[str]]]:
        """``(providers, customers, peers)`` adjacency maps."""
        cached = self.__dict__.get("_adjacency_cache")
        if cached is None:
            providers: Dict[str, Set[str]] = {name: set() for name in self.as_names()}
            customers: Dict[str, Set[str]] = {name: set() for name in self.as_names()}
            peers: Dict[str, Set[str]] = {name: set() for name in self.as_names()}
            for edge in self.edges:
                if edge.kind == P2C:
                    customers[edge.src].add(edge.dst)
                    providers[edge.dst].add(edge.src)
                else:
                    peers[edge.src].add(edge.dst)
                    peers[edge.dst].add(edge.src)
            cached = (providers, customers, peers)
            self.__dict__["_adjacency_cache"] = cached
        return cached

    def providers_of(self, as_name: str) -> Tuple[str, ...]:
        return tuple(sorted(self.adjacency()[0][as_name]))

    def customers_of(self, as_name: str) -> Tuple[str, ...]:
        return tuple(sorted(self.adjacency()[1][as_name]))

    def peers_of(self, as_name: str) -> Tuple[str, ...]:
        return tuple(sorted(self.adjacency()[2][as_name]))

    def degree(self, as_name: str) -> int:
        providers, customers, peers = self.adjacency()
        return len(providers[as_name]) + len(customers[as_name]) + len(peers[as_name])

    # -- determinism contract ------------------------------------------------
    def edge_list_bytes(self) -> bytes:
        """Canonical serialized edge list: the seeded-determinism contract.

        Two builds generating the same ``(num_as, seed)`` graph must
        produce byte-identical output here (compared by CI).
        """
        lines = [f"{edge.kind} {edge.src} {edge.dst}" for edge in self.edges]
        return ("\n".join(lines) + "\n").encode()

    def fingerprint(self) -> str:
        """SHA-256 over tiers + edge list — stable graph identity."""
        digest = hashlib.sha256()
        for name, tier in self.tiers:
            digest.update(f"{name}={tier};".encode())
        digest.update(self.edge_list_bytes())
        return digest.hexdigest()

    def describe(self) -> str:
        counts = {tier: len(self.names_in_tier(tier)) for tier in TIERS}
        p2c = sum(1 for e in self.edges if e.kind == P2C)
        p2p = len(self.edges) - p2c
        return (f"ASGraphSpec(seed={self.seed}, {self.num_as} ASes: "
                f"{counts[TIER_CORE]} core / {counts[TIER_TRANSIT]} transit / "
                f"{counts[TIER_STUB]} stub; {p2c} p2c + {p2p} p2p edges)")


def _weighted_pick(rng: random.Random, candidates: Sequence[str],
                   weights: Mapping[str, float], count: int) -> List[str]:
    """Sample ``count`` distinct candidates with probability ∝ weight."""
    chosen: List[str] = []
    pool = list(candidates)
    for _ in range(min(count, len(pool))):
        total = sum(weights.get(name, 1.0) for name in pool)
        draw = rng.random() * total
        acc = 0.0
        picked = pool[-1]
        for name in pool:
            acc += weights.get(name, 1.0)
            if draw < acc:
                picked = name
                break
        chosen.append(picked)
        pool.remove(picked)
    return chosen


def generate_as_graph(
    num_as: int,
    seed: int = 1,
    core_fraction: float = 0.08,
    transit_fraction: float = 0.22,
    multihome_prob: float = 0.3,
    transit_peer_prob: float = 0.25,
    stub_peer_prob: float = 0.05,
) -> ASGraphSpec:
    """Generate a hierarchical AS graph with power-law degree tiers.

    The provider choices use preferential attachment (probability ∝
    current customer degree + 1), which is what produces the heavy-tailed
    transit degrees; ``multihome_prob`` is the chance a customer AS buys
    transit from a second provider.
    """
    if num_as < 4:
        raise ValueError("need at least 4 ASes (1 core, 1 transit, 2 stubs)")
    rng = random.Random(derive_seed(seed, "asgraph", num_as))

    num_core = max(1, round(core_fraction * num_as))
    num_transit = max(1, round(transit_fraction * num_as))
    num_stub = num_as - num_core - num_transit
    if num_stub < 1:
        num_core = 1
        num_transit = max(1, num_as - 2)
        num_stub = num_as - num_core - num_transit

    cores = [f"C{i:03d}" for i in range(num_core)]
    transits = [f"T{i:03d}" for i in range(num_transit)]
    stubs = [f"X{i:03d}" for i in range(num_stub)]
    tiers = tuple(
        [(name, TIER_CORE) for name in cores]
        + [(name, TIER_TRANSIT) for name in transits]
        + [(name, TIER_STUB) for name in stubs]
    )

    edges: Set[ASEdge] = set()
    customer_degree: Dict[str, int] = {name: 0 for name, _ in tiers}

    # Core clique: tier-1s exchange routes settlement-free (IXP mesh).
    for i, a in enumerate(cores):
        for b in cores[i + 1:]:
            edges.add(ASEdge(a, b, P2P))

    def buy_transit(customer: str, providers: Sequence[str]) -> None:
        count = 2 if len(providers) > 1 and rng.random() < multihome_prob else 1
        weights = {name: customer_degree[name] + 1.0 for name in providers}
        for provider in _weighted_pick(rng, providers, weights, count):
            edges.add(ASEdge(provider, customer, P2C))
            customer_degree[provider] += 1

    for index, transit in enumerate(transits):
        buy_transit(transit, cores)
        if index and rng.random() < transit_peer_prob:
            peer = rng.choice(transits[:index])
            edges.add(ASEdge(transit, peer, P2P))

    for index, stub in enumerate(stubs):
        buy_transit(stub, transits)
        if index and rng.random() < stub_peer_prob:
            peer = rng.choice(stubs[:index])
            edges.add(ASEdge(stub, peer, P2P))

    ordered = tuple(sorted(edges, key=lambda e: (e.kind, e.src, e.dst)))
    return ASGraphSpec(seed=seed, tiers=tiers, edges=ordered)


def valley_free_next_hops(spec: ASGraphSpec, dst: str) -> Dict[str, str]:
    """Gao-Rexford next hops from every AS toward destination AS ``dst``.

    Preference order is the classic one — customer routes over peer
    routes over provider routes, then shorter AS paths, then the
    lexicographically smallest next hop — which both matches BGP
    practice and keeps the result deterministic.

    Returns a map ``as_name -> next AS on the path`` (``dst`` maps to
    itself).  ASes with no valley-free path to ``dst`` are absent.
    """
    if dst not in spec._tier_map():
        raise KeyError(f"unknown destination AS {dst!r}")
    providers, customers, peers = spec.adjacency()
    next_hop: Dict[str, str] = {dst: dst}
    dist: Dict[str, int] = {dst: 0}

    # Stage 1 — customer routes: BFS upward from dst through providers;
    # every AS with dst in its customer cone routes down through the
    # customer it was reached from.
    frontier = [dst]
    while frontier:
        upcoming: List[str] = []
        for as_name in sorted(frontier):
            for provider in sorted(providers[as_name]):
                if provider not in next_hop:
                    next_hop[provider] = as_name
                    dist[provider] = dist[as_name] + 1
                    upcoming.append(provider)
        frontier = upcoming
    customer_routed = set(next_hop)

    # Stage 2 — peer routes: one peer hop into the customer cone.  Only
    # customer routes are exported to peers (Gao-Rexford), so a peer
    # route never extends another peer or provider route.
    for as_name in spec.as_names():
        if as_name in next_hop:
            continue
        best: Tuple[int, str] | None = None
        for peer in sorted(peers[as_name]):
            if peer in customer_routed:
                candidate = (dist[peer] + 1, peer)
                if best is None or candidate < best:
                    best = candidate
        if best is not None:
            dist[as_name], next_hop[as_name] = best

    # Stage 3 — provider routes: any routed provider exports its route
    # to its customers, so unrouted ASes climb until they reach one.
    # Routes from stages 1–2 are *never* overwritten: a customer or peer
    # route beats a provider route regardless of length (class-before-
    # length preference); only among stage-3 assignments does the shortest
    # (then lexicographically smallest) provider win.
    preferred = set(next_hop)
    heap: List[Tuple[int, str]] = sorted((d, name) for name, d in dist.items())
    heapq.heapify(heap)
    while heap:
        d, as_name = heapq.heappop(heap)
        if d > dist.get(as_name, d):
            continue
        for customer in sorted(customers[as_name]):
            if customer in preferred:
                continue
            if customer not in next_hop or dist[customer] > d + 1:
                next_hop[customer] = as_name
                dist[customer] = d + 1
                heapq.heappush(heap, (d + 1, customer))
    return next_hop


def as_path(spec: ASGraphSpec, src: str, dst: str,
            next_hops: Dict[str, str] | None = None) -> List[str]:
    """The selected AS path from ``src`` to ``dst`` (inclusive)."""
    hops = next_hops if next_hops is not None else valley_free_next_hops(spec, dst)
    if src not in hops:
        raise KeyError(f"{src} has no valley-free route to {dst}")
    path = [src]
    while path[-1] != dst:
        nxt = hops[path[-1]]
        if nxt in path:
            raise RuntimeError(f"routing loop toward {dst}: {path + [nxt]}")
        path.append(nxt)
    return path
