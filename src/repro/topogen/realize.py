"""Compile an AS graph + placement into a runnable :class:`Topology`.

Each AS is realized as one router named ``R_<as>``; every relationship
edge becomes a duplex link.  The victim AS's single provider uplink is
the **bottleneck**: it gets the scenario's bottleneck capacity and the
defense system's queue factory, while all other inter-AS links are
over-provisioned so congestion can only form where the experiment
measures it — exactly the role ``Rbl -> Rbr`` plays in the dumbbell.

Router classes are injected the same way :func:`~repro.simulator.
topology.dumbbell_layout` injects them: the bottleneck AS runs the
``core`` router class (the NetFence stamping router under ``netfence``),
every AS hosting senders — plus the victim AS, whose receivers need
access-router services for their return traffic — runs the ``access``
class, and the per-AS ``access_router_for_as`` hook lets partial
deployments (a :class:`~repro.core.deployment.DeploymentPlan` mapped
over AS names) substitute legacy routers for individual ASes.  Every
other AS is a plain forwarding router.

Routes are **valley-free** (Gao-Rexford), installed per destination AS
from :func:`~repro.topogen.asgraph.valley_free_next_hops` instead of the
default shortest-path builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.simulator.link import Link
from repro.simulator.node import Router
from repro.simulator.topology import QueueFactory, Topology
from repro.topogen.asgraph import ASGraphSpec, valley_free_next_hops
from repro.topogen.placement import PlacedHost, PlacementPlan

#: Per-AS access-router override hook: AS name -> (router class, ctor kwargs).
AccessRouterForAS = Callable[[str], Tuple[Type[Router], dict]]


@dataclass
class RealizedScenario:
    """The compiled scenario: node names, roles, and the bottleneck."""

    topo: Topology
    spec: ASGraphSpec
    placement: PlacementPlan
    #: AS name -> router node name (every AS has exactly one router).
    as_router: Dict[str, str] = field(default_factory=dict)
    #: Sender/victim ASes that received the access router class.
    access_routers: Dict[str, str] = field(default_factory=dict)
    bottleneck_as: str = ""
    bottleneck_link: Optional[Link] = None
    victim: str = ""
    colluders: List[str] = field(default_factory=list)
    users: List[PlacedHost] = field(default_factory=list)
    attackers: List[PlacedHost] = field(default_factory=list)

    def router_of(self, as_name: str) -> Router:
        return self.topo.router(self.as_router[as_name])


def realize(
    spec: ASGraphSpec,
    placement: PlacementPlan,
    topo: Optional[Topology] = None,
    access_router_cls: Type[Router] = Router,
    core_router_cls: Type[Router] = Router,
    access_router_kwargs: Optional[dict] = None,
    core_router_kwargs: Optional[dict] = None,
    bottleneck_queue_factory: Optional[QueueFactory] = None,
    access_router_for_as: Optional[AccessRouterForAS] = None,
    bottleneck_bps: float = 3.0e6,
    interas_bps: float = 200e6,
    edge_bps: float = 1e9,
    delay_s: float = 0.005,
    edge_delay_s: float = 0.001,
) -> RealizedScenario:
    """Build the topology for one (graph, placement, system) combination."""
    access_router_kwargs = access_router_kwargs or {}
    core_router_kwargs = core_router_kwargs or {}
    topo = topo or Topology()
    out = RealizedScenario(topo=topo, spec=spec, placement=placement)

    providers = spec.providers_of(placement.victim_as)
    if not providers:
        raise ValueError(f"victim AS {placement.victim_as} has no provider uplink")
    out.bottleneck_as = providers[0]

    sender_as = set(placement.sender_as_names)
    host_as: Dict[str, str] = {}

    # -- routers: one per AS -------------------------------------------------
    for as_name in spec.as_names():
        router_name = f"R_{as_name}"
        out.as_router[as_name] = router_name
        if as_name == out.bottleneck_as:
            topo.add_router(router_name, as_name=as_name,
                            router_cls=core_router_cls, **core_router_kwargs)
        elif as_name in sender_as or as_name == placement.victim_as:
            if access_router_for_as is not None and as_name in sender_as:
                cls, kwargs = access_router_for_as(as_name)
            else:
                cls, kwargs = access_router_cls, access_router_kwargs
            topo.add_router(router_name, as_name=as_name, router_cls=cls, **kwargs)
            out.access_routers[as_name] = router_name
        else:
            topo.add_router(router_name, as_name=as_name)

    # -- inter-AS links ------------------------------------------------------
    bottleneck_pair = (out.bottleneck_as, placement.victim_as)
    for edge in spec.edges:
        if (edge.src, edge.dst) == bottleneck_pair and edge.kind == "p2c":
            forward, _ = topo.add_duplex_link(
                out.as_router[edge.src], out.as_router[edge.dst],
                bottleneck_bps, delay_s,
                queue_factory=bottleneck_queue_factory,
            )
            out.bottleneck_link = forward
        else:
            topo.add_duplex_link(out.as_router[edge.src], out.as_router[edge.dst],
                                 interas_bps, delay_s)
    if out.bottleneck_link is None:
        raise ValueError(
            f"no p2c edge {out.bottleneck_as} -> {placement.victim_as} to "
            f"promote to the bottleneck")

    # -- hosts ---------------------------------------------------------------
    for placed in placement.hosts:
        topo.add_host(placed.name, as_name=placed.as_name)
        topo.add_duplex_link(placed.name, out.as_router[placed.as_name],
                             edge_bps, edge_delay_s)
        host_as[placed.name] = placed.as_name
        if placed.role == "victim":
            out.victim = placed.name
        elif placed.role == "colluder":
            out.colluders.append(placed.name)
        elif placed.role == "user":
            out.users.append(placed)
        else:
            out.attackers.append(placed)

    # -- valley-free routing -------------------------------------------------
    def install_valley_free_routes(nodes, links) -> None:
        next_hops_cache: Dict[str, Dict[str, str]] = {}
        for host_name, dst_as in host_as.items():
            hops = next_hops_cache.get(dst_as)
            if hops is None:
                hops = next_hops_cache[dst_as] = valley_free_next_hops(spec, dst_as)
            for as_name in spec.as_names():
                router = topo.router(out.as_router[as_name])
                if as_name == dst_as:
                    router.add_route(host_name, router.links[host_name])
                    continue
                if as_name not in hops:
                    continue  # no valley-free path: unreachable by policy
                next_router = out.as_router[hops[as_name]]
                router.add_route(host_name, router.links[next_router])
        for host_name, as_name in host_as.items():
            topo.router(out.as_router[as_name]).register_local_host(host_name)

    topo.finalize(route_builder=install_valley_free_routes)
    return out
