"""Inline suppression comments.

Two forms, mirroring the repo's historical review conventions:

* ``# nf: disable=NF001`` (or ``=NF001,NF007``) on the offending line —
  suppresses those codes for that line only;
* ``# nf: disable-file=NF002`` near the top of a file (first 10 lines) —
  suppresses the codes for the whole file.  ``all`` suppresses every rule.

Suppressions are deliberate, reviewable waivers; the engine counts them so
``--json`` reports never hide how many findings were waived.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set

_INLINE_RE = re.compile(r"#\s*nf:\s*disable=([A-Za-z0-9_, ]+)")
_FILE_RE = re.compile(r"#\s*nf:\s*disable-file=([A-Za-z0-9_, ]+)")

#: File-level pragmas must appear within this many leading lines.
_FILE_PRAGMA_WINDOW = 10


def _parse_codes(raw: str) -> Set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


class SuppressionIndex:
    """Per-file map of suppressed rule codes."""

    def __init__(self, lines: List[str]) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.file_wide: Set[str] = set()
        for lineno, text in enumerate(lines, start=1):
            if "nf:" not in text:
                continue
            inline = _INLINE_RE.search(text)
            if inline:
                self.by_line.setdefault(lineno, set()).update(_parse_codes(inline.group(1)))
            file_wide = _FILE_RE.search(text)
            if file_wide and lineno <= _FILE_PRAGMA_WINDOW:
                self.file_wide.update(_parse_codes(file_wide.group(1)))

    def is_suppressed(self, code: str, lineno: int) -> bool:
        if "ALL" in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(lineno)
        return codes is not None and ("ALL" in codes or code in codes)
