"""``runner lint`` — check the repo's invariants statically.

Usage::

    netfence-experiment lint [paths...] [--strict] [--json]
                             [--select NF001,NF007] [--ignore NF002]
                             [--baseline lint-baseline.json] [--write-baseline]
                             [--list-rules]

Exit codes: 0 clean (or findings without ``--strict``), 1 findings under
``--strict``, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, select_rules
from repro.lint.report import format_catalog, format_text, to_json

#: Default target when no paths are given: the source tree, resolved
#: relative to the working directory like every other runner subcommand.
DEFAULT_TARGETS = ("src/repro",)


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner lint",
        description="AST-based invariant linter (determinism, clock seam, "
                    "hot path, lifecycle, security).",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to lint (default: {DEFAULT_TARGETS[0]})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any non-suppressed finding")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a machine-readable report")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes to run exclusively")
    parser.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="committed baseline of waived findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="show the offending source line under each finding")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(format_catalog(all_rules()))
        return 0

    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
        select_rules(select, ignore)  # validate codes before touching files
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2

    targets = list(args.paths) if args.paths else list(DEFAULT_TARGETS)
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if args.baseline is None:
            print("lint: --write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        result = lint_paths(targets, select=select, ignore=ignore)
        Baseline.from_violations(result.violations).save(args.baseline)
        print(f"lint: baseline with {len(result.violations)} finding(s) "
              f"written to {args.baseline}")
        return 0

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"lint: cannot load baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2

    result = lint_paths(targets, select=select, ignore=ignore, baseline=baseline)

    if args.as_json:
        json.dump(to_json(result), sys.stdout, indent=2, sort_keys=True)
        print()
    else:
        print(format_text(result, verbose=args.verbose))

    if result.parse_errors:
        return 2
    if result.violations and args.strict:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
