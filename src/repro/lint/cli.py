"""``runner lint`` — check the repo's invariants statically.

Usage::

    netfence-experiment lint [paths...] [--strict] [--format text|json|github]
                             [--select NF001,NF1*] [--ignore NF002]
                             [--baseline lint-baseline.json] [--write-baseline]
                             [--flow] [--flow-graph out.dot] [--list-rules]

``--flow`` adds the whole-program phase: call-graph construction over every
target file plus the interprocedural flow rules (NF101+).  ``--flow-graph``
exports that call graph as Graphviz DOT (and implies ``--flow``).

Exit codes: 0 clean (or findings without ``--strict``), 1 findings under
``--strict``, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.registry import all_rules, select_rules
from repro.lint.report import format_catalog, format_github, format_text, to_json

#: Default target when no paths are given: the source tree, resolved
#: relative to the working directory like every other runner subcommand.
DEFAULT_TARGETS = ("src/repro",)


def _parse_codes(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [code.strip().upper() for code in raw.split(",") if code.strip()]


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner lint",
        description="AST-based invariant linter (determinism, clock seam, "
                    "hot path, lifecycle, security).",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help=f"files/directories to lint (default: {DEFAULT_TARGETS[0]})")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any non-suppressed finding")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit a machine-readable report "
                             "(alias for --format json)")
    parser.add_argument("--format", metavar="FMT", dest="fmt", default=None,
                        choices=("text", "json", "github"),
                        help="report format: text (default), json, or github "
                             "(::error annotations for Actions)")
    parser.add_argument("--flow", action="store_true",
                        help="also run the whole-program flow rules (NF101+) "
                             "over a call graph of the target files")
    parser.add_argument("--flow-graph", metavar="PATH", default=None,
                        help="write the call graph as Graphviz DOT "
                             "(implies --flow)")
    parser.add_argument("--select", metavar="CODES", default=None,
                        help="comma-separated rule codes or globs (NF1*) "
                             "to run exclusively")
    parser.add_argument("--ignore", metavar="CODES", default=None,
                        help="comma-separated rule codes or globs to skip")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="committed baseline of waived findings")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="show the offending source line under each finding")
    args = parser.parse_args(argv)
    flow = args.flow or args.flow_graph is not None
    fmt = args.fmt or ("json" if args.as_json else "text")

    if args.list_rules:
        print(format_catalog(all_rules()))
        return 0

    try:
        select = _parse_codes(args.select)
        ignore = _parse_codes(args.ignore)
        select_rules(select, ignore)  # validate codes before touching files
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2

    targets = list(args.paths) if args.paths else list(DEFAULT_TARGETS)
    missing = [t for t in targets if not Path(t).exists()]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if args.baseline is None:
            print("lint: --write-baseline requires --baseline PATH", file=sys.stderr)
            return 2
        result = lint_paths(targets, select=select, ignore=ignore, flow=flow)
        Baseline.from_violations(result.violations).save(args.baseline)
        print(f"lint: baseline with {len(result.violations)} finding(s) "
              f"written to {args.baseline}")
        return 0

    baseline = None
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"lint: cannot load baseline {args.baseline!r}: {exc}",
                  file=sys.stderr)
            return 2

    result = lint_paths(targets, select=select, ignore=ignore,
                        baseline=baseline, flow=flow)

    if args.flow_graph is not None and result.flow_graph is not None:
        from repro.lint.flow import to_dot

        try:
            Path(args.flow_graph).write_text(to_dot(result.flow_graph),
                                             encoding="utf-8")
        except OSError as exc:
            print(f"lint: cannot write {args.flow_graph!r}: {exc}",
                  file=sys.stderr)
            return 2

    if fmt == "json":
        json.dump(to_json(result), sys.stdout, indent=2, sort_keys=True)
        print()
    elif fmt == "github":
        print(format_github(result))
    else:
        print(format_text(result, verbose=args.verbose))

    if result.parse_errors:
        return 2
    if result.violations and args.strict:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
