"""Committed-baseline suppression.

A baseline file freezes the set of *known* findings so the linter can gate
on **new** violations while a legacy debt burns down.  Entries are violation
fingerprints (rule code + logical path + stripped source line), which
survive unrelated line-number drift; each fingerprint carries a count so a
baseline never absorbs *additional* copies of the same finding.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.lint.violations import Violation

BASELINE_VERSION = 1


class Baseline:
    """A multiset of waived violation fingerprints."""

    def __init__(self, counts: Counter | None = None) -> None:
        self.counts: Counter = Counter(counts or {})

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        return cls(Counter(v.fingerprint for v in violations))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} in {path}"
            )
        counts = Counter(
            {str(fp): int(n) for fp, n in payload.get("fingerprints", {}).items()}
        )
        return cls(counts)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def partition(
        self, violations: Iterable[Violation]
    ) -> Tuple[List[Violation], List[Violation]]:
        """Split violations into ``(new, baselined)``.

        Each baseline fingerprint absorbs at most its recorded count, so a
        *second* occurrence of a waived finding still surfaces as new.
        """
        remaining = Counter(self.counts)
        fresh: List[Violation] = []
        waived: List[Violation] = []
        for violation in violations:
            if remaining.get(violation.fingerprint, 0) > 0:
                remaining[violation.fingerprint] -= 1
                waived.append(violation)
            else:
                fresh.append(violation)
        return fresh, waived
