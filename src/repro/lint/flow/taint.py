"""Interprocedural taint engine over the flow call graph.

The engine runs one :class:`TaintSpec` (what is a source, a sanitizer, a
sink) to a fixed point of per-function summaries:

* ``returns`` — taints a function's return value may carry, including
  *parameter markers* ("whatever came in through ``key`` flows back out"),
  so helper wrappers propagate taint across call boundaries;
* ``param_flows`` — parameters whose value reaches a sink inside the
  function (or transitively through its callees), with the full witness
  call chain.

Intraprocedurally the analysis is a flow-insensitive-per-branch,
sequential environment walk: assignments bind taint to names (including
``self.x`` pseudo-names), expressions union the taint of their parts, and
containers are tainted by their elements.  Precision decisions that keep
the real tree clean without hiding seeded violations:

* attribute reads on a tainted object are *clean* unless the attribute
  name itself matches the spec (``self.secret.cache_size`` is telemetry,
  ``self.secret._master`` is key material);
* representation transforms (``.encode()``, ``.hex()``, …) on a tainted
  receiver stay tainted;
* calls to unindexed functions propagate argument taint to their result,
  except a small cleanlist of shape-only builtins (``len``, ``sorted``…);
* ``**kwargs`` forwarding drops taint (documented gap: keyword fan-out
  through ``start_policer(**kw)`` would otherwise taint every parameter).

Findings carry a witness — the call chain from the function where the
taint originated to the sink call — rendered into the lint message and
kept structurally on the violation for the JSON report.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.flow.callgraph import CallGraph, CallSite, FunctionInfo

__all__ = ["Finding", "TaintSpec", "analyze_taint"]

#: Builtins whose result reveals shape, not content: calling them on a
#: tainted value does not produce a tainted value.
_CLEAN_BUILTINS = frozenset({
    "len", "range", "enumerate", "zip", "isinstance", "issubclass", "type",
    "id", "bool", "abs", "round", "min", "max", "sum", "sorted", "hash",
    "callable", "hasattr", "getattr_static", "count", "index",
})

#: Methods that re-encode a value without laundering it: calling one on a
#: tainted receiver keeps the taint (``secret.hex()`` is still the secret).
_DEFAULT_PRESERVE = frozenset({
    "encode", "decode", "hex", "to_bytes", "from_bytes", "lower", "upper",
    "strip", "lstrip", "rstrip", "format", "join", "copy", "ljust", "rjust",
    "zfill", "title", "capitalize", "replace",
})


@dataclass(frozen=True)
class TaintSpec:
    """What one flow rule considers a source, a sanitizer, and a sink."""

    code: str
    #: Identifier/attribute names that *are* the tainted material.
    name_re: Optional[re.Pattern] = None
    #: Callee base-names whose result is tainted.
    source_calls: FrozenSet[str] = frozenset()
    #: Target-qname suffixes whose call result is tainted.
    source_call_qnames: FrozenSet[str] = frozenset()
    #: Attribute names whose *read* is tainted (``.mac``).
    source_attrs: FrozenSet[str] = frozenset()
    #: Callee base-names that consume/launder taint (result is clean).
    sanitizer_calls: FrozenSet[str] = frozenset()
    #: Callee base-names that are sinks.
    sink_calls: FrozenSet[str] = frozenset()
    #: Target-qname suffixes that are sinks.
    sink_call_qnames: FrozenSet[str] = frozenset()
    #: Function-qname suffixes whose *own bodies* never report (the sink
    #: implementation itself, e.g. ``JsonLinesLogger.emit``).
    exempt_functions: FrozenSet[str] = frozenset()
    #: Flag ``==``/``!=`` with a tainted operand (NF103).
    check_compares: bool = False
    #: Methods preserving taint on a tainted receiver.
    preserve_methods: FrozenSet[str] = _DEFAULT_PRESERVE
    #: Message template; ``{origin}``, ``{sink}`` substituted.
    message: str = "tainted value '{origin}' reaches sink '{sink}'"
    compare_message: str = "'{origin}' compared with ==/!="


@dataclass(frozen=True)
class Taint:
    """Concrete taint: where the value came from."""

    origin: str
    origin_fn: str
    origin_line: int


@dataclass(frozen=True)
class ParamTaint:
    """Marker: the value arrived through this parameter."""

    param: str


@dataclass(frozen=True)
class SinkHit:
    """A parameter reaching a sink, with the chain below this function."""

    param: str
    chain: Tuple[str, ...]
    sink: str


@dataclass
class Summary:
    returns: FrozenSet[object] = frozenset()
    param_flows: FrozenSet[SinkHit] = frozenset()


@dataclass(frozen=True)
class Finding:
    code: str
    path: str
    line: int
    col: int
    message: str
    witness: Tuple[str, ...]


def _qname_matches(qname: str, suffixes: FrozenSet[str]) -> bool:
    return any(qname == s or qname.endswith("." + s) for s in suffixes)


_MAX_TAINTS = 6


class _FunctionAnalysis(ast.NodeVisitor):
    """One pass over one function body under one spec."""

    def __init__(self, fn: FunctionInfo, spec: TaintSpec, graph: CallGraph,
                 summaries: Dict[str, Summary]) -> None:
        self.fn = fn
        self.spec = spec
        self.graph = graph
        self.summaries = summaries
        self.env: Dict[str, Set[object]] = {}
        self.returns: Set[object] = set()
        # Keyed by (param, sink): one witness chain per flow, not one per
        # call path — path enumeration is exponential in a cyclic graph.
        self.param_flows: Dict[Tuple[str, str], SinkHit] = {}
        self.findings: List[Finding] = []
        self.sites: Dict[int, CallSite] = {
            id(site.node): site for site in fn.calls if site.kind == "call"}
        self.exempt = _qname_matches(fn.qname, spec.exempt_functions)
        for param in fn.params:
            taints: Set[object] = {ParamTaint(param)}
            if spec.name_re is not None and spec.name_re.search(param):
                taints.add(Taint(origin=param, origin_fn=fn.qname,
                                 origin_line=fn.lineno))
            self.env[param] = taints

    # -- entry ---------------------------------------------------------------
    def run(self) -> Tuple[Summary, List[Finding]]:
        for stmt in self.fn.node.body:
            self.visit(stmt)
        return (Summary(returns=frozenset(self.returns),
                        param_flows=frozenset(self.param_flows.values())),
                self.findings)

    # -- helpers -------------------------------------------------------------
    def _name_taint(self, name: str, node: ast.AST) -> Set[object]:
        spec = self.spec
        if spec.name_re is not None and spec.name_re.search(name):
            return {Taint(origin=name, origin_fn=self.fn.qname,
                          origin_line=getattr(node, "lineno", self.fn.lineno))}
        return set()

    def _bind(self, target: ast.AST, taints: Set[object]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(list(taints)[:_MAX_TAINTS])
        elif isinstance(target, ast.Attribute):
            dotted = _attr_chain(target)
            if dotted is not None:
                self.env[dotted] = set(list(taints)[:_MAX_TAINTS])
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(inner, taints)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taints)
        # Subscript stores drop taint tracking (containers are tracked by
        # the variable holding them, not per-key).

    def _report(self, node: ast.AST, taints: Set[object], sink: str,
                chain_below: Tuple[str, ...] = ()) -> None:
        """Emit findings for concrete taints; extend param_flows for markers."""
        if self.exempt:
            return
        line = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0)
        for taint in taints:
            if isinstance(taint, ParamTaint):
                self.param_flows.setdefault((taint.param, sink), SinkHit(
                    param=taint.param,
                    chain=(self.fn.qname,) + chain_below[:12],
                    sink=sink))
            elif isinstance(taint, Taint):
                witness = (self.fn.qname,) + chain_below + (sink,)
                self.findings.append(Finding(
                    code=self.spec.code, path=self.fn.path, line=line, col=col,
                    message=self.spec.message.format(origin=taint.origin,
                                                     sink=sink),
                    witness=witness))

    # -- expression evaluation ----------------------------------------------
    def taint_of(self, expr: Optional[ast.AST]) -> Set[object]:
        if expr is None:
            return set()
        spec = self.spec
        if isinstance(expr, ast.Name):
            out = set(self.env.get(expr.id, ()))
            out |= self._name_taint(expr.id, expr)
            return out
        if isinstance(expr, ast.Attribute):
            out: Set[object] = set()
            dotted = _attr_chain(expr)
            if dotted is not None and dotted in self.env:
                out |= self.env[dotted]
            if expr.attr in spec.source_attrs:
                out.add(Taint(origin=f".{expr.attr}", origin_fn=self.fn.qname,
                              origin_line=expr.lineno))
            out |= self._name_taint(expr.attr, expr)
            # Attribute reads on tainted objects are otherwise clean: the
            # telemetry fields of a secret-holding object are not secrets.
            self.taint_of(expr.value)  # still walk for nested calls
            return out
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.BinOp):
            return self.taint_of(expr.left) | self.taint_of(expr.right)
        if isinstance(expr, ast.BoolOp):
            out = set()
            for value in expr.values:
                out |= self.taint_of(value)
            return out
        if isinstance(expr, ast.UnaryOp):
            return self.taint_of(expr.operand)
        if isinstance(expr, ast.IfExp):
            self.taint_of(expr.test)
            return self.taint_of(expr.body) | self.taint_of(expr.orelse)
        if isinstance(expr, ast.Compare):
            self._check_compare(expr)
            return set()
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in expr.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                out |= self.taint_of(inner)
            return out
        if isinstance(expr, ast.Dict):
            out = set()
            for key, value in zip(expr.keys, expr.values):
                if key is not None:
                    out |= self.taint_of(key)
                out |= self.taint_of(value)
            return out
        if isinstance(expr, ast.Subscript):
            self.taint_of(expr.slice)
            return self.taint_of(expr.value)
        if isinstance(expr, ast.Starred):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.Await):
            return self.taint_of(expr.value)
        if isinstance(expr, ast.NamedExpr):
            taints = self.taint_of(expr.value)
            self._bind(expr.target, taints)
            return taints
        if isinstance(expr, ast.JoinedStr):
            out = set()
            for value in expr.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.taint_of(value.value)
            return out
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = set()
            for gen in expr.generators:
                self._bind(gen.target, self.taint_of(gen.iter))
            out |= self.taint_of(expr.elt)
            return out
        if isinstance(expr, ast.DictComp):
            for gen in expr.generators:
                self._bind(gen.target, self.taint_of(gen.iter))
            return self.taint_of(expr.key) | self.taint_of(expr.value)
        if isinstance(expr, ast.Lambda):
            # Lambda bodies share the enclosing env read-only.
            self.taint_of(expr.body)
            return set()
        return set()

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        taints_per = [self.taint_of(op) for op in operands]
        if not self.spec.check_compares or self.exempt:
            return
        # A compare chain a OP1 b OP2 c: flag when any Eq/NotEq link touches
        # a tainted operand.
        for idx, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            sides = taints_per[idx] | taints_per[idx + 1]
            concrete = {t for t in sides if isinstance(t, Taint)}
            markers = {t for t in sides if isinstance(t, ParamTaint)}
            for taint in concrete:
                self.findings.append(Finding(
                    code=self.spec.code, path=self.fn.path,
                    line=node.lineno, col=node.col_offset,
                    message=self.spec.compare_message.format(origin=taint.origin),
                    witness=(self.fn.qname, "==")))
            for marker in markers:
                self.param_flows.setdefault((marker.param, "=="), SinkHit(
                    param=marker.param, chain=(self.fn.qname,), sink="=="))

    def _eval_call(self, node: ast.Call) -> Set[object]:
        spec, graph = self.spec, self.graph
        site = self.sites.get(id(node))
        callee = site.callee_name if site is not None else None
        dotted = site.dotted if site is not None else None
        targets = site.targets if site is not None else ()

        # Evaluate arguments (skipping **kwargs forwarding — see module doc).
        arg_taints: List[Set[object]] = [self.taint_of(a) for a in node.args]
        kw_taints: Dict[str, Set[object]] = {}
        for kw in node.keywords:
            if kw.arg is None:
                self.taint_of(kw.value)  # walk, but do not forward (**kw gap)
            else:
                kw_taints[kw.arg] = self.taint_of(kw.value)
        all_arg_taints: Set[object] = set()
        for taints in arg_taints:
            all_arg_taints |= taints
        for taints in kw_taints.values():
            all_arg_taints |= taints
        receiver_taints = (self.taint_of(node.func.value)
                           if isinstance(node.func, ast.Attribute) else set())

        # Sanitizers launder: clean result, no sink/propagation checks.
        if callee is not None and callee in spec.sanitizer_calls:
            return set()

        # Sink?
        is_sink = bool(
            (callee is not None and callee in spec.sink_calls)
            or any(_qname_matches(t, spec.sink_call_qnames) for t in targets)
            or (dotted is not None and _qname_matches(dotted, spec.sink_call_qnames))
        )
        if is_sink and all_arg_taints:
            self._report(node, all_arg_taints, sink=dotted or callee or "<sink>")

        # Interprocedural: tainted arguments entering params that flow to a
        # sink inside the callee (per its current summary).
        indexed = [graph.functions[t] for t in targets if t in graph.functions]
        for target_fn in indexed:
            summary = self.summaries.get(target_fn.qname)
            if summary is None or not summary.param_flows:
                continue
            bound = _bind_args(target_fn, node, arg_taints, kw_taints)
            for hit in summary.param_flows:
                taints = bound.get(hit.param, set())
                if taints:
                    self._report(node, taints, sink=hit.sink,
                                 chain_below=hit.chain)

        # Result taint.
        result: Set[object] = set()
        if callee is not None and callee in spec.source_calls:
            result.add(Taint(origin=f"{callee}()", origin_fn=self.fn.qname,
                             origin_line=node.lineno))
        if any(_qname_matches(t, spec.source_call_qnames) for t in targets) \
                or (dotted is not None
                    and _qname_matches(dotted, spec.source_call_qnames)):
            result.add(Taint(origin=f"{dotted or callee}()",
                             origin_fn=self.fn.qname, origin_line=node.lineno))
        for target_fn in indexed:
            summary = self.summaries.get(target_fn.qname)
            if summary is None:
                continue
            bound = _bind_args(target_fn, node, arg_taints, kw_taints)
            for ret in summary.returns:
                if isinstance(ret, Taint):
                    result.add(ret)
                elif isinstance(ret, ParamTaint):
                    result |= bound.get(ret.param, set())
        if not indexed:
            # Unknown callee: propagate argument taint unless it is a
            # shape-only builtin; preserve receiver taint for representation
            # transforms.
            if callee not in _CLEAN_BUILTINS:
                result |= all_arg_taints
            if callee is not None and callee in spec.preserve_methods:
                result |= receiver_taints
        elif callee is not None and callee in spec.preserve_methods:
            result |= receiver_taints
        return set(list(result)[:_MAX_TAINTS])

    # -- statements ----------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        taints = self.taint_of(node.value)
        for target in node.targets:
            self._bind(target, taints)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        if node.value is not None:
            self._bind(node.target, self.taint_of(node.value))

    def visit_AugAssign(self, node: ast.AugAssign) -> None:  # noqa: N802
        taints = self.taint_of(node.value)
        if isinstance(node.target, ast.Name):
            self.env[node.target.id] = \
                set(self.env.get(node.target.id, set())) | taints
        else:
            self._bind(node.target, taints)

    def visit_Return(self, node: ast.Return) -> None:  # noqa: N802
        self.returns |= self.taint_of(node.value)

    def visit_Expr(self, node: ast.Expr) -> None:  # noqa: N802
        self.taint_of(node.value)

    def visit_If(self, node: ast.If) -> None:  # noqa: N802
        self.taint_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_While(self, node: ast.While) -> None:  # noqa: N802
        self.taint_of(node.test)
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    def visit_For(self, node: ast.For) -> None:  # noqa: N802
        self._bind(node.target, self.taint_of(node.iter))
        for stmt in node.body + node.orelse:
            self.visit(stmt)

    visit_AsyncFor = visit_For  # noqa: N815

    def visit_With(self, node: ast.With) -> None:  # noqa: N802
        for item in node.items:
            taints = self.taint_of(item.context_expr)
            if item.optional_vars is not None:
                self._bind(item.optional_vars, taints)
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncWith = visit_With  # noqa: N815

    def visit_Try(self, node: ast.Try) -> None:  # noqa: N802
        for stmt in node.body + node.orelse + node.finalbody:
            self.visit(stmt)
        for handler in node.handlers:
            for stmt in handler.body:
                self.visit(stmt)

    def visit_Raise(self, node: ast.Raise) -> None:  # noqa: N802
        self.taint_of(node.exc)

    def visit_Assert(self, node: ast.Assert) -> None:  # noqa: N802
        self.taint_of(node.test)
        self.taint_of(node.msg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        return  # nested defs are separate graph nodes

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        return


def _attr_chain(expr: ast.AST) -> Optional[str]:
    """``self.x.y`` → pseudo-name for the env; None for computed bases."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


def _bind_args(target_fn: FunctionInfo, call: ast.Call,
               arg_taints: List[Set[object]],
               kw_taints: Dict[str, Set[object]]) -> Dict[str, Set[object]]:
    """Map this call's argument taints onto the callee's parameter names."""
    params = target_fn.params
    offset = 1 if params and params[0] in ("self", "cls") else 0
    bound: Dict[str, Set[object]] = {}
    for idx, taints in enumerate(arg_taints):
        pidx = idx + offset
        if pidx < len(params):
            bound.setdefault(params[pidx], set()).update(taints)
    for name, taints in kw_taints.items():
        if name in params:
            bound.setdefault(name, set()).update(taints)
    return bound


def analyze_taint(graph: CallGraph, spec: TaintSpec,
                  max_rounds: int = 8) -> List[Finding]:
    """Run one taint spec to a summary fixed point; return final findings."""
    summaries: Dict[str, Summary] = {
        qname: Summary() for qname in graph.functions}
    findings: List[Finding] = []
    order = sorted(graph.functions)
    for _ in range(max_rounds):
        changed = False
        findings = []
        for qname in order:
            fn = graph.functions[qname]
            analysis = _FunctionAnalysis(fn, spec, graph, summaries)
            summary, fn_findings = analysis.run()
            old = summaries[qname]
            # Monotone merge, one SinkHit per (param, sink) — existing
            # entries win so chains stabilize and the fixed point converges.
            merged_flows = {(h.param, h.sink): h for h in summary.param_flows}
            merged_flows.update(
                {(h.param, h.sink): h for h in old.param_flows})
            new = Summary(
                returns=old.returns | summary.returns,
                param_flows=frozenset(merged_flows.values()))
            if (new.returns != old.returns
                    or new.param_flows != old.param_flows):
                summaries[qname] = new
                changed = True
            findings.extend(fn_findings)
        if not changed:
            break
    return _dedup(findings)


def _dedup(findings: Sequence[Finding]) -> List[Finding]:
    seen: Set[Tuple[str, str, int, str]] = set()
    out: List[Finding] = []
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.col,
                                                   f.message)):
        key = (finding.code, finding.path, finding.line, finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out
