"""Call-graph construction over a set of parsed source files.

The graph is built purely from the ASTs the lint engine already parses —
no imports are executed.  Resolution is layered, most-precise first:

1. **Module-level name resolution** — ``import``/``from … import`` bindings
   (at any nesting level, so deferred imports inside functions resolve too)
   map local names to dotted targets; targets that are indexed modules,
   functions, or classes resolve exactly.
2. **Method dispatch by declared class** — receivers are typed from
   parameter annotations, constructor-call assignments (``x = Foo()``),
   ``self``-attribute type maps harvested from every method's
   ``self.x = …`` assignments and class-level annotations, and callee
   return annotations (``Optional[T]``/``"T"`` unwrapped).  A method call
   on a typed receiver dispatches through the MRO *and* to every subclass
   override, since the static type is an upper bound.
3. **Callback tracking** — a function reference passed as a call argument
   (``clock.schedule(delay, self._unleash)``, ``release_fn=self._on_release``,
   ``PeriodicTimer(clock, dt, self._adjust_all)``) adds a *callback* edge
   from the registering function, so simulator ``schedule``/``schedule_fast``
   handoffs stay connected.  Nested ``def``s get an implicit edge from the
   enclosing function.
4. **Name fallback** — a method call on an untyped receiver conservatively
   targets every indexed function of that name (an over-approximation),
   except for ubiquitous builtin-container method names (``get``,
   ``append``, …) which would connect everything to everything.

Unresolvable targets are still recorded on the call site as *opaque* dotted
names (``repro.obs.log.JsonLinesLogger.emit`` even when that module is not
among the analyzed files), which is what the taint rules match sinks and
sources against.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.context import FileContext

__all__ = ["CallGraph", "CallSite", "ClassInfo", "FunctionInfo", "ModuleInfo",
           "build_callgraph", "module_qname", "to_dot"]

#: Methods of builtin containers/strings: a call ``x.get(...)`` on an
#: *untyped* receiver is overwhelmingly a dict/deque/str operation, and
#: falling back to "every indexed function named ``get``" would wire
#: unrelated subsystems together.  Typed receivers are never affected.
_BUILTIN_METHOD_NAMES = frozenset({
    "add", "append", "appendleft", "bit_length", "capitalize", "clear",
    "copy", "count", "decode", "difference", "discard", "encode", "endswith",
    "extend", "format", "from_bytes", "get", "hex", "index", "insert",
    "intersection", "isdigit", "items", "join", "keys", "lower", "lstrip",
    "pop", "popitem", "popleft", "remove", "reverse", "rsplit", "rstrip",
    "setdefault", "sort", "split", "startswith", "strip", "title",
    "to_bytes", "union", "update", "upper", "values",
})

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_qname(logical: str) -> str:
    """Dotted module name for a logical path (``repro/core/access.py`` →
    ``repro.core.access``; ``__init__.py`` collapses onto the package)."""
    name = logical[:-3] if logical.endswith(".py") else logical
    parts = [p for p in name.replace("\\", "/").split("/") if p not in (".", "")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<module>"


@dataclass
class CallSite:
    """One call (or callback registration) inside a function body."""

    node: ast.AST
    #: Last name segment of the callee (``emit`` for ``self.log.emit``).
    callee_name: str
    #: Dotted rendering of the callee expression when derivable.
    dotted: Optional[str]
    #: Resolved target qnames — indexed functions *and* opaque dotted names.
    targets: Tuple[str, ...]
    lineno: int
    #: ``call`` | ``callback`` | ``nested``
    kind: str = "call"
    #: False when the targets came from the duck-typed name fallback.
    resolved: bool = True


@dataclass
class FunctionInfo:
    qname: str
    name: str
    node: ast.AST
    module: "ModuleInfo"
    cls: Optional["ClassInfo"] = None
    calls: List[CallSite] = field(default_factory=list)

    @property
    def path(self) -> str:
        return self.module.path

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 1)

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in getattr(args, "posonlyargs", [])]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        return names


@dataclass
class ClassInfo:
    qname: str
    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    bases_raw: List[str] = field(default_factory=list)
    base_qnames: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attribute name → set of class qnames it may hold.
    attr_types: Dict[str, Set[str]] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    qname: str
    path: str
    node: ast.AST
    #: local name → dotted target (modules, functions, classes alike).
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``x = Foo()`` type bindings.
    global_types: Dict[str, Set[str]] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and call edges over the analyzed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.subclasses: Dict[str, Set[str]] = {}

    # -- queries --------------------------------------------------------------
    def transitive_subclasses(self, qname: str) -> Set[str]:
        out: Set[str] = set()
        frontier = [qname]
        while frontier:
            cls = frontier.pop()
            for sub in self.subclasses.get(cls, ()):
                if sub not in out:
                    out.add(sub)
                    frontier.append(sub)
        return out

    def resolve_method(self, cls_qname: str, name: str) -> Optional[FunctionInfo]:
        """MRO-style lookup: the class, then its bases depth-first."""
        seen: Set[str] = set()
        frontier = [cls_qname]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            cls = self.classes.get(current)
            if cls is None:
                continue
            fn = cls.methods.get(name)
            if fn is not None:
                return fn
            frontier.extend(cls.base_qnames)
        return None

    def dispatch_targets(self, cls_qname: str, name: str) -> List[str]:
        """Method targets for a receiver statically typed ``cls_qname``:
        the MRO resolution plus every subclass override (the static type is
        only an upper bound on the runtime type)."""
        targets: List[str] = []
        base = self.resolve_method(cls_qname, name)
        if base is not None:
            targets.append(base.qname)
        for sub in self.transitive_subclasses(cls_qname):
            sub_cls = self.classes.get(sub)
            if sub_cls is not None and name in sub_cls.methods:
                targets.append(sub_cls.methods[name].qname)
        if not targets:
            # Opaque: keep the dotted form for qname-suffix matching.
            targets.append(f"{cls_qname}.{name}")
        return targets

    def successors(self, qname: str) -> List[Tuple[CallSite, str]]:
        """(call site, indexed target qname) pairs for one function."""
        fn = self.functions.get(qname)
        if fn is None:
            return []
        out = []
        for site in fn.calls:
            for target in site.targets:
                if target in self.functions:
                    out.append((site, target))
        return out


# ---------------------------------------------------------------------------
# Pass 1: index modules, classes, functions, imports
# ---------------------------------------------------------------------------

def _index_imports(mod: ModuleInfo, tree: ast.AST) -> None:
    pkg_parts = mod.qname.split(".")
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                mod.imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the package path.
                base = pkg_parts[: len(pkg_parts) - node.level]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mod.imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name


def _index_functions(graph: CallGraph, mod: ModuleInfo, body: Iterable[ast.AST],
                     prefix: str, cls: Optional[ClassInfo],
                     parent: Optional[FunctionInfo]) -> None:
    for node in body:
        if isinstance(node, _FUNC_NODES):
            qname = f"{prefix}.{node.name}"
            fn = FunctionInfo(qname=qname, name=node.name, node=node,
                              module=mod, cls=cls)
            graph.functions[qname] = fn
            graph.functions_by_name.setdefault(node.name, []).append(fn)
            if cls is not None and parent is None:
                cls.methods.setdefault(node.name, fn)
            elif parent is None:
                mod.functions[node.name] = fn
            if parent is not None:
                # Nested def: conservatively assume the enclosing function
                # eventually invokes it (closure handed to a scheduler, …).
                parent.calls.append(CallSite(
                    node=node, callee_name=node.name, dotted=None,
                    targets=(qname,), lineno=node.lineno, kind="nested"))
            _index_functions(graph, mod, node.body, qname, None, fn)
        elif isinstance(node, ast.ClassDef):
            qname = f"{prefix}.{node.name}"
            info = ClassInfo(qname=qname, name=node.name, node=node, module=mod)
            info.bases_raw = [_dotted(b) for b in node.bases if _dotted(b)]
            graph.classes[qname] = info
            if parent is None and cls is None:
                mod.classes[node.name] = info
            _index_functions(graph, mod, node.body, qname, info, None)


def _dotted(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` rendering of a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Pass 2: link class hierarchy
# ---------------------------------------------------------------------------

def _resolve_dotted(graph: CallGraph, mod: ModuleInfo, dotted: str) -> str:
    """Resolve a dotted name through the module's import bindings."""
    head, _, rest = dotted.partition(".")
    target = mod.imports.get(head)
    if target is not None:
        return f"{target}.{rest}" if rest else target
    if head in mod.classes and not rest:
        return mod.classes[head].qname
    if head in mod.functions and not rest:
        return mod.functions[head].qname
    candidate = f"{mod.qname}.{dotted}"
    if candidate in graph.classes or candidate in graph.functions:
        return candidate
    return dotted


def _link_classes(graph: CallGraph) -> None:
    for cls in graph.classes.values():
        for raw in cls.bases_raw:
            resolved = _resolve_dotted(graph, cls.module, raw)
            cls.base_qnames.append(resolved)
            graph.subclasses.setdefault(resolved, set()).add(cls.qname)


# ---------------------------------------------------------------------------
# Annotation → class-qname resolution
# ---------------------------------------------------------------------------

_WRAPPER_GENERICS = {"Optional", "Final", "ClassVar", "Annotated"}


def _annotation_types(graph: CallGraph, mod: ModuleInfo,
                      ann: Optional[ast.AST]) -> Set[str]:
    """Class qnames an annotation may denote (Optional/str-quotes unwrapped).

    Container generics (``List[T]``, ``Dict[K, V]``) yield nothing: the
    annotated value is the container, not a ``T``.
    """
    if ann is None:
        return set()
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return set()
    if isinstance(ann, ast.Subscript):
        base = _dotted(ann.value)
        if base and base.split(".")[-1] in _WRAPPER_GENERICS:
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_types(graph, mod, inner)
        return set()
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return (_annotation_types(graph, mod, ann.left)
                | _annotation_types(graph, mod, ann.right))
    if isinstance(ann, ast.Constant) and ann.value is None:
        return set()
    dotted = _dotted(ann)
    if not dotted:
        return set()
    resolved = _resolve_dotted(graph, mod, dotted)
    return {resolved}


# ---------------------------------------------------------------------------
# Pass 3 + 4: type harvesting and call-site resolution
# ---------------------------------------------------------------------------

class _Scope:
    """Receiver typing for one function body (sequential, last-write-wins)."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo) -> None:
        self.graph = graph
        self.fn = fn
        self.mod = fn.module
        self.local_types: Dict[str, Set[str]] = {}
        node = fn.node
        args = node.args
        all_args = list(getattr(args, "posonlyargs", [])) + list(args.args) \
            + list(args.kwonlyargs)
        for arg in all_args:
            types = _annotation_types(graph, self.mod, arg.annotation)
            if types:
                self.local_types[arg.arg] = types

    def types_of(self, expr: ast.AST) -> Set[str]:
        graph, mod = self.graph, self.mod
        if isinstance(expr, ast.Name):
            if expr.id in self.local_types:
                return set(self.local_types[expr.id])
            if expr.id == "self" and self.fn.cls is not None:
                return {self.fn.cls.qname}
            if expr.id in mod.global_types:
                return set(mod.global_types[expr.id])
            if expr.id in mod.classes:
                return set()  # a class object, not an instance
            return set()
        if isinstance(expr, ast.Attribute):
            base_types = self.types_of(expr.value)
            out: Set[str] = set()
            for base in base_types:
                cls = graph.classes.get(base)
                if cls is not None:
                    out |= cls.attr_types.get(expr.attr, set())
            return out
        if isinstance(expr, ast.Call):
            return self.call_result_types(expr)
        if isinstance(expr, ast.Await):
            return self.types_of(expr.value)
        if isinstance(expr, (ast.IfExp,)):
            return self.types_of(expr.body) | self.types_of(expr.orelse)
        if isinstance(expr, ast.BoolOp):
            out = set()
            for value in expr.values:
                out |= self.types_of(value)
            return out
        if isinstance(expr, ast.NamedExpr):
            return self.types_of(expr.value)
        return set()

    def call_result_types(self, call: ast.Call) -> Set[str]:
        graph, mod = self.graph, self.mod
        dotted = _dotted(call.func)
        if dotted is not None:
            resolved = _resolve_dotted(graph, mod, dotted)
            if resolved in graph.classes:
                return {resolved}
        # Typed receiver → return annotation of the resolved method.
        _, targets, _ = self.resolve_call(call.func)
        out: Set[str] = set()
        for target in targets:
            fn = graph.functions.get(target)
            if fn is not None:
                out |= _annotation_types(graph, fn.module,
                                         getattr(fn.node, "returns", None))
        return out

    def resolve_call(self, func: ast.AST) -> Tuple[Optional[str], Tuple[str, ...], bool]:
        """→ (dotted repr, target qnames (indexed or opaque), resolved?)."""
        graph, mod = self.graph, self.mod
        if isinstance(func, ast.Name):
            name = func.id
            dotted = _resolve_dotted(graph, mod, name)
            if dotted in graph.classes:
                init = graph.resolve_method(dotted, "__init__")
                return dotted, (init.qname,) if init else (f"{dotted}.__init__",), True
            if dotted in graph.functions:
                return dotted, (dotted,), True
            if name in mod.imports:
                return dotted, (dotted,), True  # opaque imported callable
            return name, (), True  # builtin / unknown local
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base_dotted = _dotted(func.value)
            # Module-alias call: codec.decode_frame(...)
            if base_dotted is not None:
                resolved_base = _resolve_dotted(graph, mod, base_dotted)
                full = f"{resolved_base}.{attr}"
                if full in graph.functions:
                    return full, (full,), True
                if resolved_base in graph.classes:
                    # ClassName.method(...) — an unbound-call form.
                    return full, tuple(graph.dispatch_targets(resolved_base, attr)), True
                if resolved_base in graph.modules:
                    return full, (full,), True
            base_types = self.types_of(func.value)
            if base_types:
                targets: List[str] = []
                for base in sorted(base_types):
                    targets.extend(graph.dispatch_targets(base, attr))
                dotted = f"{sorted(base_types)[0]}.{attr}"
                return dotted, tuple(dict.fromkeys(targets)), True
            if base_dotted is not None and "." not in base_dotted \
                    and base_dotted in mod.imports:
                # attr on an opaque imported object.
                return f"{mod.imports[base_dotted]}.{attr}", \
                    (f"{mod.imports[base_dotted]}.{attr}",), True
            # Duck fallback: every indexed function of this name.
            if attr in _BUILTIN_METHOD_NAMES:
                return base_dotted and f"{base_dotted}.{attr}" or attr, (), True
            fallback = tuple(fn.qname for fn in graph.functions_by_name.get(attr, ()))
            return (f"{base_dotted}.{attr}" if base_dotted else attr), fallback, False
        if isinstance(func, ast.Lambda):
            return None, (), True
        return None, (), True


class _CallCollector(ast.NodeVisitor):
    """Collect call sites + callback references for one function body.

    Does not descend into nested ``def``/``class`` (they are separate graph
    nodes); does descend into lambdas, whose calls belong to the enclosing
    function.
    """

    def __init__(self, scope: _Scope) -> None:
        self.scope = scope
        self.fn = scope.fn

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:  # noqa: N802
        if node is not self.fn.node:
            return
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # noqa: N815

    def visit_ClassDef(self, node: ast.ClassDef) -> None:  # noqa: N802
        return

    def visit_Assign(self, node: ast.Assign) -> None:  # noqa: N802
        self.generic_visit(node)
        types = self.scope.types_of(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scope.local_types[target.id] = types
            elif isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        self.scope.local_types[elt.id] = set()

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:  # noqa: N802
        self.generic_visit(node)
        if isinstance(node.target, ast.Name):
            types = _annotation_types(self.scope.graph, self.scope.mod,
                                      node.annotation)
            if not types and node.value is not None:
                types = self.scope.types_of(node.value)
            self.scope.local_types[node.target.id] = types

    def visit_Call(self, node: ast.Call) -> None:  # noqa: N802
        scope = self.scope
        dotted, targets, resolved = scope.resolve_call(node.func)
        callee_name = dotted.split(".")[-1] if dotted else "<lambda>"
        self.fn.calls.append(CallSite(
            node=node, callee_name=callee_name, dotted=dotted,
            targets=targets, lineno=node.lineno, resolved=resolved))
        # Callback arguments: function references handed to the callee.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._maybe_callback(arg)
        self.generic_visit(node)

    def _maybe_callback(self, arg: ast.AST) -> None:
        scope = self.scope
        targets: Tuple[str, ...] = ()
        name = None
        if isinstance(arg, ast.Attribute):
            base_types = scope.types_of(arg.value)
            if base_types:
                collected: List[str] = []
                for base in sorted(base_types):
                    fn = scope.graph.resolve_method(base, arg.attr)
                    if fn is not None:
                        collected.append(fn.qname)
                    for sub in scope.graph.transitive_subclasses(base):
                        sub_cls = scope.graph.classes.get(sub)
                        if sub_cls and arg.attr in sub_cls.methods:
                            collected.append(sub_cls.methods[arg.attr].qname)
                targets = tuple(dict.fromkeys(collected))
                name = arg.attr
        elif isinstance(arg, ast.Name):
            dotted = _resolve_dotted(scope.graph, scope.mod, arg.id)
            if dotted in scope.graph.functions:
                targets = (dotted,)
                name = arg.id
        if targets:
            self.fn.calls.append(CallSite(
                node=arg, callee_name=name or "<callback>", dotted=None,
                targets=targets, lineno=getattr(arg, "lineno", 1),
                kind="callback"))


def _harvest_attr_types(graph: CallGraph) -> None:
    for cls in graph.classes.values():
        mod = cls.module
        # Class-level annotations: ``transport: Optional[Transport]``.
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                types = _annotation_types(graph, mod, stmt.annotation)
                if types:
                    cls.attr_types.setdefault(stmt.target.id, set()).update(types)
        for method in cls.methods.values():
            scope = _Scope(graph, method)
            for node in ast.walk(method.node):
                value_types: Set[str] = set()
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    value_types = scope.types_of(node.value)
                    targets = list(node.targets)
                elif isinstance(node, ast.AnnAssign) and node.target is not None:
                    value_types = _annotation_types(graph, mod, node.annotation)
                    if not value_types and node.value is not None:
                        value_types = scope.types_of(node.value)
                    targets = [node.target]
                if not value_types:
                    continue
                for target in targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        cls.attr_types.setdefault(target.attr, set()) \
                            .update(value_types)


def _harvest_global_types(graph: CallGraph) -> None:
    for mod in graph.modules.values():
        for stmt in mod.node.body if hasattr(mod.node, "body") else ():
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                value = stmt.value
                if isinstance(value, ast.Call):
                    dotted = _dotted(value.func)
                    if dotted:
                        resolved = _resolve_dotted(graph, mod, dotted)
                        if resolved in graph.classes:
                            mod.global_types[stmt.targets[0].id] = {resolved}


def build_callgraph(contexts: Sequence[FileContext]) -> CallGraph:
    """Build the whole-program call graph from parsed file contexts."""
    graph = CallGraph()
    for ctx in contexts:
        qname = module_qname(ctx.logical)
        mod = ModuleInfo(qname=qname, path=ctx.path, node=ctx.tree)
        graph.modules[qname] = mod
        _index_imports(mod, ctx.tree)
        _index_functions(graph, mod, ctx.tree.body, qname, None, None)
    _link_classes(graph)
    # Two rounds of attr harvesting: the second pass sees types that the
    # first pass could only derive from other classes' attr maps.
    _harvest_global_types(graph)
    _harvest_attr_types(graph)
    _harvest_attr_types(graph)
    for fn in graph.functions.values():
        fn.calls = [c for c in fn.calls if c.kind == "nested"]
        collector = _CallCollector(_Scope(graph, fn))
        collector.visit(fn.node)
    return graph


def to_dot(graph: CallGraph) -> str:
    """GraphViz rendering of the call graph (callback edges dashed)."""
    lines = ["digraph netfence_calls {", "  rankdir=LR;",
             '  node [shape=box, fontsize=9, fontname="monospace"];']
    emitted: Set[str] = set()

    def node_id(qname: str) -> str:
        return '"%s"' % qname.replace('"', "'")

    for qname in sorted(graph.functions):
        lines.append(f"  {node_id(qname)};")
        emitted.add(qname)
    seen_edges: Set[Tuple[str, str, str]] = set()
    for qname in sorted(graph.functions):
        for site, target in graph.successors(qname):
            key = (qname, target, site.kind)
            if key in seen_edges:
                continue
            seen_edges.add(key)
            style = ' [style=dashed, label="callback"]' \
                if site.kind in ("callback", "nested") else ""
            lines.append(f"  {node_id(qname)} -> {node_id(target)}{style};")
    lines.append("}")
    return "\n".join(lines)
