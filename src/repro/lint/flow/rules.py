"""Flow rules NF101–NF103: NetFence's security invariants, machine-checked.

These are whole-program rules — they need the call graph, so they do not
run per-file like NF001–NF016.  Each is registered in the ordinary rule
registry (stable code, catalog entry, ``--select`` support) but carries
``paths = ()`` so the per-file engine never instantiates it; the engine's
flow phase (``runner lint --flow``) calls :meth:`FlowRule.analyze` with the
graph built over every parsed file.

* **NF101** — *no unverified rate increase* (§4.4, Fig. 17): no call path
  from a function that decodes wire input (``decode_frame`` /
  ``decode_packet``) to a rate-limiter increase site (``rate_bps +=`` or
  ``has_incr* = True``) unless the path passes a node that calls a
  feedback verifier (``validate`` / ``multi_validate`` / ``mac_equal`` /
  ``verify``).
* **NF102** — *key material never leaves the crypto layer un-MAC'd*
  (§4.4, Eqs. 1–3): values derived from the master secret or epoch keys
  must not flow to logs, flight-recorder rings, stats JSON, or the wire;
  passing through ``compute_mac`` launders (that is the MAC'ing).
* **NF103** — *MAC comparisons are constant-time* (§6.2): any value that
  is a MAC (``compute_mac`` result, ``.mac`` / ``.token_nop`` field) must
  be compared via ``crypto.mac.mac_equal``, never ``==``/``!=`` — the
  interprocedural twin of the per-node NF013.
"""

from __future__ import annotations

import ast
import re
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple, Type

from repro.lint.context import FileContext
from repro.lint.flow.callgraph import CallGraph, FunctionInfo
from repro.lint.flow.taint import Finding, TaintSpec, analyze_taint
from repro.lint.registry import LintRule, register
from repro.lint.violations import Violation

__all__ = ["FlowRule", "NoUnverifiedRateIncrease", "NoKeyMaterialEgress",
           "ConstantTimeMacCompareFlow", "flow_rules", "run_flow_rules"]


class FlowRule(LintRule):
    """Base class for whole-program (call-graph) rules."""

    #: Flow rules never match per-file scoping; the flow phase runs them.
    paths: ClassVar[Tuple[str, ...]] = ()
    is_flow_rule: ClassVar[bool] = True

    @classmethod
    def analyze(cls, graph: CallGraph,
                contexts: Sequence[FileContext]) -> List[Violation]:
        raise NotImplementedError

    @classmethod
    def _violation(cls, finding: Finding,
                   contexts_by_path: Dict[str, FileContext]) -> Violation:
        ctx = contexts_by_path.get(finding.path)
        source_line = ctx.line_text(finding.line) if ctx is not None else ""
        message = finding.message
        if finding.witness:
            message += " [path: " + " -> ".join(
                _short(q) for q in finding.witness) + "]"
        return Violation(
            code=cls.code, rule=cls.name, path=finding.path,
            line=finding.line, col=finding.col, message=message,
            source_line=source_line, witness=finding.witness)


def _short(qname: str) -> str:
    """Witness entries without the ``repro.``-package prefix noise."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 2 else qname


# ---------------------------------------------------------------------------
# NF101 — reachability: wire input → rate increase must pass a verifier
# ---------------------------------------------------------------------------

_DECODERS = frozenset({"decode_frame", "decode_packet"})
_VERIFIERS = frozenset({"validate", "multi_validate", "verify", "mac_equal"})
_INCR_ATTRS = frozenset({"has_incr", "has_incr_star"})


def _decode_site(fn: FunctionInfo) -> Optional[int]:
    for site in fn.calls:
        if site.kind == "call" and site.callee_name in _DECODERS:
            return site.lineno
    return None


def _is_sanitizing(fn: FunctionInfo) -> bool:
    return any(site.kind == "call" and site.callee_name in _VERIFIERS
               for site in fn.calls)


def _increase_sites(fn: FunctionInfo) -> List[Tuple[int, str]]:
    """(line, description) of rate-increase statements in this function."""
    out: List[Tuple[int, str]] = []
    for node in ast.walk(fn.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn.node:
            continue
        if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add) \
                and isinstance(node.target, ast.Attribute) \
                and node.target.attr == "rate_bps":
            out.append((node.lineno, "rate_bps +="))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and target.attr in _INCR_ATTRS \
                        and isinstance(node.value, ast.Constant) \
                        and node.value.value is True:
                    out.append((node.lineno, f"{target.attr} = True"))
    return out


@register
class NoUnverifiedRateIncrease(FlowRule):
    code = "NF101"
    name = "no-unverified-rate-increase"
    rationale = (
        "no call path from wire-input decoding to a RegularRateLimiter "
        "rate-increase site may skip feedback verification (§4.4: unverified "
        "feedback must never raise a sender's rate)"
    )
    history = ("PR 6's live policer asserts this dynamically via the "
               "unverified_admissions counter; this proves it statically")

    @classmethod
    def analyze(cls, graph: CallGraph,
                contexts: Sequence[FileContext]) -> List[Violation]:
        by_path = {ctx.path: ctx for ctx in contexts}
        sanitizing = {fn.qname for fn in graph.functions.values()
                      if _is_sanitizing(fn)}
        sinks = {fn.qname: _increase_sites(fn)
                 for fn in graph.functions.values()}
        sinks = {q: sites for q, sites in sinks.items() if sites}
        violations: List[Violation] = []
        for fn in graph.functions.values():
            decode_line = _decode_site(fn)
            if decode_line is None or fn.qname in sanitizing:
                continue
            # BFS avoiding sanitizing nodes; parent map gives the witness.
            parent: Dict[str, Optional[str]] = {fn.qname: None}
            frontier = [fn.qname]
            while frontier:
                current = frontier.pop(0)
                for _site, target in graph.successors(current):
                    if target in parent or target in sanitizing:
                        continue
                    parent[target] = current
                    frontier.append(target)
            for sink_qname, sites in sorted(sinks.items()):
                if sink_qname not in parent:
                    continue
                chain: List[str] = []
                cursor: Optional[str] = sink_qname
                while cursor is not None:
                    chain.append(cursor)
                    cursor = parent[cursor]
                chain.reverse()
                line, what = sites[0]
                finding = Finding(
                    code=cls.code, path=fn.path, line=decode_line, col=0,
                    message=(f"wire input decoded here reaches rate increase "
                             f"'{what}' in {_short(sink_qname)} without "
                             f"passing a feedback verifier"),
                    witness=tuple(chain) + (f"{_short(sink_qname)}:{line}",))
                violations.append(cls._violation(finding, by_path))
        return violations


# ---------------------------------------------------------------------------
# NF102 — taint: key material must not reach logs / dumps / stats / wire
# ---------------------------------------------------------------------------

_NF102_SPEC = TaintSpec(
    code="NF102",
    name_re=re.compile(r"(^|_)(master(_secrets?)?|epoch_keys?|secrets?|kai?)(_|$)",
                       re.IGNORECASE),
    source_calls=frozenset({"derive_key"}),
    source_call_qnames=frozenset({
        "repro.crypto.mac.derive_key",
        "AccessRouterSecret.current",
        "AccessRouterSecret.candidates",
        "AccessRouterSecret._key_for_epoch",
        "ASKeyRegistry.key_for",
    }),
    sanitizer_calls=frozenset({"compute_mac", "mac_equal"}),
    sink_call_qnames=frozenset({
        "JsonLinesLogger.emit", "JsonLinesLogger.debug", "JsonLinesLogger.info",
        "JsonLinesLogger.warning", "JsonLinesLogger.error",
        "JsonLinesLogger.span_record",
        "FlightRecorder.record_log", "FlightRecorder.record_span",
        "FlightRecorder.record_metrics", "FlightRecorder.payload",
        "FlightRecorder.dump",
        "repro.runtime.codec.encode_packet", "repro.runtime.codec.encode_hello",
        "json.dump", "json.dumps",
    }),
    message="key material '{origin}' flows to sink '{sink}' un-MAC'd",
)


@register
class NoKeyMaterialEgress(FlowRule):
    code = "NF102"
    name = "no-key-material-egress"
    rationale = (
        "master-secret / epoch-key values must never flow to logs, flight "
        "dumps, stats JSON, or the wire except through compute_mac (§4.4: "
        "feedback is unforgeable only while Ka/Kai stay inside the router)"
    )
    history = ("the flight recorder serializes raw log attrs; one logged "
               "secret would void every MAC the policer ever stamped")

    @classmethod
    def analyze(cls, graph: CallGraph,
                contexts: Sequence[FileContext]) -> List[Violation]:
        by_path = {ctx.path: ctx for ctx in contexts}
        return [cls._violation(f, by_path)
                for f in analyze_taint(graph, _NF102_SPEC)]


# ---------------------------------------------------------------------------
# NF103 — taint: MAC values are compared only via mac_equal
# ---------------------------------------------------------------------------

_NF103_SPEC = TaintSpec(
    code="NF103",
    source_calls=frozenset({"compute_mac"}),
    source_call_qnames=frozenset({"repro.crypto.mac.compute_mac"}),
    source_attrs=frozenset({"mac", "token_nop"}),
    sanitizer_calls=frozenset({"mac_equal"}),
    exempt_functions=frozenset({"mac_equal"}),
    check_compares=True,
    compare_message=("MAC value '{origin}' compared with ==/!= "
                     "(timing side channel); use crypto.mac.mac_equal"),
)


@register
class ConstantTimeMacCompareFlow(FlowRule):
    code = "NF103"
    name = "mac-compare-flow"
    rationale = (
        "every comparison against a MAC value (compute_mac result, "
        ".mac/.token_nop field) must route through mac_equal, even when the "
        "value crossed function boundaries first (interprocedural NF013)"
    )
    history = "crypto.mac.mac_equal exists precisely for this (seed)"

    @classmethod
    def analyze(cls, graph: CallGraph,
                contexts: Sequence[FileContext]) -> List[Violation]:
        by_path = {ctx.path: ctx for ctx in contexts}
        return [cls._violation(f, by_path)
                for f in analyze_taint(graph, _NF103_SPEC)]


def flow_rules(rules: Sequence[Type[LintRule]]) -> List[Type[FlowRule]]:
    """The flow-capable subset of a selected rule list."""
    return [rule for rule in rules
            if isinstance(rule, type) and issubclass(rule, FlowRule)]


def run_flow_rules(graph: CallGraph, contexts: Sequence[FileContext],
                   rules: Sequence[Type[FlowRule]]) -> List[Violation]:
    violations: List[Violation] = []
    for rule in rules:
        violations.extend(rule.analyze(graph, contexts))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return violations
