"""Whole-program dataflow substrate for the NetFence linter.

``repro.lint.flow`` adds what the per-node rules (NF001–NF016) structurally
cannot have: a call graph over the whole ``src/repro`` tree and an
interprocedural taint engine on top of it.  The flow rules NF101–NF103
machine-check the paper's security invariants — unverified feedback never
raises a rate, key material never leaves the crypto layer un-MAC'd, MAC
comparisons are constant-time — as static theorems with witness call
chains, not just as dynamic counters.

Run via ``runner lint --flow`` (``--flow-graph out.dot`` exports the call
graph for inspection).
"""

from repro.lint.flow.callgraph import (
    CallGraph,
    CallSite,
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    build_callgraph,
    module_qname,
    to_dot,
)
from repro.lint.flow.rules import (
    ConstantTimeMacCompareFlow,
    FlowRule,
    NoKeyMaterialEgress,
    NoUnverifiedRateIncrease,
    flow_rules,
    run_flow_rules,
)
from repro.lint.flow.taint import Finding, TaintSpec, analyze_taint

__all__ = [
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "ConstantTimeMacCompareFlow",
    "Finding",
    "FlowRule",
    "FunctionInfo",
    "ModuleInfo",
    "NoKeyMaterialEgress",
    "NoUnverifiedRateIncrease",
    "TaintSpec",
    "analyze_taint",
    "build_callgraph",
    "flow_rules",
    "module_qname",
    "run_flow_rules",
    "to_dot",
]
