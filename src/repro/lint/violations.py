"""Violation record emitted by lint rules."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Violation:
    """One rule finding at one source location.

    ``fingerprint`` identifies the finding by *content* — rule code, logical
    path, and the stripped source line — rather than by line number, so a
    committed baseline keeps matching after unrelated edits shift lines.
    Flow findings additionally carry a ``witness`` call chain; it is
    presentation, not identity, so it stays out of the fingerprint.
    """

    code: str
    rule: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    #: For flow rules: the call chain proving the finding (qualified names).
    witness: Tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        # Hash the *logical* path, not the invocation path, so a committed
        # baseline matches whether lint runs on `src/repro`, an absolute
        # path, or from a different working directory.
        from repro.lint.context import logical_path

        key = f"{self.code}|{logical_path(self.path)}|{self.source_line.strip()}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "source_line": self.source_line,
            "fingerprint": self.fingerprint,
        }
        if self.witness:
            record["witness"] = list(self.witness)
        return record
