"""Hot-path rules: keep the per-packet path allocation-light and handle-free.

History: PR 5's overhaul got its ~2.3× by making exactly these changes —
``slots=True`` on per-packet dataclasses, replacing ``dataclasses.replace``
with direct construction, and a no-handle ``schedule_fast`` for events that
are never cancelled.  These rules stop the wins from eroding one innocent
edit at a time.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.lint.context import FileContext
from repro.lint.registry import LintRule, register

#: Modules whose dataclass instances are created or mutated per packet.
_SLOTS_MODULES = (
    "repro/core/header.py",
    "repro/core/feedback.py",
    "repro/simulator/packet.py",
    "repro/simulator/queues.py",
)

#: Modules on the per-packet path, where a hidden O(fields) copy or a
#: recursive deepcopy is a measurable regression.  Setup-time modules
#: (params, deployment, domain, topology) are deliberately not listed —
#: dataclasses.replace is fine when it runs once per scenario.
_HOT_PATH_MODULES = (
    "repro/core/header.py",
    "repro/core/feedback.py",
    "repro/core/access.py",
    "repro/core/bottleneck.py",
    "repro/core/endhost.py",
    "repro/core/multibottleneck.py",
    "repro/core/quota.py",
    "repro/core/ratelimiter.py",
    "repro/core/aslevel.py",
    "repro/simulator/engine.py",
    "repro/simulator/link.py",
    "repro/simulator/node.py",
    "repro/simulator/packet.py",
    "repro/simulator/queues.py",
    "repro/simulator/fairqueue.py",
    "repro/transport/*",
)


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.expr]:
    """Return the ``@dataclass`` decorator node, or ``None``."""
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "dataclass":
            return dec
    return None


@register
class SlotsDataclassRule(LintRule):
    """NF005: per-packet dataclasses must declare ``slots=True``."""

    code = "NF005"
    name = "hot-path-dataclass-slots"
    rationale = (
        "Instances of these dataclasses exist per packet; without slots each "
        "one carries a dict and every field access is a dict lookup — the "
        "exact overhead PR 5 measured and removed."
    )
    history = "PR 5 (slots=True on Packet/Feedback/NetFenceHeader)"
    paths = _SLOTS_MODULES

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        dec = _dataclass_decorator(node)
        if dec is not None:
            has_slots = isinstance(dec, ast.Call) and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in dec.keywords
            )
            if not has_slots:
                self.report(
                    node,
                    f"dataclass {node.name} in a per-packet module must "
                    "declare @dataclass(slots=True)",
                )
        self.generic_visit(node)


@register
class NoHotPathCopyRule(LintRule):
    """NF006: no ``dataclasses.replace`` / ``copy.deepcopy`` on the packet path."""

    code = "NF006"
    name = "no-hot-path-copies"
    rationale = (
        "dataclasses.replace re-inspects fields on every call and deepcopy "
        "walks the object graph; both were measured hot-spots. Construct the "
        "new value directly (see Feedback.copy) or alias immutable values."
    )
    history = "PR 5 (Feedback.copy direct construction; endhost aliasing)"
    paths = _HOT_PATH_MODULES

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._bad_names: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "dataclasses":
            for alias in node.names:
                if alias.name == "replace":
                    self._bad_names.add(alias.asname or alias.name)
        elif node.module == "copy":
            for alias in node.names:
                if alias.name == "deepcopy":
                    self._bad_names.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        qualified = (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and (
                (func.value.id == "dataclasses" and func.attr == "replace")
                or (func.value.id == "copy" and func.attr == "deepcopy")
            )
        )
        bare = isinstance(func, ast.Name) and func.id in self._bad_names
        if qualified or bare:
            self.report(
                node,
                "dataclasses.replace/copy.deepcopy on a hot-path module; "
                "construct the value directly instead",
            )
        self.generic_visit(node)


@register
class ScheduleFastHandleRule(LintRule):
    """NF007: ``schedule_fast`` results must never be kept (or cancelled)."""

    code = "NF007"
    name = "schedule-fast-no-handle"
    rationale = (
        "schedule_fast allocates no Event and returns None by contract; "
        "storing or returning its result means the caller intends to cancel "
        "it later, which silently never works. Use schedule() when a handle "
        "is needed."
    )
    history = "PR 5 (no-handle fast path for link transmit/deliver events)"
    paths = ("repro/*",)

    @staticmethod
    def _is_schedule_fast_call(node: Optional[ast.AST]) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "schedule_fast"
        )

    def _check_value(self, node: ast.AST, value: Optional[ast.expr]) -> None:
        if self._is_schedule_fast_call(value):
            self.report(
                node,
                "schedule_fast returns no handle (None); do not store or "
                "return its result — use schedule() if cancellation is needed",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_value(node, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_value(node, node.value)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._check_value(node, node.value)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        self._check_value(node, node.value)
        self.generic_visit(node)
