"""Clock-seam rules: core/transport/runtime speak ``.clock``, never ``.sim``.

History: PR 6 refactored every core/ and transport/ component onto an
injected :class:`repro.runtime.clock.Clock` so the same routers police both
simulated packets and live datagrams; ``.sim`` survives only as a read-only
compat alias on sim-native classes.  New ``.sim`` accesses in the seam
layers would quietly re-weld the defense logic to the simulator.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.lint.context import FileContext
from repro.lint.registry import LintRule, register

_US_PER_S = (1e6, 1_000_000)


@register
class SimAttributeRule(LintRule):
    """NF003: ``.sim`` attribute access in clock-seam layers."""

    code = "NF003"
    name = "no-sim-attribute-in-seam-layers"
    rationale = (
        "core/, transport/ and runtime/ components receive an injected clock; "
        "touching a .sim attribute re-couples them to the discrete-event "
        "engine and breaks the live (WallClock) deployment."
    )
    history = "PR 6 (sim → clock rename across core/ and transport/)"
    paths = ("repro/core/*", "repro/transport/*", "repro/runtime/*")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "sim":
            self.report(
                node,
                "access to the legacy .sim alias; use the injected .clock "
                "(repro.runtime.clock.Clock) instead",
            )
        self.generic_visit(node)


@register
class HandRolledQuantizeRule(LintRule):
    """NF004: hand-rolled microsecond timestamp conversion at the wire/MAC
    boundary instead of ``crypto.mac.quantize_ts``/``unquantize_ts``."""

    code = "NF004"
    name = "use-quantize-ts"
    rationale = (
        "MACs verify across a socket only because both sides hash the exact "
        "same integer-microsecond timestamp; an ad-hoc int(ts * 1e6) that "
        "drifts from quantize_ts (rounding mode, width) makes stamped "
        "feedback fail verification after a round trip."
    )
    history = "PR 6 (wire codec quantize_ts so MACs survive the socket)"
    paths = ("repro/runtime/*", "repro/crypto/*")
    exclude = ("repro/crypto/mac.py",)  # the canonical implementation

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._reported_binops: Set[int] = set()

    @staticmethod
    def _is_us_scale(node: ast.AST) -> bool:
        return isinstance(node, ast.Constant) and node.value in _US_PER_S

    def _check_binop(self, node: ast.BinOp) -> bool:
        if isinstance(node.op, ast.Mult):
            return self._is_us_scale(node.left) or self._is_us_scale(node.right)
        if isinstance(node.op, ast.Div):
            return self._is_us_scale(node.right)
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in ("int", "round")
            and len(node.args) == 1
            and isinstance(node.args[0], ast.BinOp)
            and self._check_binop(node.args[0])
        ):
            self._reported_binops.add(id(node.args[0]))
            self.report(
                node,
                "hand-rolled microsecond timestamp conversion; use "
                "repro.crypto.mac.quantize_ts so MACs hash identically on "
                "both sides of the wire",
            )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (
            isinstance(node.op, ast.Div)
            and self._is_us_scale(node.right)
            and id(node) not in self._reported_binops
        ):
            self.report(
                node,
                "hand-rolled microseconds→seconds conversion; use "
                "repro.crypto.mac.unquantize_ts",
            )
        self.generic_visit(node)
