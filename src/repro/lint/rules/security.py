"""Security rules for the crypto and live-runtime layers.

These encode the ROADMAP's machine-checked-invariant direction ("malicious
⇒ never forwarded"): the wire boundary must never execute attacker-shaped
bytes, secret comparisons must be constant-time, and security checks must
survive ``python -O``.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.lint.registry import LintRule, register

#: Identifier shapes that hold MAC/secret material.
_SECRET_NAME = re.compile(
    r"(^|_)(mac|token|digest|sig|signature|secret|key)s?(_|$)", re.IGNORECASE
)

_UNSAFE_DESERIALIZE = {
    ("pickle", "load"), ("pickle", "loads"),
    ("marshal", "load"), ("marshal", "loads"),
    ("shelve", "open"),
}


def _identifier_of(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return _identifier_of(expr.func)
    return None


def _is_benign_operand(expr: ast.AST) -> bool:
    """Comparisons against None / empty bytes are presence checks, not
    secret comparisons."""
    return isinstance(expr, ast.Constant) and expr.value in (None, b"", "")


@register
class NoUnsafeDeserializeRule(LintRule):
    """NF012: no pickle/marshal/eval/exec at the wire boundary."""

    code = "NF012"
    name = "no-unsafe-deserialization"
    rationale = (
        "runner serve feeds attacker-controlled datagrams into the decode "
        "path; pickle/marshal/eval on such bytes is remote code execution. "
        "The deterministic codec (repro.runtime.codec) is the only wire "
        "format."
    )
    history = "PR 6 (wire codec; serve smoke gates on codec_errors)"
    paths = ("repro/runtime/*", "repro/crypto/*")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _UNSAFE_DESERIALIZE
        ):
            self.report(
                node,
                f"{func.value.id}.{func.attr}() executes arbitrary objects; "
                "use the deterministic wire codec (repro.runtime.codec)",
            )
        elif isinstance(func, ast.Name) and func.id in ("eval", "exec"):
            self.report(
                node,
                f"{func.id}() in a wire/crypto layer is code execution on "
                "data; parse explicitly instead",
            )
        self.generic_visit(node)


@register
class ConstantTimeMacCompareRule(LintRule):
    """NF013: MAC/secret comparison via ``==`` instead of ``mac_equal``."""

    code = "NF013"
    name = "constant-time-mac-compare"
    rationale = (
        "== on MAC/token/key bytes short-circuits on the first differing "
        "byte, leaking a timing oracle an attacker can use to forge feedback "
        "one byte at a time; compare with crypto.mac.mac_equal "
        "(hmac.compare_digest)."
    )
    history = "crypto.mac.mac_equal exists precisely for this (seed)"
    paths = (
        "repro/crypto/*",
        "repro/runtime/*",
        "repro/passport/*",
        "repro/core/feedback.py",
        "repro/core/access.py",
        "repro/core/bottleneck.py",
        "repro/core/endhost.py",
    )

    def visit_Compare(self, node: ast.Compare) -> None:
        if len(node.ops) == 1 and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            left, right = node.left, node.comparators[0]
            for side, other in ((left, right), (right, left)):
                name = _identifier_of(side)
                if (
                    name is not None
                    and _SECRET_NAME.search(name)
                    and not _is_benign_operand(other)
                ):
                    self.report(
                        node,
                        f"comparing {name!r} with ==/!= is not constant-time; "
                        "use crypto.mac.mac_equal for MAC/secret material",
                    )
                    break
        self.generic_visit(node)


@register
class NoAssertGuardsRule(LintRule):
    """NF014: no ``assert`` statements in crypto/runtime production code."""

    code = "NF014"
    name = "no-assert-guards"
    rationale = (
        "assert disappears under python -O, so an asserted security or "
        "liveness invariant is only checked in debug runs; raise an explicit "
        "exception (or count and surface the condition) instead."
    )
    history = "PR 6 (serve self-asserts its unverified-admissions invariant)"
    paths = ("repro/runtime/*", "repro/crypto/*")

    def visit_Assert(self, node: ast.Assert) -> None:
        self.report(
            node,
            "assert is stripped under -O; raise an explicit exception so the "
            "invariant holds in production",
        )
        self.generic_visit(node)
