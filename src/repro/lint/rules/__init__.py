"""Built-in rule modules.

Importing this package registers every bundled rule (each module's
``@register`` decorators run as a side effect).  Adding a rule = adding a
module here with a new stable ``NFxxx`` code; the registry rejects
duplicate codes at import time.
"""

from repro.lint.rules import (  # noqa: F401
    asyncio_rules,
    clockseam,
    determinism,
    hotpath,
    lifecycle,
    robustness,
    security,
    telemetry,
)
