"""Asyncio rules for the live runtime: never block the event loop.

History: PR 6's ``runner serve`` drains a policer queue and answers
datagrams on one event loop; a single ``time.sleep`` in that path stalls
every sender and turns latency percentiles into garbage.
"""

from __future__ import annotations

import ast
from typing import Set, Tuple

from repro.lint.context import FileContext
from repro.lint.registry import LintRule, register

#: ``module.attr`` calls that block the calling thread.
_BLOCKING_QUALIFIED: Set[Tuple[str, str]] = {
    ("time", "sleep"),
    ("os", "system"),
    ("os", "popen"),
    ("socket", "create_connection"),
    ("socket", "getaddrinfo"),
    ("socket", "gethostbyname"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
}


@register
class NoBlockingInAsyncRule(LintRule):
    """NF009: blocking calls inside ``async def`` in the runtime layer."""

    code = "NF009"
    name = "no-blocking-calls-in-async"
    rationale = (
        "The live policer shares one event loop between ingress datagrams, "
        "the paced drain task and stats; a blocking call (time.sleep, sync "
        "socket/subprocess ops) stalls all of them. Use asyncio.sleep / "
        "loop executors instead."
    )
    history = "PR 6 (runner serve single-loop policer + loadgen)"
    paths = ("repro/runtime/*",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._blocking_aliases: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            if (node.module or "", alias.name) in _BLOCKING_QUALIFIED:
                self._blocking_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._scan_async_body(node)
        self.generic_visit(node)

    def _scan_async_body(self, func: ast.AsyncFunctionDef) -> None:
        # Walk the async function's statements without descending into
        # nested ``async def``s (they get their own visit).  Nested *sync*
        # helpers still run on the loop when called from here, so their
        # bodies are scanned as part of this function.
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, ast.AsyncFunctionDef):
                continue
            if isinstance(node, ast.Call):
                self._check_call(node)
            stack.extend(ast.iter_child_nodes(node))

    def _check_call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _BLOCKING_QUALIFIED
        ):
            self.report(
                node,
                f"blocking call {func.value.id}.{func.attr}() inside async "
                "def; use the asyncio equivalent or run_in_executor",
            )
        elif isinstance(func, ast.Name) and func.id in self._blocking_aliases:
            self.report(
                node,
                f"blocking call {func.id}() inside async def; use the "
                "asyncio equivalent or run_in_executor",
            )
