"""Telemetry rules: observable output goes through the obs layer, not stdout.

History: before PR 8 the live policer and loadgen reported state through
hand-rolled ``print()`` dicts, which made their stats impossible to scrape,
version, or test.  PR 8 moved metrics onto :mod:`repro.obs`; this rule keeps
stray ``print()`` debugging from reattaching library code to stdout.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.context import FileContext
from repro.lint.registry import LintRule, register

#: Function names that *are* CLI surface: their stdout is the product.
_CLI_ENTRY_NAMES = ("main", "cli_main")
_CLI_ENTRY_PREFIX = "_cmd_"

#: ``logging`` module attributes that emit through (or configure) the root
#: logger — the stealth sibling of ``logging.getLogger()``.
_ROOT_LOGGER_ATTRS = frozenset({
    "getLogger", "basicConfig", "debug", "info", "warning", "warn",
    "error", "exception", "critical", "log",
})


def _is_cli_entry(name: str) -> bool:
    return name in _CLI_ENTRY_NAMES or name.startswith(_CLI_ENTRY_PREFIX)


@register
class NoBarePrintRule(LintRule):
    """NF015: ``print()`` in library code (outside CLI entry points)."""

    code = "NF015"
    name = "no-print-outside-cli"
    rationale = (
        "Library layers must report through repro.obs (metrics, traces, "
        "structured snapshots); a print() in non-CLI code is untestable, "
        "unscrapable stdout. CLI surface (main/cli_main/_cmd_*) is exempt; "
        "waive deliberate JSON-lines emitters via the committed baseline."
    )
    history = "PR 8 (unified telemetry layer superseding printed stats dicts)"
    paths = ("repro/*",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._func_stack: List[str] = []

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._func_stack.append(name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "print"
            and not any(_is_cli_entry(name) for name in self._func_stack)
        ):
            where = (
                f"in {'.'.join(self._func_stack)}()"
                if self._func_stack
                else "at module level"
            )
            self.report(
                node,
                f"print() {where} is library stdout; report through "
                "repro.obs instruments or return structured data to the CLI "
                "layer (main/cli_main/_cmd_* are exempt)",
            )
        self.generic_visit(node)


@register
class NoStdlibLoggingRule(LintRule):
    """NF016: stdlib ``logging`` acquired outside :mod:`repro.obs.log`."""

    code = "NF016"
    name = "no-stdlib-logging-outside-obs"
    rationale = (
        "Structured logging goes through repro.obs.log.JsonLinesLogger; a "
        "logging.getLogger() or root-logger call (logging.warning(...), "
        "logging.basicConfig(), ...) elsewhere forks the process onto a "
        "second, unstructured log stream that the flight recorder and "
        "runner trace --spans never see. The stdlib bridge in "
        "repro.obs.log is the one sanctioned crossing; CLI entry points "
        "(main/cli_main/_cmd_*) are exempt, and deliberate legacy sites "
        "are waived via the committed baseline."
    )
    history = "PR 9 (distributed observability: JSON-lines logging layer)"
    paths = ("repro/*",)
    exclude = ("repro/obs/log.py",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._func_stack: List[str] = []

    def _visit_function(self, node: ast.AST, name: str) -> None:
        self._func_stack.append(name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "logging"
            and func.attr in _ROOT_LOGGER_ATTRS
            and not any(_is_cli_entry(name) for name in self._func_stack)
        ):
            where = (
                f"in {'.'.join(self._func_stack)}()"
                if self._func_stack
                else "at module level"
            )
            self.report(
                node,
                f"logging.{func.attr}() {where} bypasses the structured "
                "log stream; emit through repro.obs.log.JsonLinesLogger "
                "(or bridge_stdlib for third-party records)",
            )
        self.generic_visit(node)
