"""Lifecycle rule: ``reset()`` must restore every ``__init__`` attribute.

History: PR 1 found ``Simulator.reset()`` failing to rewind the event
sequence counter (same-instant events ordered differently after a reset),
and PR 5 found queue/heap state surviving reuse (ghost flows, stale
cancellation bookkeeping).  The common shape: ``__init__`` grows a field,
``reset()`` doesn't, and the leak only shows under worker reuse.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.lint.registry import LintRule, register


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """``self.X`` when ``node`` is that attribute on ``self``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _assigned_attrs(func: ast.FunctionDef) -> Set[str]:
    """Attributes bound via ``self.X = ...`` (plain, annotated, aug, tuple)."""
    attrs: Set[str] = set()
    for node in ast.walk(func):
        targets = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        for target in targets:
            stack = [target]
            while stack:
                item = stack.pop()
                if isinstance(item, (ast.Tuple, ast.List)):
                    stack.extend(item.elts)
                else:
                    attr = _self_attr_target(item)
                    if attr is not None:
                        attrs.add(attr)
    return attrs


def _touched_attrs(func: ast.FunctionDef) -> Set[str]:
    """Attributes *reinitialized* by ``func``: assigned, or reset in place
    via a mutating call like ``self.X.clear()`` / ``self.X.update(...)``."""
    touched = _assigned_attrs(func)
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            owner = _self_attr_target(node.func.value)
            if owner is not None:
                touched.add(owner)
    return touched


def _self_method_calls(func: ast.FunctionDef) -> Set[str]:
    """Names of ``self.method(...)`` calls made anywhere in ``func``."""
    calls: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            attr = _self_attr_target(node.func)
            if attr is not None:
                calls.add(attr)
    return calls


@register
class ResetParityRule(LintRule):
    """NF008: every attribute assigned in ``__init__`` must be restored by
    ``reset()`` (directly, in place, or via a helper method it calls)."""

    code = "NF008"
    name = "reset-restores-all-state"
    rationale = (
        "A reset() that misses one __init__ field leaks state across reuse — "
        "the PR 5 ghost-flow shape: correct in fresh-instance tests, wrong "
        "the first time a sweep worker reuses the object."
    )
    history = "PR 1 (Simulator.reset seq counter) / PR 5 (queue state leaks)"
    paths = ("repro/*",)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        init = methods.get("__init__")
        reset = methods.get("reset")
        if init is not None and reset is not None:
            required = _assigned_attrs(init)
            restored = self._restored_by(reset, methods, visited=set())
            missing = sorted(required - restored)
            if missing:
                self.report(
                    reset,
                    f"{node.name}.reset() does not restore __init__ "
                    f"attribute(s): {', '.join(missing)} — state will leak "
                    "across instance reuse",
                )
        self.generic_visit(node)

    def _restored_by(
        self,
        func: ast.FunctionDef,
        methods: Dict[str, ast.FunctionDef],
        visited: Set[str],
    ) -> Set[str]:
        """Attributes ``func`` restores, following ``self.helper()`` calls
        into same-class methods (``self.__init__()`` restores everything)."""
        visited.add(func.name)
        restored = _touched_attrs(func)
        for called in _self_method_calls(func):
            if called == "__init__" and "__init__" in methods:
                restored |= _assigned_attrs(methods["__init__"])
            elif called in methods and called not in visited:
                restored |= self._restored_by(methods[called], methods, visited)
        return restored
