"""Robustness rule: no silently swallowed exceptions.

History: the PR 3 worker loop and the PR 6 serve/loadgen loops both
deliberately *capture and surface* per-point and per-datagram errors
(``SweepResult.error``, codec-error counters).  A bare ``except:`` or an
``except Exception: pass`` in such a loop converts a real failure into a
silent wedge — the worker "drains" a queue while producing nothing.
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.registry import LintRule, register

_BROAD = {"Exception", "BaseException"}


def _is_broad(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(elt) for elt in expr.elts)
    return False


def _is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        if isinstance(stmt, ast.Continue):
            continue
        return False
    return True


@register
class NoSilentExceptRule(LintRule):
    """NF010: no bare ``except:``; no silent broad ``except Exception: pass``."""

    code = "NF010"
    name = "no-silent-except"
    rationale = (
        "A bare or broad except that only passes turns failures into silent "
        "wedges (a worker loop that swallows its own crash keeps heartbeating "
        "while doing nothing). Catch the specific error, or record/log it."
    )
    history = "PR 3 (per-point error capture) / PR 6 (codec-error counters)"
    paths = ("repro/*",)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare except: catches SystemExit/KeyboardInterrupt too; name "
                "the exception type",
            )
        elif _is_broad(node.type) and _is_silent(node.body):
            self.report(
                node,
                "broad except with a pass-only body silently swallows "
                "failures; catch the specific type or record the error",
            )
        self.generic_visit(node)
