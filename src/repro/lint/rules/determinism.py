"""Determinism rules: every random/time source must be injected and seeded.

History: PR 2 spent a whole satellite purging shared module-level RNGs
(``REDQueue``/``WebTrafficApp`` drew from one global stream, correlating
drops across queues and breaking row determinism), and PR 6 moved every
wall-time read behind the injected-clock seam.  These rules keep both bugs
from coming back.
"""

from __future__ import annotations

import ast
from typing import Set

from repro.lint.context import FileContext
from repro.lint.registry import LintRule, register

#: ``random.<fn>`` calls that draw from the hidden module-level RNG.
_MODULE_RNG_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "setstate", "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
}

_WALL_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}

_DATETIME_FNS = {"now", "utcnow", "today"}


@register
class ModuleLevelRandomRule(LintRule):
    """NF001: calls into the shared module-level RNG (``random.random()``,
    ``random.randint()``, …) or importing those functions directly."""

    code = "NF001"
    name = "no-module-level-random"
    rationale = (
        "Draws from the hidden global RNG correlate independent components "
        "and break row determinism; construct random.Random(derive_seed(...)) "
        "per component instead."
    )
    history = "PR 2 (REDQueue/WebTrafficApp shared-stream determinism fix)"
    paths = ("repro/*",)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MODULE_RNG_FNS
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            self.report(
                node,
                f"call to the shared module-level RNG random.{func.attr}(); "
                "use a per-instance random.Random(seeding.derive_seed(...))",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = sorted(
                alias.name for alias in node.names if alias.name in _MODULE_RNG_FNS
            )
            if bad:
                self.report(
                    node,
                    f"importing {', '.join(bad)} from random binds the shared "
                    "module-level RNG; import Random and seed it with "
                    "seeding.derive_seed",
                )
        self.generic_visit(node)


@register
class WallClockRule(LintRule):
    """NF002: direct wall-clock reads outside the runtime layer."""

    code = "NF002"
    name = "no-wall-clock-outside-runtime"
    rationale = (
        "Simulation layers must read time from the injected clock; a direct "
        "time.time()/time.monotonic()/datetime.now() silently desynchronizes "
        "sim runs and made rows irreproducible before the clock seam."
    )
    history = "PR 6 (injected Clock protocol; WallClock owns wall time)"
    paths = ("repro/*",)
    # Operational layers measure real elapsed time / lease TTLs / provenance
    # timestamps by design; repro.runtime is where WallClock itself lives.
    exclude = (
        "repro/runtime/*",
        "repro/perf/*",
        "repro/store/*",
        "repro/experiments/distrib.py",
        "repro/experiments/runner.py",
        "repro/experiments/sweep.py",
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            owner, attr = func.value.id, func.attr
            if owner == "time" and attr in _WALL_TIME_FNS:
                self.report(
                    node,
                    f"wall-clock read time.{attr}(); take the injected clock's "
                    ".now instead (repro.runtime.clock.Clock)",
                )
            elif owner in ("datetime", "date") and attr in _DATETIME_FNS:
                self.report(
                    node,
                    f"wall-clock read {owner}.{attr}(); derive times from the "
                    "injected clock so runs stay reproducible",
                )
        self.generic_visit(node)


@register
class UnseededRngRule(LintRule):
    """NF011: RNG construction without an explicit derived seed."""

    code = "NF011"
    name = "no-unseeded-rng"
    rationale = (
        "random.Random() with no arguments seeds from the OS; the stream "
        "differs per process and the row is unreproducible. Seed every RNG "
        "from seeding.derive_seed(base_seed, component...)."
    )
    history = "PR 2 (per-instance seeded RNGs, cache schema versioning)"
    paths = ("repro/*",)

    def __init__(self, ctx: FileContext) -> None:
        super().__init__(ctx)
        self._random_aliases: Set[str] = set()

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name == "Random":
                    self._random_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_rng_ctor = (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ) or (isinstance(func, ast.Name) and func.id in self._random_aliases)
        if is_rng_ctor and not node.args and not node.keywords:
            self.report(
                node,
                "unseeded RNG construction; pass "
                "seeding.derive_seed(base_seed, ...) so the stream is "
                "deterministic and decorrelated",
            )
        self.generic_visit(node)
