"""Lint engine: walk files, run every in-scope rule, apply suppressions."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Type

from repro.lint.baseline import Baseline
from repro.lint.context import FileContext, logical_path
from repro.lint.registry import LintRule, select_rules
from repro.lint.suppress import SuppressionIndex
from repro.lint.violations import Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.flow.callgraph import CallGraph

#: Directories never descended into when expanding path arguments.
_SKIP_DIRS = {"__pycache__", ".git", ".netfence-sweep-cache"}


@dataclass
class LintResult:
    """Outcome of one lint run."""

    #: Violations that gate the run (not suppressed, not baselined).
    violations: List[Violation] = field(default_factory=list)
    #: Violations waived by inline ``# nf: disable=`` comments.
    suppressed: List[Violation] = field(default_factory=list)
    #: Violations absorbed by the committed baseline.
    baselined: List[Violation] = field(default_factory=list)
    #: Files parsed and checked.
    files_checked: int = 0
    #: ``(path, error)`` pairs for files that failed to parse.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Call graph built by the flow phase (``flow=True`` runs only).
    flow_graph: Optional["CallGraph"] = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        root = Path(raw)
        if root.is_dir():
            candidates = sorted(
                p for p in root.rglob("*.py")
                if not (set(p.parts) & _SKIP_DIRS)
            )
        else:
            candidates = [root]
        for path in candidates:
            key = str(path)
            if key not in seen:
                seen.add(key)
                out.append(path)
    return out


def _rules_for(
    logical: str, rules: Sequence[Type[LintRule]]
) -> List[Type[LintRule]]:
    return [rule for rule in rules if rule.applies_to(logical)]


def check_source(
    source: str,
    path: str,
    rules: Sequence[Type[LintRule]],
) -> Tuple[List[Violation], List[Violation]]:
    """Lint one source blob; returns ``(active, suppressed)`` violations.

    Raises :class:`SyntaxError` when the source does not parse.
    """
    return check_context(FileContext(source, path), rules)


def check_context(
    ctx: FileContext,
    rules: Sequence[Type[LintRule]],
) -> Tuple[List[Violation], List[Violation]]:
    """Run the per-file rules over an already-parsed :class:`FileContext`."""
    suppressions = SuppressionIndex(ctx.lines)
    active: List[Violation] = []
    suppressed: List[Violation] = []
    for rule_cls in _rules_for(ctx.logical, rules):
        for violation in rule_cls(ctx).run():
            if suppressions.is_suppressed(violation.code, violation.line):
                suppressed.append(violation)
            else:
                active.append(violation)
    key = (lambda v: (v.line, v.col, v.code))
    active.sort(key=key)
    suppressed.sort(key=key)
    return active, suppressed


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Convenience wrapper used heavily by the fixture tests."""
    active, _ = check_source(source, path, select_rules(select, ignore))
    return active


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    flow: bool = False,
) -> LintResult:
    """Lint every Python file under ``paths``.

    With ``flow=True`` the whole-program phase also runs: a call graph is
    built over every file that parsed and the selected :class:`FlowRule`\\ s
    (NF101+) analyze it.  Flow findings go through the same inline
    suppression and baseline machinery as per-file findings.
    """
    rules = select_rules(select, ignore)
    result = LintResult()
    collected: List[Violation] = []
    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.parse_errors.append((str(path), f"unreadable: {exc}"))
            continue
        try:
            ctx = FileContext(source, str(path))
        except SyntaxError as exc:
            result.parse_errors.append((str(path), f"syntax error: {exc}"))
            continue
        contexts.append(ctx)
        active, suppressed = check_context(ctx, rules)
        result.files_checked += 1
        collected.extend(active)
        result.suppressed.extend(suppressed)
    if flow:
        from repro.lint.flow import build_callgraph, flow_rules, run_flow_rules

        result.flow_graph = build_callgraph(contexts)
        suppressions = {
            ctx.path: SuppressionIndex(ctx.lines) for ctx in contexts
        }
        for violation in run_flow_rules(result.flow_graph, contexts,
                                        flow_rules(rules)):
            index = suppressions.get(violation.path)
            if index is not None and index.is_suppressed(
                    violation.code, violation.line):
                result.suppressed.append(violation)
            else:
                collected.append(violation)
    if baseline is not None:
        result.violations, result.baselined = baseline.partition(collected)
    else:
        result.violations = collected
    return result


__all__ = [
    "Baseline",
    "LintResult",
    "Violation",
    "check_context",
    "check_source",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "logical_path",
]
