"""``repro.lint`` — an AST-based invariant linter for this repo.

Every major PR in this codebase's history fixed a recurrence of the same
bug families by hand: shared module-level RNGs breaking determinism (PR 2),
ghost-flow state leaks and un-slotted hot-path dataclasses (PR 5), and
wall-time reads that bypass the injected-clock seam (PR 6).  This package
encodes those invariants as lint rules with stable ``NFxxx`` codes so CI
fails instead of relying on reviewer memory.

Structure:

* one :class:`~repro.lint.registry.LintRule` (an ``ast.NodeVisitor``) per
  rule, registered under a stable code in :mod:`repro.lint.rules`;
* per-path scoping: each rule declares which layers it applies to;
* two suppression mechanisms: inline ``# nf: disable=NFxxx`` comments
  (:mod:`repro.lint.suppress`) and a committed fingerprint baseline
  (:mod:`repro.lint.baseline`);
* ``runner lint [--strict] [--json] [--select/--ignore] [paths...]``
  (:mod:`repro.lint.cli`).
"""

from repro.lint.baseline import Baseline
from repro.lint.cli import cli_main
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.registry import LintRule, all_rules, register
from repro.lint.violations import Violation

__all__ = [
    "Baseline",
    "LintResult",
    "LintRule",
    "Violation",
    "all_rules",
    "cli_main",
    "lint_paths",
    "lint_source",
    "register",
]
