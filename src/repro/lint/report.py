"""Text and JSON rendering of a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Type

from repro.lint.engine import LintResult
from repro.lint.registry import LintRule


def format_text(result: LintResult, verbose: bool = False) -> str:
    lines: List[str] = []
    for path, error in result.parse_errors:
        lines.append(f"{path}:1:0: NF000 {error}")
    for violation in result.violations:
        lines.append(violation.format())
        snippet = violation.source_line.strip()
        if verbose and snippet:
            lines.append(f"    {snippet}")
    by_code = Counter(v.code for v in result.violations)
    summary = (
        f"{len(result.violations)} finding(s) in {result.files_checked} file(s)"
        if result.violations or result.parse_errors
        else f"clean: {result.files_checked} file(s)"
    )
    if by_code:
        summary += " [" + ", ".join(f"{c}×{n}" for c, n in sorted(by_code.items())) + "]"
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed inline"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    lines.append(summary)
    return "\n".join(lines)


def to_json(result: LintResult) -> Dict[str, Any]:
    return {
        "ok": result.ok,
        "files_checked": result.files_checked,
        "violations": [v.to_dict() for v in result.violations],
        "suppressed": [v.to_dict() for v in result.suppressed],
        "baselined_count": len(result.baselined),
        "parse_errors": [
            {"path": path, "error": error} for path, error in result.parse_errors
        ],
        "counts_by_code": dict(
            sorted(Counter(v.code for v in result.violations).items())
        ),
    }


def _gh_data(value: str) -> str:
    """Escape annotation message data per the workflow-command grammar."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _gh_property(value: str) -> str:
    """Escape annotation property values (also commas and colons)."""
    return _gh_data(value).replace(":", "%3A").replace(",", "%2C")


def format_github(result: LintResult) -> str:
    """GitHub Actions ``::error`` annotations — findings inline on the PR."""
    lines: List[str] = []
    for path, error in result.parse_errors:
        lines.append(
            f"::error file={_gh_property(path)},line=1,title=NF000::"
            f"{_gh_data(error)}"
        )
    for violation in result.violations:
        title = f"{violation.code} {violation.rule}"
        lines.append(
            f"::error file={_gh_property(violation.path)},"
            f"line={violation.line},col={violation.col + 1},"
            f"title={_gh_property(title)}::{_gh_data(violation.message)}"
        )
    # Trailing plain line for the job log; GitHub ignores non-`::` lines.
    lines.append(format_text(result).splitlines()[-1])
    return "\n".join(lines)


def format_catalog(rules: List[Type[LintRule]]) -> str:
    """Human-readable rule catalog for ``--list-rules``."""
    lines = []
    for rule in rules:
        lines.append(f"{rule.code}  {rule.name}")
        lines.append(f"       {rule.rationale}")
        if rule.history:
            lines.append(f"       history: {rule.history}")
        lines.append(f"       scope: {', '.join(rule.paths)}"
                     + (f" (excluding {', '.join(rule.exclude)})" if rule.exclude else ""))
    return "\n".join(lines)
