"""Rule base class and the registry of stable rule codes.

Every rule is one :class:`ast.NodeVisitor` subclass registered under a
stable ``NFxxx`` code.  Rules declare their own *scope* — fnmatch patterns
over the logical path (see :mod:`repro.lint.context`) — so invariants that
only hold for specific layers (hot-path modules, the clock seam, the live
runtime) are enforced exactly there and nowhere else.
"""

from __future__ import annotations

import ast
import re
from fnmatch import fnmatch
from typing import ClassVar, Dict, List, Optional, Sequence, Tuple, Type

from repro.lint.context import FileContext
from repro.lint.violations import Violation

_CODE_RE = re.compile(r"^NF\d{3}$")


class LintRule(ast.NodeVisitor):
    """Base class for one lint rule.

    Subclasses set the class attributes below and implement ``visit_*``
    methods that call :meth:`report`.  A fresh instance is created per file,
    so per-file state can live on ``self``.
    """

    #: Stable rule code (``NF001``…); never renumber a shipped rule.
    code: ClassVar[str] = ""
    #: Short kebab-case rule name.
    name: ClassVar[str] = ""
    #: One-line invariant statement shown in ``--list-rules`` and docs.
    rationale: ClassVar[str] = ""
    #: The historical bug/PR in this repo that the rule encodes.
    history: ClassVar[str] = ""
    #: fnmatch patterns over the logical path the rule applies to.
    paths: ClassVar[Tuple[str, ...]] = ("repro/*",)
    #: fnmatch patterns carved out of ``paths`` (checked first).
    exclude: ClassVar[Tuple[str, ...]] = ()

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.violations: List[Violation] = []

    @classmethod
    def applies_to(cls, logical: str) -> bool:
        if any(fnmatch(logical, pattern) for pattern in cls.exclude):
            return False
        return any(fnmatch(logical, pattern) for pattern in cls.paths)

    def run(self) -> List[Violation]:
        self.visit(self.ctx.tree)
        return self.violations

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.violations.append(
            Violation(
                code=self.code,
                rule=self.name,
                path=self.ctx.path,
                line=line,
                col=col,
                message=message,
                source_line=self.ctx.line_text(line),
            )
        )


_REGISTRY: Dict[str, Type[LintRule]] = {}


def register(rule_cls: Type[LintRule]) -> Type[LintRule]:
    """Class decorator: add a rule to the registry under its code."""
    if not _CODE_RE.match(rule_cls.code):
        raise ValueError(f"{rule_cls.__name__}: invalid rule code {rule_cls.code!r}")
    if not rule_cls.name or not rule_cls.rationale:
        raise ValueError(f"{rule_cls.__name__}: rules must declare name and rationale")
    existing = _REGISTRY.get(rule_cls.code)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"duplicate rule code {rule_cls.code}: "
            f"{existing.__name__} vs {rule_cls.__name__}"
        )
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> List[Type[LintRule]]:
    """Every registered rule, ordered by code."""
    _ensure_loaded()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Type[LintRule]:
    _ensure_loaded()
    return _REGISTRY[code]


def _expand_codes(codes: Sequence[str], known: Sequence[str]) -> List[str]:
    """Expand exact codes and fnmatch globs (``NF1*``) against the registry.

    Raises :class:`KeyError` for an unknown exact code or a glob that matches
    nothing — a pattern that silently selects zero rules is a typo, not a
    request.
    """
    out: List[str] = []
    for code in codes:
        if any(ch in code for ch in "*?["):
            matched = [k for k in known if fnmatch(k, code)]
            if not matched:
                raise KeyError(
                    f"rule pattern {code!r} matches nothing "
                    f"(known: {', '.join(sorted(known))})"
                )
            out.extend(matched)
        elif code in known:
            out.append(code)
        else:
            raise KeyError(
                f"unknown rule code {code!r} (known: {', '.join(sorted(known))})"
            )
    return out


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Type[LintRule]]:
    """Filter the registry by code lists or globs (``--select`` / ``--ignore``)."""
    _ensure_loaded()
    rules = all_rules()
    known = [rule.code for rule in rules]
    if select:
        wanted = set(_expand_codes(select, known))
        rules = [rule for rule in rules if rule.code in wanted]
    if ignore:
        unwanted = set(_expand_codes(ignore, known))
        rules = [rule for rule in rules if rule.code not in unwanted]
    return rules


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if not _loaded:
        # Import the bundled rule modules exactly once; their ``@register``
        # decorators populate the registry as a side effect.
        from repro.lint import rules as _rules  # noqa: F401
        from repro.lint.flow import rules as _flow_rules  # noqa: F401

        _loaded = True
