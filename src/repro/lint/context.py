"""Per-file lint context: parsed AST, source lines, and logical path.

The *logical path* is the path a rule's scope patterns match against.  Files
under a ``repro`` package directory are canonicalized to start at ``repro/``
(``src/repro/core/access.py`` → ``repro/core/access.py``) so the same rule
scopes apply no matter where the tree is checked out or how the CLI was
invoked; anything else (examples, tests, fixtures) keeps its relative path.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import List, Optional


def logical_path(path: str) -> str:
    """Canonicalize ``path`` for rule scoping (posix separators)."""
    posix = path.replace("\\", "/")
    parts = PurePosixPath(posix).parts
    # Anchor at the *last* `repro` package segment so nested checkouts and
    # fixture paths like `tests/fixtures/repro/core/x.py` scope like source.
    for idx in range(len(parts) - 1, -1, -1):
        if parts[idx] == "repro":
            return "/".join(parts[idx:])
    return posix.lstrip("./")


class FileContext:
    """Everything a rule needs to check one file."""

    def __init__(self, source: str, path: str) -> None:
        self.source = source
        self.path = path
        self.logical = logical_path(path)
        self.lines: List[str] = source.splitlines()
        self.tree: ast.AST = ast.parse(source, filename=path)

    def line_text(self, lineno: int) -> str:
        """1-indexed source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def try_parse(source: str, path: str) -> Optional[FileContext]:
    """Parse ``source``; return ``None`` on syntax errors (caller reports)."""
    try:
        return FileContext(source, path)
    except SyntaxError:
        return None
