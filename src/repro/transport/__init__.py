"""Transport protocols and traffic generators.

* :mod:`repro.transport.udp` — constant-bit-rate and on-off UDP senders
  (attack traffic and request floods) plus a counting sink.
* :mod:`repro.transport.tcp` — a Reno-style TCP with connection setup,
  exponential SYN backoff, slow start, congestion avoidance, fast
  retransmit, and retransmission timeouts.
* :mod:`repro.transport.traffic` — application-level workloads: repeated
  fixed-size file transfers (Fig. 8) and the web-like Pareto/exponential
  mixture workload (Fig. 9b).
"""

from repro.transport.udp import UdpSender, UdpSink, OnOffPattern
from repro.transport.tcp import TcpSender, TcpReceiver, TcpTransferResult
from repro.transport.traffic import (
    FileTransferApp,
    LongRunningTcpApp,
    TransferLog,
    WebTrafficApp,
    web_file_size_sampler,
)

__all__ = [
    "UdpSender",
    "UdpSink",
    "OnOffPattern",
    "TcpSender",
    "TcpReceiver",
    "TcpTransferResult",
    "FileTransferApp",
    "LongRunningTcpApp",
    "TransferLog",
    "WebTrafficApp",
    "web_file_size_sampler",
]
