"""A Reno-style TCP for the packet-level simulator.

The paper's legitimate users are TCP senders (long-running file transfers,
repeated 20 KB transfers, or web-like workloads).  The behaviours that matter
for reproducing the evaluation are implemented faithfully:

* three-way handshake with an initial 1 s SYN retransmission timeout,
  exponential backoff, and at most nine retransmissions (§6.3.1);
* slow start / congestion avoidance / fast retransmit / retransmission
  timeouts (enough congestion control for AIMD-vs-rate-limiter interaction);
* a per-transfer deadline (200 s in the paper) after which the transfer is
  aborted;
* cumulative ACKs so the NetFence end-host shim can piggyback returned
  congestion policing feedback on the reverse path (§3.1, step 4).

Sequence numbers are in MSS-sized segments rather than bytes, which keeps the
implementation compact without changing any of the dynamics the experiments
measure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional, Set

from repro.runtime.clock import Clock, ClockHandle
from repro.simulator.node import Host
from repro.simulator.packet import ACK_PACKET_SIZE, Packet, PacketType
from repro.simulator.trace import ThroughputMonitor

#: Maximum segment size (payload bytes per data packet).
MSS = 1460
#: Data packet size on the wire (MSS + 40 B TCP/IP header).
DATA_SEGMENT_SIZE = MSS + 40
#: Control packet (SYN / SYN-ACK / ACK) size.
CONTROL_SIZE = ACK_PACKET_SIZE


class TcpState(Enum):
    CLOSED = "closed"
    SYN_SENT = "syn_sent"
    ESTABLISHED = "established"
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass
class TcpHeader:
    """The transport header carried in ``packet.headers["tcp"]``."""

    kind: str  # "syn", "syn_ack", "data", "ack", "fin"
    seq: int = 0
    ack: int = 0


@dataclass
class TcpTransferResult:
    """Outcome of one TCP file transfer."""

    flow_id: str
    src: str
    dst: str
    file_bytes: int
    start_time: float
    end_time: Optional[float] = None
    completed: bool = False
    abort_reason: Optional[str] = None
    syn_retries: int = 0
    retransmissions: int = 0

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time


class TcpReceiver:
    """The passive side of a TCP connection.

    Responds to SYNs with SYN-ACKs and to data segments with cumulative ACKs.
    Out-of-order segments are buffered (as a set of received sequence
    numbers) so a single loss does not stall the connection.
    """

    def __init__(
        self,
        clock: Clock,
        host: Host,
        flow_id: str,
        monitor: Optional[ThroughputMonitor] = None,
    ) -> None:
        self.clock = clock
        self.host = host
        self.flow_id = flow_id
        self.monitor = monitor
        self.next_expected = 1
        self.received: Set[int] = set()
        self.data_packets = 0
        self.bytes_received = 0
        host.add_agent(flow_id, self)

    def on_packet(self, packet: Packet) -> None:
        header: Optional[TcpHeader] = packet.get_header("tcp")
        if header is None:
            return
        if header.kind == "syn":
            self._send_control("syn_ack", ack=1)
        elif header.kind == "data":
            self.data_packets += 1
            self.bytes_received += packet.size_bytes
            if self.monitor is not None:
                self.monitor.record(packet)
            if header.seq >= self.next_expected:
                self.received.add(header.seq)
            while self.next_expected in self.received:
                self.received.discard(self.next_expected)
                self.next_expected += 1
            self._send_control("ack", ack=self.next_expected)

    def _send_control(self, kind: str, ack: int) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self._peer,
            size_bytes=CONTROL_SIZE,
            ptype=PacketType.REGULAR,
            flow_id=self.flow_id,
            protocol="tcp",
        )
        packet.set_header("tcp", TcpHeader(kind=kind, ack=ack))
        self.host.send(packet)

    @property
    def _peer(self) -> str:
        # flow ids are "tcp:<src>-><dst>:<n>"
        try:
            middle = self.flow_id.split(":", 2)[1]
            return middle.split("->")[0]
        except (IndexError, ValueError):  # pragma: no cover - defensive
            raise RuntimeError(f"cannot derive peer from flow id {self.flow_id!r}")


class TcpSender:
    """The active side: connects, sends ``file_bytes``, reports the result."""

    INITIAL_SYN_TIMEOUT = 1.0
    MAX_SYN_RETRIES = 9
    MIN_RTO = 0.2
    MAX_RTO = 60.0
    INITIAL_SSTHRESH = 64.0

    def __init__(
        self,
        clock: Clock,
        host: Host,
        dst: str,
        file_bytes: int,
        flow_id: str,
        deadline_s: Optional[float] = 200.0,
        on_complete: Optional[Callable[[TcpTransferResult], None]] = None,
    ) -> None:
        if file_bytes <= 0:
            raise ValueError("file_bytes must be positive")
        self.clock = clock
        self.host = host
        self.dst = dst
        self.file_bytes = file_bytes
        self.flow_id = flow_id
        self.deadline_s = deadline_s
        self.on_complete = on_complete
        self.total_segments = max(1, math.ceil(file_bytes / MSS))

        self.state = TcpState.CLOSED
        self.result = TcpTransferResult(
            flow_id=flow_id, src=host.name, dst=dst,
            file_bytes=file_bytes, start_time=clock.now,
        )

        # Congestion control state (segments).
        self.cwnd = 1.0
        self.ssthresh = self.INITIAL_SSTHRESH
        self.snd_una = 1
        self.snd_next = 1
        self.dupacks = 0

        # RTT estimation (RFC 6298 style).
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 1.0
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0

        self._syn_retries = 0
        self._syn_timer: Optional[ClockHandle] = None
        self._rto_timer: Optional[ClockHandle] = None
        self._deadline_timer: Optional[ClockHandle] = None

        host.add_agent(flow_id, self)

    # -- public API -----------------------------------------------------------
    def start(self) -> None:
        """Open the connection and begin the transfer."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError("sender already started")
        self.result.start_time = self.clock.now
        self.state = TcpState.SYN_SENT
        if self.deadline_s is not None:
            self._deadline_timer = self.clock.schedule(self.deadline_s, self._on_deadline)
        self._send_syn()

    @property
    def finished(self) -> bool:
        return self.state in (TcpState.COMPLETED, TcpState.ABORTED)

    # -- connection setup -------------------------------------------------------
    def _send_syn(self) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size_bytes=CONTROL_SIZE,
            ptype=PacketType.REQUEST,
            flow_id=self.flow_id,
            protocol="tcp",
        )
        packet.set_header("tcp", TcpHeader(kind="syn", seq=0))
        self.host.send(packet)
        timeout = self.INITIAL_SYN_TIMEOUT * (2 ** self._syn_retries)
        self._syn_timer = self.clock.schedule(timeout, self._on_syn_timeout)

    def _on_syn_timeout(self) -> None:
        if self.state is not TcpState.SYN_SENT:
            return
        self._syn_retries += 1
        self.result.syn_retries = self._syn_retries
        if self._syn_retries > self.MAX_SYN_RETRIES:
            self._abort("syn_retries_exhausted")
            return
        self._send_syn()

    # -- data transfer ------------------------------------------------------------
    def _send_data(self, seq: int, retransmit: bool = False) -> None:
        last = seq == self.total_segments
        payload = self.file_bytes - (self.total_segments - 1) * MSS if last else MSS
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size_bytes=payload + 40,
            ptype=PacketType.REGULAR,
            flow_id=self.flow_id,
            protocol="tcp",
        )
        packet.set_header("tcp", TcpHeader(kind="data", seq=seq))
        if retransmit:
            self.result.retransmissions += 1
        elif self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = self.clock.now
        self.host.send(packet)

    def _fill_window(self) -> None:
        while (
            self.snd_next <= self.total_segments
            and (self.snd_next - self.snd_una) < self.cwnd
        ):
            self._send_data(self.snd_next)
            self.snd_next += 1
        self._arm_rto()

    # -- inbound packets -------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        header: Optional[TcpHeader] = packet.get_header("tcp")
        if header is None or self.finished:
            return
        if header.kind == "syn_ack":
            self._on_syn_ack()
        elif header.kind == "ack":
            self._on_ack(header.ack)

    def _on_syn_ack(self) -> None:
        if self.state is not TcpState.SYN_SENT:
            return
        self.state = TcpState.ESTABLISHED
        if self._syn_timer is not None:
            self._syn_timer.cancel()
            self._syn_timer = None
        self._fill_window()

    def _on_ack(self, ack: int) -> None:
        if self.state is not TcpState.ESTABLISHED:
            return
        if ack > self.snd_una:
            newly_acked = ack - self.snd_una
            self.snd_una = ack
            self.dupacks = 0
            self._update_rtt(ack)
            self._grow_cwnd(newly_acked)
            if self.snd_una > self.total_segments:
                self._complete()
                return
            self._arm_rto(restart=True)
            self._fill_window()
        elif ack == self.snd_una:
            self.dupacks += 1
            if self.dupacks == 3:
                # Fast retransmit + (simplified) fast recovery.
                self.ssthresh = max(self.cwnd / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self.dupacks = 0
                self._send_data(self.snd_una, retransmit=True)
                self._arm_rto(restart=True)

    # -- congestion control -------------------------------------------------------------
    def _grow_cwnd(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd

    def _update_rtt(self, ack: int) -> None:
        if self._timed_seq is None or ack <= self._timed_seq:
            return
        sample = self.clock.now - self._timed_at
        self._timed_seq = None
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(max(self.srtt + 4 * self.rttvar, self.MIN_RTO), self.MAX_RTO)

    # -- timers ------------------------------------------------------------------
    def _arm_rto(self, restart: bool = False) -> None:
        if self._rto_timer is not None:
            if not restart:
                return
            self._rto_timer.cancel()
        if self.snd_una > self.total_segments:
            self._rto_timer = None
            return
        self._rto_timer = self.clock.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        if self.state is not TcpState.ESTABLISHED or self.finished:
            return
        # Timeout: multiplicative backoff, shrink to one segment, go-back-N.
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.rto = min(self.rto * 2.0, self.MAX_RTO)
        self.snd_next = self.snd_una
        self._timed_seq = None
        self._send_data(self.snd_una, retransmit=True)
        self.snd_next = self.snd_una + 1
        self._rto_timer = self.clock.schedule(self.rto, self._on_rto)

    def _on_deadline(self) -> None:
        if not self.finished:
            self._abort("deadline_exceeded")

    # -- termination --------------------------------------------------------------
    def _cancel_timers(self) -> None:
        for timer in (self._syn_timer, self._rto_timer, self._deadline_timer):
            if timer is not None:
                timer.cancel()
        self._syn_timer = self._rto_timer = self._deadline_timer = None

    def _complete(self) -> None:
        self.state = TcpState.COMPLETED
        self._cancel_timers()
        self.result.completed = True
        self.result.end_time = self.clock.now
        if self.on_complete is not None:
            self.on_complete(self.result)

    def _abort(self, reason: str) -> None:
        self.state = TcpState.ABORTED
        self._cancel_timers()
        self.result.completed = False
        self.result.abort_reason = reason
        self.result.end_time = self.clock.now
        if self.on_complete is not None:
            self.on_complete(self.result)
