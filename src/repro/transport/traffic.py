"""Application-level workloads used in the paper's evaluation.

* :class:`FileTransferApp` — a sender that repeatedly transfers a fixed-size
  file (20 KB in Fig. 8) to the victim and records per-transfer completion
  times and the completion ratio.
* :class:`WebTrafficApp` — the "web-like" workload of Fig. 9b: file sizes
  drawn from a mixture of Pareto and exponential distributions (after Luo &
  Marin [28]), capped at 150 KB, with uniform 0.1–0.2 s think times between
  transfers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.seeding import derive_seed
from repro.runtime.clock import Clock
from repro.simulator.node import Host
from repro.simulator.trace import ThroughputMonitor
from repro.transport.tcp import TcpReceiver, TcpSender, TcpTransferResult


def web_file_size_sampler(
    rng: random.Random,
    exponential_mean: float = 12_000.0,
    pareto_shape: float = 1.2,
    pareto_scale: float = 10_000.0,
    pareto_fraction: float = 0.3,
    min_bytes: int = 1_000,
    max_bytes: int = 150_000,
) -> int:
    """Draw a web-object size from a Pareto/exponential mixture (§6.3.2).

    The mixture follows the modelling approach of [28]: most objects are
    small (exponential body) with a heavy Pareto tail, truncated at 150 KB to
    keep experiments bounded as in the paper.
    """
    if rng.random() < pareto_fraction:
        size = pareto_scale * (rng.paretovariate(pareto_shape))
    else:
        size = rng.expovariate(1.0 / exponential_mean)
    return int(min(max(size, min_bytes), max_bytes))


@dataclass
class TransferLog:
    """Aggregated statistics over many transfers from one application."""

    results: List[TcpTransferResult] = field(default_factory=list)

    def record(self, result: TcpTransferResult) -> None:
        self.results.append(result)

    @property
    def attempted(self) -> int:
        return len(self.results)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.results if r.completed)

    @property
    def completion_ratio(self) -> float:
        return self.completed / self.attempted if self.attempted else 0.0

    @property
    def completed_durations(self) -> List[float]:
        return [r.duration for r in self.results if r.completed and r.duration is not None]

    @property
    def average_transfer_time(self) -> float:
        durations = self.completed_durations
        return sum(durations) / len(durations) if durations else float("nan")

    @property
    def total_bytes_completed(self) -> int:
        return sum(r.file_bytes for r in self.results if r.completed)


class _SequentialTransferApp:
    """Shared machinery: run TCP transfers back to back between two hosts."""

    def __init__(
        self,
        clock: Clock,
        src_host: Host,
        dst_host: Host,
        deadline_s: Optional[float] = 200.0,
        monitor: Optional[ThroughputMonitor] = None,
        stop_at: Optional[float] = None,
    ) -> None:
        self.clock = clock
        self.src_host = src_host
        self.dst_host = dst_host
        self.deadline_s = deadline_s
        self.monitor = monitor
        self.stop_at = stop_at
        self.log = TransferLog()
        self._transfer_index = 0
        self._running = False
        self._current_sender: Optional[TcpSender] = None

    # Subclasses decide the next file size and inter-transfer gap.
    def _next_file_bytes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _next_gap(self) -> float:
        return 0.0

    def start(self, at: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        delay = max(0.0, at - self.clock.now)
        self.clock.schedule(delay, self._start_next_transfer)

    def stop(self) -> None:
        self._running = False

    def _start_next_transfer(self) -> None:
        if not self._running:
            return
        if self.stop_at is not None and self.clock.now >= self.stop_at:
            self._running = False
            return
        self._transfer_index += 1
        flow_id = f"tcp:{self.src_host.name}->{self.dst_host.name}:{self._transfer_index}"
        TcpReceiver(self.clock, self.dst_host, flow_id, monitor=self.monitor)
        sender = TcpSender(
            self.clock,
            self.src_host,
            self.dst_host.name,
            file_bytes=self._next_file_bytes(),
            flow_id=flow_id,
            deadline_s=self.deadline_s,
            on_complete=self._on_transfer_done,
        )
        self._current_sender = sender
        sender.start()

    def _on_transfer_done(self, result: TcpTransferResult) -> None:
        self.log.record(result)
        # Free the per-flow agents so hosts do not accumulate state.
        self.src_host.remove_agent(result.flow_id)
        self.dst_host.remove_agent(result.flow_id)
        if self._running:
            self.clock.schedule(self._next_gap(), self._start_next_transfer)


class FileTransferApp(_SequentialTransferApp):
    """Repeatedly transfer a fixed-size file (Fig. 8's 20 KB workload)."""

    def __init__(
        self,
        clock: Clock,
        src_host: Host,
        dst_host: Host,
        file_bytes: int = 20_000,
        gap_s: float = 0.0,
        deadline_s: Optional[float] = 200.0,
        monitor: Optional[ThroughputMonitor] = None,
        stop_at: Optional[float] = None,
    ) -> None:
        super().__init__(clock, src_host, dst_host, deadline_s, monitor, stop_at)
        self.file_bytes = file_bytes
        self.gap_s = gap_s

    def _next_file_bytes(self) -> int:
        return self.file_bytes

    def _next_gap(self) -> float:
        return self.gap_s


class WebTrafficApp(_SequentialTransferApp):
    """Web-like workload: mixture-distributed file sizes, 0.1–0.2 s gaps."""

    def __init__(
        self,
        clock: Clock,
        src_host: Host,
        dst_host: Host,
        rng: Optional[random.Random] = None,
        size_sampler: Optional[Callable[[random.Random], int]] = None,
        gap_range: tuple[float, float] = (0.1, 0.2),
        deadline_s: Optional[float] = 200.0,
        monitor: Optional[ThroughputMonitor] = None,
        stop_at: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(clock, src_host, dst_host, deadline_s, monitor, stop_at)
        # Without an explicit rng, derive a per-instance stream from the
        # (seed, src, dst) identity: two apps on different hosts must not
        # sample identical file-size / think-time sequences.
        if rng is None:
            rng = random.Random(
                derive_seed(seed, "web-traffic", src_host.name, dst_host.name)
            )
        self.rng = rng
        self.size_sampler = size_sampler or web_file_size_sampler
        self.gap_range = gap_range

    def _next_file_bytes(self) -> int:
        return self.size_sampler(self.rng)

    def _next_gap(self) -> float:
        low, high = self.gap_range
        return self.rng.uniform(low, high)


class LongRunningTcpApp:
    """A single long-running TCP transfer (Fig. 9a / Fig. 10 workload).

    Implemented as one very large file transfer; throughput is measured at
    the receiver by the supplied monitor, so the transfer never needs to
    complete within the simulation.
    """

    def __init__(
        self,
        clock: Clock,
        src_host: Host,
        dst_host: Host,
        monitor: Optional[ThroughputMonitor] = None,
        file_bytes: int = 1_000_000_000,
    ) -> None:
        self.clock = clock
        self.src_host = src_host
        self.dst_host = dst_host
        self.flow_id = f"tcp:{src_host.name}->{dst_host.name}:long"
        self.receiver = TcpReceiver(clock, dst_host, self.flow_id, monitor=monitor)
        self.sender = TcpSender(
            clock,
            src_host,
            dst_host.name,
            file_bytes=file_bytes,
            flow_id=self.flow_id,
            deadline_s=None,
        )

    def start(self, at: float = 0.0) -> None:
        delay = max(0.0, at - self.clock.now)
        self.clock.schedule(delay, self.sender.start)
