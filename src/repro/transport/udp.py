"""UDP traffic sources and sinks.

The paper's attackers send 1 Mbps constant-rate UDP traffic (§6.3.1),
synchronized on-off bursts (§6.3.2 "Strategic Attacks"), or request-packet
floods.  :class:`UdpSender` covers all three via an optional
:class:`OnOffPattern` and a configurable packet type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.params import NetFenceParams
from repro.runtime.clock import Clock
from repro.simulator.node import Host
from repro.simulator.packet import DATA_PACKET_SIZE, Packet, PacketType
from repro.simulator.trace import ThroughputMonitor


@dataclass
class OnOffPattern:
    """Synchronized on-off transmission (§6.3.2, Fig. 11).

    The sender transmits at full rate during ``on_s`` seconds, stays silent
    for ``off_s`` seconds, and repeats.  ``phase_s`` offsets the start of the
    cycle; the paper's attackers all use phase 0 to maximize burst size.
    """

    on_s: float
    off_s: float
    phase_s: float = 0.0

    @property
    def period(self) -> float:
        return self.on_s + self.off_s

    def is_on(self, now: float) -> bool:
        if self.period <= 0:
            return True
        position = (now - self.phase_s) % self.period
        return position < self.on_s

    def next_on_time(self, now: float) -> float:
        """The next instant at or after ``now`` when transmission is allowed."""
        if self.is_on(now):
            return now
        position = (now - self.phase_s) % self.period
        return now + (self.period - position)


class UdpSender:
    """A constant-bit-rate (optionally on-off) UDP source."""

    def __init__(
        self,
        clock: Clock,
        host: Host,
        dst: str,
        rate_bps: float,
        packet_size: int = DATA_PACKET_SIZE,
        flow_id: Optional[str] = None,
        ptype: PacketType = PacketType.REGULAR,
        pattern: Optional[OnOffPattern] = None,
        priority: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.clock = clock
        self.host = host
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.flow_id = flow_id or f"udp:{host.name}->{dst}"
        self.ptype = ptype
        self.pattern = pattern
        self.priority = priority
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False
        self._event = None
        host.add_agent(self.flow_id, self)

    @property
    def interval(self) -> float:
        """Inter-packet gap at the configured rate."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if at is None else max(0.0, at - self.clock.now)
        self._event = self.clock.schedule(delay, self._send_next)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _send_next(self) -> None:
        if not self._running:
            return
        now = self.clock.now
        if self.pattern is not None and not self.pattern.is_on(now):
            resume = self.pattern.next_on_time(now)
            self._event = self.clock.schedule(max(resume - now, 1e-9), self._send_next)
            return
        # _emit_packet() and the ``interval`` property are inlined here (one
        # call frame each per packet); mid-run ``rate_bps`` changes are still
        # honoured.  Keep in sync with _emit_packet below.
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size_bytes=self.packet_size,
            ptype=self.ptype,
            flow_id=self.flow_id,
            protocol="udp",
            priority=self.priority,
        )
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.host.send(packet)
        self._event = self.clock.schedule(
            self.packet_size * 8.0 / self.rate_bps, self._send_next
        )

    def _emit_packet(self) -> None:
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size_bytes=self.packet_size,
            ptype=self.ptype,
            flow_id=self.flow_id,
            protocol="udp",
            priority=self.priority,
        )
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.host.send(packet)

    def on_packet(self, packet: Packet) -> None:
        """UDP senders ignore return traffic (feedback is handled by the
        NetFence end-host shim attached to the host, not the transport)."""


class StrategicAttacker(UdpSender):
    """A UDP flooder whose transmission schedule is tuned to the defense's
    AIMD clocks (the "strategic attacks" discussion of §6.3.2).

    The attacker is assumed to know — or to have measured — the access
    routers' robust-AIMD parameters: the control interval ``Ilim``, the
    additive increase ``Δ``, the multiplicative decrease ``δ``, and the
    rule that a limiter's rate only grows in intervals where the sender saw
    fresh ``L↑`` *and* used more than half its current limit.  It exploits
    all of them:

    * **Burst** at full rate for just under ``burst_intervals`` control
      intervals, aligned with an adjustment boundary.  The burst congests
      the bottleneck, forcing ``L↓`` onto every sender's feedback — which
      multiplicatively decreases the *legitimate* users' rate limiters —
      and ends a guard time before the next adjustment, just before its
      own limiter's escalation (compounding decreases plus cache drops)
      would start charging it for traffic that no longer gets through.
    * **Trickle instead of going silent.**  A naive on-off attacker's own
      rate limiter decays multiplicatively during every silent interval
      (no fresh ``L↑`` → decrease), so its later bursts arrive pre-throttled
      and harmless.  The strategic attacker instead spends its off phase
      sending a maintenance trickle sized to the AIMD increase predicate
      (fresh ``L↑`` while consuming more than half the limit), farming one
      additive increase per recovery interval so each burst hits with a
      freshly recovered rate limit.
    * **Burst again after release**: after ``recovery_intervals`` control
      intervals of farming, the next full-rate burst fires, aligned with
      the same clock phase as the last one.

    For equal-attack-volume comparisons, :meth:`naive_pattern` converts the
    strategic schedule (burst volume plus trickle volume) into a plain
    on-off duty cycle at the same average rate whose period is deliberately
    incommensurate with ``Ilim`` — the only difference between the naive
    and the strategic attacker is knowledge of the defense's timing.
    """

    def __init__(
        self,
        clock: Clock,
        host: Host,
        dst: str,
        rate_bps: float,
        params: Optional[NetFenceParams] = None,
        burst_intervals: float = 1.0,
        recovery_intervals: float = 2.0,
        trickle_bps: Optional[float] = None,
        guard_fraction: float = 0.05,
        packet_size: int = DATA_PACKET_SIZE,
        flow_id: Optional[str] = None,
        ptype: PacketType = PacketType.REGULAR,
        priority: int = 0,
    ) -> None:
        self.params = params or NetFenceParams()
        on_s, off_s, phase_s = self.timing(
            self.params, burst_intervals, recovery_intervals, guard_fraction
        )
        # The trickle targets the AIMD increase predicate: it must exceed
        # half the limiter's (re-grown) rate without re-congesting the link.
        # The initial rate limit is the natural estimate of that operating
        # point — it is where the defense itself starts every limiter.
        if trickle_bps is None:
            trickle_bps = self.params.initial_rate_limit_bps
        self.trickle_bps = trickle_bps
        super().__init__(
            clock, host, dst, rate_bps,
            packet_size=packet_size, flow_id=flow_id, ptype=ptype,
            pattern=OnOffPattern(on_s=on_s, off_s=off_s, phase_s=phase_s),
            priority=priority,
        )

    @staticmethod
    def timing(
        params: NetFenceParams,
        burst_intervals: float = 1.0,
        recovery_intervals: float = 2.0,
        guard_fraction: float = 0.05,
    ) -> Tuple[float, float, float]:
        """Derive ``(burst_s, recover_s, phase_s)`` from the defense's constants.

        The burst occupies ``burst_intervals`` control intervals minus a
        guard at each edge; the recovery phase spans ``recovery_intervals``
        whole intervals, so the period is a whole number of control
        intervals and every burst hits the same phase of the AIMD clock.
        """
        interval = params.control_interval
        guard = max(guard_fraction * interval, 1e-3)
        on_s = max(burst_intervals * interval - 2 * guard, guard)
        off_s = recovery_intervals * interval + 2 * guard
        return on_s, off_s, guard

    @property
    def average_rate_bps(self) -> float:
        """The schedule's long-run average send rate (burst plus trickle)."""
        assert self.pattern is not None
        on, off = self.pattern.on_s, self.pattern.off_s
        return (on * self.rate_bps + off * self.trickle_bps) / (on + off)

    @classmethod
    def naive_pattern(
        cls,
        params: NetFenceParams,
        rate_bps: float,
        burst_intervals: float = 1.0,
        recovery_intervals: float = 2.0,
        trickle_bps: Optional[float] = None,
        guard_fraction: float = 0.05,
        stretch: float = 0.97,
    ) -> OnOffPattern:
        """An equal-volume on-off pattern that ignores the defense's clock.

        The naive attacker emits the same average volume as the strategic
        schedule (burst plus trickle) as a plain silent-off on-off flood;
        ``stretch`` makes its period incommensurate with the control
        interval, so its bursts drift across AIMD boundaries instead of
        straddling them.
        """
        if trickle_bps is None:
            trickle_bps = params.initial_rate_limit_bps
        on_s, off_s, _ = cls.timing(params, burst_intervals, recovery_intervals,
                                    guard_fraction)
        duty = (on_s * rate_bps + off_s * trickle_bps) / ((on_s + off_s) * rate_bps)
        duty = min(duty, 1.0)
        period = (on_s + off_s) * stretch
        return OnOffPattern(on_s=duty * period, off_s=(1.0 - duty) * period,
                            phase_s=0.0)

    def start_aligned(self, not_before: float = 0.0) -> None:
        """Start at the next control-interval boundary at or after ``not_before``."""
        interval = self.params.control_interval
        at = math.ceil(max(not_before, self.clock.now) / interval) * interval
        self.start(at=at + self.pattern.phase_s if self.pattern else at)

    def _send_next(self) -> None:
        if not self._running:
            return
        if self.trickle_bps <= 0:
            super()._send_next()
            return
        rate = self.rate_bps if self.pattern.is_on(self.clock.now) else self.trickle_bps
        self._emit_packet()
        self._event = self.clock.schedule(self.packet_size * 8.0 / rate, self._send_next)


class UdpSink:
    """Counts received packets; optionally reports them to a monitor."""

    def __init__(
        self,
        clock: Clock,
        host: Host,
        monitor: Optional[ThroughputMonitor] = None,
        on_receive: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.clock = clock
        self.host = host
        self.monitor = monitor
        self.on_receive = on_receive
        self.packets_received = 0
        self.bytes_received = 0
        host.default_agent = self

    def on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        if self.monitor is not None:
            self.monitor.record(packet)
        if self.on_receive is not None:
            self.on_receive(packet)
