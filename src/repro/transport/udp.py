"""UDP traffic sources and sinks.

The paper's attackers send 1 Mbps constant-rate UDP traffic (§6.3.1),
synchronized on-off bursts (§6.3.2 "Strategic Attacks"), or request-packet
floods.  :class:`UdpSender` covers all three via an optional
:class:`OnOffPattern` and a configurable packet type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.simulator.engine import Simulator
from repro.simulator.node import Host
from repro.simulator.packet import DATA_PACKET_SIZE, Packet, PacketType
from repro.simulator.trace import ThroughputMonitor


@dataclass
class OnOffPattern:
    """Synchronized on-off transmission (§6.3.2, Fig. 11).

    The sender transmits at full rate during ``on_s`` seconds, stays silent
    for ``off_s`` seconds, and repeats.  ``phase_s`` offsets the start of the
    cycle; the paper's attackers all use phase 0 to maximize burst size.
    """

    on_s: float
    off_s: float
    phase_s: float = 0.0

    @property
    def period(self) -> float:
        return self.on_s + self.off_s

    def is_on(self, now: float) -> bool:
        if self.period <= 0:
            return True
        position = (now - self.phase_s) % self.period
        return position < self.on_s

    def next_on_time(self, now: float) -> float:
        """The next instant at or after ``now`` when transmission is allowed."""
        if self.is_on(now):
            return now
        position = (now - self.phase_s) % self.period
        return now + (self.period - position)


class UdpSender:
    """A constant-bit-rate (optionally on-off) UDP source."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst: str,
        rate_bps: float,
        packet_size: int = DATA_PACKET_SIZE,
        flow_id: Optional[str] = None,
        ptype: PacketType = PacketType.REGULAR,
        pattern: Optional[OnOffPattern] = None,
        priority: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.host = host
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.flow_id = flow_id or f"udp:{host.name}->{dst}"
        self.ptype = ptype
        self.pattern = pattern
        self.priority = priority
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False
        self._event = None
        host.add_agent(self.flow_id, self)

    @property
    def interval(self) -> float:
        """Inter-packet gap at the configured rate."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, at: Optional[float] = None) -> None:
        if self._running:
            return
        self._running = True
        delay = 0.0 if at is None else max(0.0, at - self.sim.now)
        self._event = self.sim.schedule(delay, self._send_next)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _send_next(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        if self.pattern is not None and not self.pattern.is_on(now):
            resume = self.pattern.next_on_time(now)
            self._event = self.sim.schedule(max(resume - now, 1e-9), self._send_next)
            return
        packet = Packet(
            src=self.host.name,
            dst=self.dst,
            size_bytes=self.packet_size,
            ptype=self.ptype,
            flow_id=self.flow_id,
            protocol="udp",
            priority=self.priority,
        )
        self.packets_sent += 1
        self.bytes_sent += packet.size_bytes
        self.host.send(packet)
        self._event = self.sim.schedule(self.interval, self._send_next)

    def on_packet(self, packet: Packet) -> None:
        """UDP senders ignore return traffic (feedback is handled by the
        NetFence end-host shim attached to the host, not the transport)."""


class UdpSink:
    """Counts received packets; optionally reports them to a monitor."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        monitor: Optional[ThroughputMonitor] = None,
        on_receive: Optional[Callable[[Packet], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.monitor = monitor
        self.on_receive = on_receive
        self.packets_received = 0
        self.bytes_received = 0
        host.default_agent = self

    def on_packet(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        if self.monitor is not None:
            self.monitor.record(packet)
        if self.on_receive is not None:
            self.on_receive(packet)
