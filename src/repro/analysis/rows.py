"""Result-row helpers shared by the sweep engine and the experiment CLI.

Experiment modules return typed dataclass rows (``Fig8Row``,
``ParkingLotRow``, ...).  These helpers convert them to plain dictionaries
and JSON so sweep results can be merged, cached, and emitted by
``netfence-experiment --json`` without each figure module reinventing the
serialization.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


def row_schema(rows: Iterable[Any]) -> Tuple[Any, ...]:
    """Fingerprint row types: class identity plus dataclass field names.

    Both the pickle-backed :class:`~repro.experiments.sweep.SweepCache` and
    the SQLite :class:`~repro.store.ResultStore` record this fingerprint at
    write time and compare it against the currently imported classes at read
    time: unpickling bypasses ``__init__``, so without the check a row
    dataclass that gained or lost a field would be served as a silently
    stale object.
    """
    schema = []
    for row in rows:
        cls = type(row)
        fields: Optional[Tuple[str, ...]] = None
        if dataclasses.is_dataclass(row):
            fields = tuple(f.name for f in dataclasses.fields(cls))
        schema.append((cls.__module__, cls.__qualname__, fields))
    return tuple(schema)


def row_to_dict(row: Any) -> Dict[str, Any]:
    """Convert one result row (dataclass, mapping, or namedtuple) to a dict."""
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    if hasattr(row, "_asdict"):
        return dict(row._asdict())
    raise TypeError(f"cannot convert row of type {type(row).__name__} to a dict")


def rows_to_dicts(rows: Iterable[Any]) -> List[Dict[str, Any]]:
    return [row_to_dict(row) for row in rows]


def json_safe(value: Any) -> Any:
    """Replace non-JSON floats (NaN/inf) with null and encode bytes.

    Strict consumers (``jq``, ``JSON.parse``) reject Python's default
    ``NaN``/``Infinity`` tokens, and rows like Fig. 8's transfer time are NaN
    when no transfer completed.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def rows_to_json(rows: Iterable[Any], indent: int = 2) -> str:
    """Serialize result rows as a JSON array."""
    return json.dumps(json_safe(rows_to_dicts(rows)), indent=indent, sort_keys=True)


def dict_rows_fieldnames(dict_rows: List[Dict[str, Any]]) -> List[str]:
    """Column order for tabular export: first row's key order (dataclass
    field order for dataclass rows), then any later-appearing keys sorted."""
    if not dict_rows:
        return []
    fieldnames = list(dict_rows[0])
    seen = set(fieldnames)
    extras = sorted({k for row in dict_rows[1:] for k in row} - seen)
    return fieldnames + extras


def rows_to_csv(rows: Iterable[Any]) -> str:
    """Serialize result rows as CSV with a header line."""
    dict_rows = [json_safe(row_to_dict(row)) for row in rows]
    fieldnames = dict_rows_fieldnames(dict_rows)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fieldnames, restval="",
                            extrasaction="ignore", lineterminator="\n")
    writer.writeheader()
    writer.writerows(dict_rows)
    return buf.getvalue()
