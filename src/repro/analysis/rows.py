"""Result-row helpers shared by the sweep engine and the experiment CLI.

Experiment modules return typed dataclass rows (``Fig8Row``,
``ParkingLotRow``, ...).  These helpers convert them to plain dictionaries
and JSON so sweep results can be merged, cached, and emitted by
``netfence-experiment --json`` without each figure module reinventing the
serialization.
"""

from __future__ import annotations

import dataclasses
import json
import math
from typing import Any, Dict, Iterable, List


def row_to_dict(row: Any) -> Dict[str, Any]:
    """Convert one result row (dataclass, mapping, or namedtuple) to a dict."""
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    if hasattr(row, "_asdict"):
        return dict(row._asdict())
    raise TypeError(f"cannot convert row of type {type(row).__name__} to a dict")


def rows_to_dicts(rows: Iterable[Any]) -> List[Dict[str, Any]]:
    return [row_to_dict(row) for row in rows]


def json_safe(value: Any) -> Any:
    """Replace non-JSON floats (NaN/inf) with null and encode bytes.

    Strict consumers (``jq``, ``JSON.parse``) reject Python's default
    ``NaN``/``Infinity`` tokens, and rows like Fig. 8's transfer time are NaN
    when no transfer completed.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def rows_to_json(rows: Iterable[Any], indent: int = 2) -> str:
    """Serialize result rows as a JSON array."""
    return json.dumps(json_safe(rows_to_dicts(rows)), indent=indent, sort_keys=True)
