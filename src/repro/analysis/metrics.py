"""Evaluation metrics used throughout §6 of the paper."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n·Σx²)`` (Chiu & Jain [11]).

    Returns 1.0 for an empty sequence or all-zero allocations, matching the
    convention that "nobody got anything" is (vacuously) fair.
    """
    xs = [max(v, 0.0) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0:
        return 1.0
    return (total * total) / (len(xs) * squares)


def throughput_ratio(
    user_throughputs: Sequence[float], attacker_throughputs: Sequence[float]
) -> float:
    """Average legitimate-user throughput over average attacker throughput (§6.3.2)."""
    if not user_throughputs:
        return 0.0
    if not attacker_throughputs:
        return float("inf")
    user_avg = sum(user_throughputs) / len(user_throughputs)
    attacker_avg = sum(attacker_throughputs) / len(attacker_throughputs)
    if attacker_avg == 0:
        return float("inf") if user_avg > 0 else 0.0
    return user_avg / attacker_avg


def traffic_share(throughputs_bps: Sequence[float], capacity_bps: float) -> float:
    """Fraction of a link's capacity delivered to one sender population.

    The §5 partial-deployment analysis reports the *legitimate-traffic
    share*: the sum of legitimate senders' goodput over the bottleneck
    capacity.  Clamped to [0, 1] so measurement jitter (goodput sampled at
    receivers, capacity at the link) cannot push it out of range.
    """
    if capacity_bps <= 0:
        raise ValueError("capacity_bps must be positive")
    total = sum(max(v, 0.0) for v in throughputs_bps)
    return min(total / capacity_bps, 1.0)


@dataclass
class ThroughputSummary:
    """Aggregate view of one sender population's throughputs."""

    count: int
    mean_bps: float
    min_bps: float
    max_bps: float
    fairness_index: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "ThroughputSummary":
        if not values:
            return cls(count=0, mean_bps=0.0, min_bps=0.0, max_bps=0.0, fairness_index=1.0)
        return cls(
            count=len(values),
            mean_bps=sum(values) / len(values),
            min_bps=min(values),
            max_bps=max(values),
            fairness_index=jain_fairness_index(values),
        )


def summarize_throughputs(
    throughputs: Mapping[str, float], groups: Mapping[str, Iterable[str]]
) -> Dict[str, ThroughputSummary]:
    """Summarize per-sender throughputs by named sender group."""
    result: Dict[str, ThroughputSummary] = {}
    for group, members in groups.items():
        values: List[float] = [throughputs.get(name, 0.0) for name in members]
        result[group] = ThroughputSummary.from_values(values)
    return result
