"""``runner bench report`` — surface the perf trajectory the store collects.

:meth:`~repro.store.result_store.ResultStore.perf_trajectory` records every
execution's wall time, append-only, but until this module nothing ever read
it back.  The report answers the operator question "is this experiment
getting slower?" from two feeds:

* **Store trajectory** — per ``(experiment, cache_key)`` the first recorded
  execution is the baseline and the latest is the current cost; a point
  re-executed after a code change therefore measures that change.  Points
  executed only once carry no trend and are reported but not gated.
* **Benchmark artifact** — the headline numbers each benchmark folded into
  ``BENCH_sweep.json`` (see ``benchmarks/bench_artifact.py``), flattened to
  ``section.key`` scalars for at-a-glance display next to the trajectory.

``--fail-on-regression PCT`` turns the trajectory trend into an exit code:
any experiment whose repeated points got more than ``PCT`` percent slower
in aggregate fails the run — the CI hook that makes perf drift visible
per-PR instead of per-complaint.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["bench_headlines", "cli_main", "perf_report"]


def perf_report(trajectory: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-experiment trend over a :meth:`perf_trajectory` row list.

    For every cache key with more than one execution, the oldest execution
    is the baseline and the newest the current cost; the experiment's
    ``regression_pct`` compares the summed current cost of those repeated
    points against their summed baselines (``None`` when nothing repeated).
    """
    by_key: Dict[tuple, List[Dict[str, Any]]] = {}
    for row in trajectory:  # oldest first, as perf_trajectory returns them
        by_key.setdefault((row["experiment"], row["cache_key"]), []).append(row)

    experiments: Dict[str, Dict[str, Any]] = {}
    for (experiment, _key), rows in by_key.items():
        entry = experiments.setdefault(experiment, {
            "experiment": experiment, "points": 0, "executions": 0,
            "repeated_points": 0, "baseline_s": 0.0, "latest_s": 0.0,
        })
        entry["points"] += 1
        entry["executions"] += len(rows)
        if len(rows) > 1:
            entry["repeated_points"] += 1
            entry["baseline_s"] += float(rows[0]["elapsed_s"])
            entry["latest_s"] += float(rows[-1]["elapsed_s"])

    out = []
    for entry in experiments.values():
        if entry["repeated_points"] and entry["baseline_s"] > 0:
            entry["regression_pct"] = round(
                (entry["latest_s"] - entry["baseline_s"])
                / entry["baseline_s"] * 100.0, 2)
        else:
            entry["regression_pct"] = None
        entry["baseline_s"] = round(entry["baseline_s"], 4)
        entry["latest_s"] = round(entry["latest_s"], 4)
        out.append(entry)
    return sorted(out, key=lambda e: e["experiment"])


def bench_headlines(artifact: Dict[str, Any]) -> Dict[str, float]:
    """Flatten a ``BENCH_sweep.json`` artifact to ``section.key`` scalars.

    Only numeric leaves survive (lists such as per-point dumps are elided);
    nesting flattens with dots, so ``hotpath.microbench.enqueue_us`` reads
    the same in the report as in the artifact.
    """
    out: Dict[str, float] = {}

    def walk(prefix: str, value: Any) -> None:
        if isinstance(value, bool):
            return
        if isinstance(value, (int, float)):
            out[prefix] = float(value)
        elif isinstance(value, dict):
            for key in sorted(value):
                walk(f"{prefix}.{key}" if prefix else str(key), value[key])

    walk("", artifact)
    return out


def _load_artifact(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _format_report(report: List[Dict[str, Any]],
                   headlines: Dict[str, float]) -> str:
    lines = []
    if report:
        lines.append("perf trajectory (store):")
        for entry in report:
            trend = ("n/a (no repeated points)"
                     if entry["regression_pct"] is None else
                     f"{entry['regression_pct']:+.2f}% "
                     f"({entry['baseline_s']}s -> {entry['latest_s']}s over "
                     f"{entry['repeated_points']} repeated point(s))")
            lines.append(f"  {entry['experiment']}: {entry['points']} points, "
                         f"{entry['executions']} executions, trend {trend}")
    else:
        lines.append("perf trajectory (store): no executions recorded")
    if headlines:
        lines.append("benchmark headlines (BENCH_sweep.json):")
        lines.extend(f"  {name} = {value}"
                     for name, value in sorted(headlines.items()))
    return "\n".join(lines)


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner bench",
        description="Report the perf trajectory and benchmark headlines.",
    )
    parser.add_argument("command", choices=("report",),
                        help="only 'report' for now")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="ResultStore database to read the trajectory from")
    parser.add_argument("--experiment", default=None,
                        help="restrict the trajectory to one experiment")
    parser.add_argument("--bench-json", default="BENCH_sweep.json",
                        metavar="PATH",
                        help="benchmark artifact to summarize (default "
                             "BENCH_sweep.json; missing file = skipped)")
    parser.add_argument("--fail-on-regression", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 if any experiment's repeated points got "
                             "more than PCT percent slower")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable JSON output")
    args = parser.parse_args(argv)

    report: List[Dict[str, Any]] = []
    if args.store is not None:
        from repro.store.result_store import ResultStore

        store = ResultStore(args.store)
        report = perf_report(store.perf_trajectory(experiment=args.experiment))

    artifact = _load_artifact(args.bench_json) if args.bench_json else None
    headlines = bench_headlines(artifact) if artifact else {}

    regressed = [
        entry for entry in report
        if args.fail_on_regression is not None
        and entry["regression_pct"] is not None
        and entry["regression_pct"] > args.fail_on_regression
    ]

    if args.as_json:
        print(json.dumps({
            "trajectory": report,
            "headlines": headlines,
            "fail_on_regression_pct": args.fail_on_regression,
            "regressed": [e["experiment"] for e in regressed],
        }, sort_keys=True))
    else:
        print(_format_report(report, headlines))
        for entry in regressed:
            print(f"bench: {entry['experiment']} regressed "
                  f"{entry['regression_pct']:+.2f}% "
                  f"(> {args.fail_on_regression}%)", file=sys.stderr)
    return 1 if regressed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
