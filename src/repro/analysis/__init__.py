"""Analysis helpers: fairness metrics and the Appendix A convergence model."""

from repro.analysis.metrics import (
    jain_fairness_index,
    throughput_ratio,
    summarize_throughputs,
)
from repro.analysis.convergence import (
    AimdFluidModel,
    fair_share_lower_bound,
)

__all__ = [
    "jain_fairness_index",
    "throughput_ratio",
    "summarize_throughputs",
    "AimdFluidModel",
    "fair_share_lower_bound",
]
