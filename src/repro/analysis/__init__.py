"""Analysis helpers: fairness metrics, the Appendix A convergence model,
and aggregation views over stored sweep rows."""

from repro.analysis.metrics import (
    jain_fairness_index,
    throughput_ratio,
    summarize_throughputs,
)
from repro.analysis.convergence import (
    AimdFluidModel,
    fair_share_lower_bound,
)
from repro.analysis.aggregate import (
    dashboard_payload,
    group_reduce,
    pivot_table,
)

__all__ = [
    "jain_fairness_index",
    "throughput_ratio",
    "summarize_throughputs",
    "AimdFluidModel",
    "fair_share_lower_bound",
    "dashboard_payload",
    "group_reduce",
    "pivot_table",
]
