"""Aggregation views over stored sweep rows.

These helpers turn the flat row dictionaries served by
:meth:`repro.store.ResultStore.query_rows` into the shapes dashboards
consume: grouped reductions (one value per group) and pivot tables (one
series per column value, e.g. legit-share vs deployment fraction with one
line per attacker strategy).  They are deliberately dependency-free — the
output is plain JSON-ready dicts.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "AGGREGATORS",
    "group_reduce",
    "pivot_table",
    "dashboard_payload",
]


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


AGGREGATORS: Dict[str, Callable[[Sequence[float]], float]] = {
    "mean": _mean,
    "median": _median,
    "sum": sum,
    "min": min,
    "max": max,
    "count": len,
}


def _numeric(values: Iterable[Any]) -> List[float]:
    out = []
    for value in values:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if isinstance(value, float) and not math.isfinite(value):
            continue
        out.append(value)
    return out


def group_reduce(
    rows: Iterable[Dict[str, Any]],
    by: Sequence[str],
    value: str,
    agg: str = "mean",
) -> List[Dict[str, Any]]:
    """Reduce ``value`` over rows grouped by the ``by`` fields.

    Returns one dict per group — the group fields plus ``{agg}_{value}`` and
    ``n`` (rows contributing a finite numeric value) — ordered by first
    appearance, so output order is as deterministic as the row order.
    """
    reducer = AGGREGATORS[agg]
    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    for row in rows:
        key = tuple(row.get(field) for field in by)
        groups.setdefault(key, []).append(row.get(value))
    out = []
    for key, values in groups.items():
        numeric = _numeric(values)
        entry = dict(zip(by, key))
        entry[f"{agg}_{value}"] = reducer(numeric) if numeric else None
        entry["n"] = len(numeric)
        out.append(entry)
    return out


def pivot_table(
    rows: Iterable[Dict[str, Any]],
    index: str,
    column: str,
    value: str,
    agg: str = "mean",
) -> Dict[str, Any]:
    """Pivot rows into a dashboard-ready table.

    ``index`` values become the x-axis, ``column`` values become one series
    each, and each cell reduces ``value`` with ``agg`` (``None`` for empty
    cells).  Index and column values keep first-appearance order.
    """
    reducer = AGGREGATORS[agg]
    cells: Dict[Tuple[Any, Any], List[Any]] = {}
    index_values: List[Any] = []
    column_values: List[Any] = []
    for row in rows:
        iv, cv = row.get(index), row.get(column)
        if iv not in index_values:
            index_values.append(iv)
        if cv not in column_values:
            column_values.append(cv)
        cells.setdefault((iv, cv), []).append(row.get(value))

    def cell(iv: Any, cv: Any) -> Optional[float]:
        numeric = _numeric(cells.get((iv, cv), ()))
        return reducer(numeric) if numeric else None

    return {
        "index": index,
        "column": column,
        "value": value,
        "agg": agg,
        "index_values": index_values,
        "series": [
            {"name": cv, "values": [cell(iv, cv) for iv in index_values]}
            for cv in column_values
        ],
    }


def dashboard_payload(
    store: Any,
    experiment: str,
    index: str,
    column: str,
    value: str,
    agg: str = "mean",
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One-call dashboard JSON: query the store, pivot, attach provenance.

    ``store`` is a :class:`repro.store.ResultStore`; ``params`` filters on
    spec parameters (e.g. ``{"system": "netfence"}``).
    """
    rows = store.query_rows(experiment=experiment, params=params)
    payload = pivot_table(rows, index=index, column=column, value=value, agg=agg)
    payload.update(experiment=experiment, rows=len(rows),
                   store_path=getattr(store, "path", None))
    return payload
