"""The Appendix A convergence analysis as an executable fluid model.

The paper proves (Theorem, §3.4 / Appendix A) that with NetFence's robust
AIMD any legitimate sender with sufficient demand eventually receives at
least ``ν·ρ·C/(G+B)`` of a bottleneck of capacity ``C`` shared by ``G``
legitimate and ``B`` malicious senders, where ``ρ = (1-δ)³`` accounts for the
extra multiplicative decreases caused by the 2·Ilim stamping hysteresis and
``ν`` is the sender's rate-limit utilization.

:class:`AimdFluidModel` reproduces the simplified fluid argument: per control
interval, every rate limit is either increased additively (when the bottleneck
was not congested — all senders see ``L↑``) or decreased multiplicatively
(when it was congested).  Senders may have a demand cap (``ν < 1``) or an
arbitrary on-off "attack strategy" expressed as a per-interval demand
function; the theorem says the strategy cannot push a sufficient-demand
sender below the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.analysis.metrics import jain_fairness_index


def fair_share_lower_bound(
    capacity_bps: float,
    num_legitimate: int,
    num_malicious: int,
    delta: float = 0.1,
    nu: float = 1.0,
) -> float:
    """The theorem's guaranteed share: ``ν · (1-δ)³ · C / (G+B)``."""
    if num_legitimate + num_malicious <= 0:
        raise ValueError("need at least one sender")
    rho = (1.0 - delta) ** 3
    return nu * rho * capacity_bps / (num_legitimate + num_malicious)


@dataclass
class FluidSender:
    """One sender in the fluid model."""

    name: str
    #: demand(interval_index) -> offered rate in bps (None = unlimited).
    demand_fn: Optional[Callable[[int], float]] = None
    rate_limit_bps: float = 64_000.0
    is_legitimate: bool = True
    sent_history: List[float] = field(default_factory=list)

    def offered(self, interval: int) -> float:
        if self.demand_fn is None:
            return float("inf")
        return max(self.demand_fn(interval), 0.0)


class AimdFluidModel:
    """Interval-level simulation of the robust AIMD control loop.

    Per interval:

    1. every sender transmits ``min(offered demand, rate limit)``;
    2. the bottleneck is congested iff the aggregate exceeds the capacity;
    3. congested interval → every rate limit that was *used* this interval is
       multiplicatively decreased (the hysteresis means nobody can obtain
       ``L↑`` for it, §4.3.4); uncongested interval → senders whose
       throughput exceeded half their limit get an additive increase, others
       keep their limit (the robustness rule against inflating by idling).
    """

    def __init__(
        self,
        capacity_bps: float,
        senders: Sequence[FluidSender],
        additive_increase_bps: float = 12_000.0,
        multiplicative_decrease: float = 0.1,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.capacity_bps = capacity_bps
        self.senders = list(senders)
        self.additive_increase_bps = additive_increase_bps
        self.multiplicative_decrease = multiplicative_decrease
        self.interval = 0
        self.congested_history: List[bool] = []
        self.fairness_history: List[float] = []

    def step(self) -> bool:
        """Advance one control interval; returns True if it was congested."""
        sends = []
        for sender in self.senders:
            rate = min(sender.offered(self.interval), sender.rate_limit_bps)
            sender.sent_history.append(rate)
            sends.append(rate)
        congested = sum(sends) >= self.capacity_bps
        for sender, sent in zip(self.senders, sends):
            if congested:
                if sent > 0:
                    sender.rate_limit_bps *= 1.0 - self.multiplicative_decrease
            else:
                if sent > sender.rate_limit_bps / 2.0:
                    sender.rate_limit_bps += self.additive_increase_bps
        self.congested_history.append(congested)
        self.fairness_history.append(
            jain_fairness_index([s.rate_limit_bps for s in self.senders])
        )
        self.interval += 1
        return congested

    def run(self, intervals: int) -> None:
        for _ in range(intervals):
            self.step()

    # -- results ------------------------------------------------------------------
    def average_rate(self, sender: FluidSender, last_intervals: Optional[int] = None) -> float:
        history = sender.sent_history
        if not history:
            return 0.0
        if last_intervals is not None:
            history = history[-last_intervals:]
        return sum(history) / len(history)

    def legitimate_senders(self) -> List[FluidSender]:
        return [s for s in self.senders if s.is_legitimate]

    def malicious_senders(self) -> List[FluidSender]:
        return [s for s in self.senders if not s.is_legitimate]

    @property
    def final_fairness(self) -> float:
        return self.fairness_history[-1] if self.fairness_history else 1.0
