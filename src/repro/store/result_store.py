"""SQLite-backed, append-only store for executed sweep points.

Layout (one database file, shared by any number of workers)::

    points      one record per *execution* of a grid point: the spec identity
                (experiment, params JSON, seed, cache_key), the row-schema
                fingerprint, a pickle of the typed row list, per-point wall
                time, the committing worker id, and a timestamp.
    point_rows  one JSON record per result row, flattened for SQL-side
                filtering and for readers that do not import the row classes.

The store is **append-only**: re-executing a point inserts a new ``points``
record rather than overwriting the old one, so the database doubles as a
perf trajectory (wall time per point over time, per worker).  Readers that
want "the" result of a point take the newest record for its cache key.

Reads of typed rows apply the same staleness rule as ``SweepCache``: the
row-schema fingerprint recorded at write time must match the fingerprint
recomputed from the unpickled rows against the currently imported classes,
otherwise the record is treated as missing (``get`` returns ``None``).  The
flattened JSON rows remain queryable either way.

Concurrency: every public method opens its own short-lived connection, so
one ``ResultStore`` object may be shared across threads, and any number of
processes (``runner worker`` fleets included) may point at the same file —
SQLite's locking serializes the commits.
"""

from __future__ import annotations

import contextlib
import json
import os
import pickle
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.rows import json_safe, row_schema, rows_to_dicts
from repro.experiments.sweep import ScenarioSpec, SweepResult, default_worker_id

__all__ = ["PointRecord", "ResultStore", "default_worker_id"]

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS points (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    cache_key   TEXT    NOT NULL,
    experiment  TEXT    NOT NULL,
    params_json TEXT    NOT NULL,
    seed        INTEGER NOT NULL,
    row_schema  TEXT    NOT NULL,
    rows_blob   BLOB    NOT NULL,
    num_rows    INTEGER NOT NULL,
    elapsed_s   REAL    NOT NULL,
    worker_id   TEXT    NOT NULL,
    created_at  REAL    NOT NULL,
    attempt     INTEGER NOT NULL DEFAULT 1
);
CREATE INDEX IF NOT EXISTS idx_points_cache_key  ON points (cache_key, id);
CREATE INDEX IF NOT EXISTS idx_points_experiment ON points (experiment, id);
CREATE TABLE IF NOT EXISTS point_rows (
    point_id  INTEGER NOT NULL REFERENCES points (id),
    row_index INTEGER NOT NULL,
    data      TEXT    NOT NULL,
    PRIMARY KEY (point_id, row_index)
);
CREATE TABLE IF NOT EXISTS metric_rows (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    experiment  TEXT    NOT NULL,
    cache_key   TEXT    NOT NULL,
    name        TEXT    NOT NULL,
    labels_json TEXT    NOT NULL,
    kind        TEXT    NOT NULL,
    value       REAL    NOT NULL,
    data        TEXT    NOT NULL,
    recorded_at REAL,
    created_at  REAL    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metric_rows_point
    ON metric_rows (experiment, cache_key, id);
CREATE TABLE IF NOT EXISTS worker_rows (
    id                 INTEGER PRIMARY KEY AUTOINCREMENT,
    worker_id          TEXT    NOT NULL,
    experiment         TEXT    NOT NULL,
    cache_key          TEXT    NOT NULL,
    attempt            INTEGER NOT NULL DEFAULT 1,
    claim_latency_s    REAL,
    heartbeat_renewals INTEGER NOT NULL DEFAULT 0,
    elapsed_s          REAL,
    rss_kb             INTEGER,
    data               TEXT    NOT NULL,
    created_at         REAL    NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_worker_rows_worker ON worker_rows (worker_id, id);
CREATE INDEX IF NOT EXISTS idx_worker_rows_exp    ON worker_rows (experiment, id);
"""


@dataclass(frozen=True)
class PointRecord:
    """Metadata of one stored execution (no row payload)."""

    point_id: int
    cache_key: str
    experiment: str
    params: Dict[str, Any]
    seed: int
    num_rows: int
    elapsed_s: float
    worker_id: str
    created_at: float
    #: Which execution attempt produced this record (> 1 after queue retries).
    attempt: int = 1


def _params_json(spec: ScenarioSpec) -> str:
    """Spec params as canonical JSON (frozen tuples become lists)."""
    return json.dumps(json_safe(spec.kwargs), sort_keys=True, default=repr)


class ResultStore:
    """Append-only SQLite result store keyed by ``ScenarioSpec.cache_key()``.

    Implements the ``get(spec)`` / ``put(spec, rows)`` protocol of
    :class:`~repro.experiments.sweep.SweepCache`, so it can be passed
    wherever a sweep cache is accepted, plus :meth:`put_result` which also
    records per-point wall time and the committing worker id.
    """

    #: Bump to segregate databases when the on-disk layout changes.
    VERSION = 1

    def __init__(self, path: str, worker_id: Optional[str] = None) -> None:
        self.path = os.path.abspath(path)
        self.worker_id = worker_id or default_worker_id()
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with contextlib.closing(self._connect()) as conn, conn:
            conn.executescript(_SCHEMA_SQL)
            # Databases written before the retry-budget provenance column
            # existed are migrated in place (the default backfills attempt 1).
            columns = {row["name"] for row in conn.execute("PRAGMA table_info(points)")}
            if "attempt" not in columns:
                conn.execute(
                    "ALTER TABLE points ADD COLUMN attempt INTEGER NOT NULL DEFAULT 1")

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        return conn

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def put_result(self, result: SweepResult, worker_id: Optional[str] = None,
                   attempt: int = 1) -> int:
        """Append one executed point; returns the new ``points`` record id.

        ``attempt`` records which execution attempt succeeded — the retry
        budget of :class:`~repro.experiments.distrib.QueueWorker` passes
        values > 1 when a flaky point needed re-queuing.
        """
        if result.error is not None:
            raise ValueError(
                f"refusing to store a failed point: {result.spec.describe()}")
        return self._append(
            result.spec,
            result.rows,
            elapsed_s=result.elapsed_s,
            worker_id=worker_id or result.worker_id or self.worker_id,
            attempt=attempt,
        )

    def put(self, spec: ScenarioSpec, rows: List[Any]) -> int:
        """SweepCache-compatible write (no timing / worker metadata)."""
        return self._append(spec, rows, elapsed_s=0.0, worker_id=self.worker_id)

    def _append(self, spec: ScenarioSpec, rows: List[Any], elapsed_s: float,
                worker_id: str, attempt: int = 1) -> int:
        blob = pickle.dumps(rows)
        schema = repr(row_schema(rows))
        dict_rows = [json.dumps(json_safe(d), sort_keys=True, default=repr)
                     for d in rows_to_dicts(rows)]
        with contextlib.closing(self._connect()) as conn, conn:
            cursor = conn.execute(
                "INSERT INTO points (cache_key, experiment, params_json, seed,"
                " row_schema, rows_blob, num_rows, elapsed_s, worker_id, created_at,"
                " attempt)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (spec.cache_key(), spec.experiment, _params_json(spec), spec.seed,
                 schema, blob, len(rows), elapsed_s, worker_id, time.time(), attempt),
            )
            point_id = cursor.lastrowid
            conn.executemany(
                "INSERT INTO point_rows (point_id, row_index, data) VALUES (?, ?, ?)",
                [(point_id, index, data) for index, data in enumerate(dict_rows)],
            )
        return point_id

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def get(self, spec: ScenarioSpec) -> Optional[List[Any]]:
        """Newest stored row list for the spec, or ``None``.

        A record whose row classes have since changed shape (stale schema
        fingerprint) is treated as missing, exactly like ``SweepCache``.
        """
        with contextlib.closing(self._connect()) as conn, conn:
            record = conn.execute(
                "SELECT row_schema, rows_blob FROM points WHERE cache_key = ?"
                " ORDER BY id DESC LIMIT 1",
                (spec.cache_key(),),
            ).fetchone()
        if record is None:
            return None
        try:
            rows = pickle.loads(record["rows_blob"])
        except Exception:
            return None  # row classes renamed/moved since this was written
        if repr(row_schema(rows)) != record["row_schema"]:
            return None
        return rows

    def point_records(self, experiment: Optional[str] = None,
                      latest_only: bool = False) -> List[PointRecord]:
        """Stored execution metadata, oldest first.

        ``latest_only`` keeps only the newest record per cache key — the
        view a dashboard of current results wants; the default keeps every
        execution — the view a perf trajectory wants.
        """
        query = ("SELECT id, cache_key, experiment, params_json, seed, num_rows,"
                 " elapsed_s, worker_id, created_at, attempt FROM points")
        args: Tuple[Any, ...] = ()
        if experiment is not None:
            query += " WHERE experiment = ?"
            args = (experiment,)
        query += " ORDER BY id"
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(query, args).fetchall()
        if latest_only:
            newest: Dict[str, sqlite3.Row] = {}
            for record in records:
                newest[record["cache_key"]] = record
            records = sorted(newest.values(), key=lambda r: r["id"])
        return [
            PointRecord(
                point_id=r["id"], cache_key=r["cache_key"],
                experiment=r["experiment"], params=json.loads(r["params_json"]),
                seed=r["seed"], num_rows=r["num_rows"], elapsed_s=r["elapsed_s"],
                worker_id=r["worker_id"], created_at=r["created_at"],
                attempt=r["attempt"],
            )
            for r in records
        ]

    def query_rows(
        self,
        experiment: Optional[str] = None,
        params: Optional[Dict[str, Any]] = None,
        where: Optional[Callable[[Dict[str, Any]], bool]] = None,
        latest_only: bool = True,
        meta: bool = False,
    ) -> List[Dict[str, Any]]:
        """Flattened result rows as dictionaries.

        ``params`` filters on spec parameters by equality (``{"system":
        "netfence"}``); ``where`` is an arbitrary predicate over the row
        dict.  With ``meta=True`` each row gains underscore-prefixed spec
        and provenance fields (``_experiment``, ``_seed``, ``_params``,
        ``_worker_id``, ``_elapsed_s``, ``_created_at``).  Rows are served
        from the flattened JSON table, so they remain readable even when
        the typed row classes have changed since the write.
        """
        records = self.point_records(experiment=experiment, latest_only=latest_only)
        if params:
            frozen = json.loads(json.dumps(json_safe(params), default=repr))
            records = [r for r in records
                       if all(r.params.get(k) == v for k, v in frozen.items())]
        if not records:
            return []
        ids = [r.point_id for r in records]
        by_id = {r.point_id: r for r in records}
        placeholders = ",".join("?" * len(ids))
        with contextlib.closing(self._connect()) as conn, conn:
            raw = conn.execute(
                f"SELECT point_id, row_index, data FROM point_rows"
                f" WHERE point_id IN ({placeholders})"
                f" ORDER BY point_id, row_index",
                ids,
            ).fetchall()
        out: List[Dict[str, Any]] = []
        for record in raw:
            row = json.loads(record["data"])
            if where is not None and not where(row):
                continue
            if meta:
                point = by_id[record["point_id"]]
                row.update(
                    _experiment=point.experiment, _seed=point.seed,
                    _params=point.params, _worker_id=point.worker_id,
                    _elapsed_s=point.elapsed_s, _created_at=point.created_at,
                    _attempt=point.attempt,
                )
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # Metric rows (repro.obs bridge)
    # ------------------------------------------------------------------

    def put_metric_rows(
        self,
        experiment: str,
        cache_key: str,
        rows: Sequence[Dict[str, Any]],
        now: Optional[float] = None,
    ) -> int:
        """Append per-point metric summaries (see :mod:`repro.obs.export`).

        Each row is the ``metric_rows`` shape — ``{name, labels, kind,
        value, ...}`` — committed next to the experiment point it describes.
        ``now`` is the *telemetry* clock reading (simulated or wall); the
        wall-clock ``created_at`` provenance stamp is recorded separately.
        Returns the number of rows written.
        """
        created = time.time()
        payload = [
            (
                experiment,
                cache_key,
                str(row.get("name", "")),
                json.dumps(row.get("labels", {}), sort_keys=True),
                str(row.get("kind", "")),
                float(row.get("value", 0.0)),
                json.dumps(json_safe(row), sort_keys=True),
                now,
                created,
            )
            for row in rows
        ]
        with contextlib.closing(self._connect()) as conn, conn:
            conn.executemany(
                "INSERT INTO metric_rows (experiment, cache_key, name,"
                " labels_json, kind, value, data, recorded_at, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                payload,
            )
        return len(payload)

    def query_metric_rows(
        self,
        experiment: Optional[str] = None,
        cache_key: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Stored metric rows, oldest first, with provenance fields attached."""
        clauses, args = [], []
        for column, wanted in (("experiment", experiment),
                               ("cache_key", cache_key), ("name", name)):
            if wanted is not None:
                clauses.append(f"{column} = ?")
                args.append(wanted)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(
                f"SELECT * FROM metric_rows{where} ORDER BY id", args
            ).fetchall()
        out: List[Dict[str, Any]] = []
        for record in records:
            row = json.loads(record["data"])
            row.update(
                _experiment=record["experiment"],
                _cache_key=record["cache_key"],
                _recorded_at=record["recorded_at"],
                _created_at=record["created_at"],
            )
            out.append(row)
        return out

    # ------------------------------------------------------------------
    # Worker fleet telemetry
    # ------------------------------------------------------------------

    def put_worker_rows(
        self,
        rows: Sequence[Dict[str, Any]],
        worker_id: Optional[str] = None,
    ) -> int:
        """Append per-point worker telemetry (claim latency, heartbeats, RSS).

        Each row describes one point execution as seen from the worker's
        side of the queue — the operational half that ``points`` provenance
        does not capture.  Recognized keys become typed columns
        (``experiment``, ``cache_key``, ``attempt``, ``claim_latency_s``,
        ``heartbeat_renewals``, ``elapsed_s``, ``rss_kb``); the full row is
        preserved as JSON for anything else (steals, retries, lease nonce).
        Returns the number of rows written.
        """
        created = time.time()
        default_worker = worker_id or self.worker_id
        payload = []
        for row in rows:
            claim = row.get("claim_latency_s")
            elapsed = row.get("elapsed_s")
            rss = row.get("rss_kb")
            payload.append((
                str(row.get("worker_id", default_worker)),
                str(row.get("experiment", "")),
                str(row.get("cache_key", "")),
                int(row.get("attempt", 1)),
                float(claim) if claim is not None else None,
                int(row.get("heartbeat_renewals", 0)),
                float(elapsed) if elapsed is not None else None,
                int(rss) if rss is not None else None,
                json.dumps(json_safe(row), sort_keys=True),
                created,
            ))
        with contextlib.closing(self._connect()) as conn, conn:
            conn.executemany(
                "INSERT INTO worker_rows (worker_id, experiment, cache_key,"
                " attempt, claim_latency_s, heartbeat_renewals, elapsed_s,"
                " rss_kb, data, created_at)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                payload,
            )
        return len(payload)

    def query_worker_rows(
        self,
        experiment: Optional[str] = None,
        worker_id: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Stored worker telemetry rows, oldest first."""
        clauses, args = [], []
        for column, wanted in (("experiment", experiment),
                               ("worker_id", worker_id)):
            if wanted is not None:
                clauses.append(f"{column} = ?")
                args.append(wanted)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(
                f"SELECT * FROM worker_rows{where} ORDER BY id", args
            ).fetchall()
        out: List[Dict[str, Any]] = []
        for record in records:
            row = json.loads(record["data"])
            row.update(
                _worker_id=record["worker_id"],
                _experiment=record["experiment"],
                _cache_key=record["cache_key"],
                _created_at=record["created_at"],
            )
            out.append(row)
        return out

    def fleet_summary(self) -> List[Dict[str, Any]]:
        """Per-worker aggregates for ``/api/fleet`` on the dashboard."""
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(
                "SELECT worker_id,"
                " COUNT(*) AS points,"
                " SUM(CASE WHEN attempt > 1 THEN 1 ELSE 0 END) AS retried_points,"
                " AVG(claim_latency_s) AS avg_claim_latency_s,"
                " MAX(claim_latency_s) AS max_claim_latency_s,"
                " SUM(heartbeat_renewals) AS heartbeat_renewals,"
                " SUM(elapsed_s) AS total_elapsed_s,"
                " MAX(rss_kb) AS max_rss_kb,"
                " MAX(created_at) AS last_seen"
                " FROM worker_rows GROUP BY worker_id ORDER BY worker_id"
            ).fetchall()
        return [dict(r) for r in records]

    # ------------------------------------------------------------------
    # Aggregate views
    # ------------------------------------------------------------------

    def experiments(self) -> List[str]:
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(
                "SELECT DISTINCT experiment FROM points ORDER BY experiment"
            ).fetchall()
        return [r["experiment"] for r in records]

    def summary(self) -> List[Dict[str, Any]]:
        """Per-experiment totals for ``runner status`` and dashboards."""
        with contextlib.closing(self._connect()) as conn, conn:
            records = conn.execute(
                "SELECT experiment,"
                " COUNT(DISTINCT cache_key) AS points,"
                " COUNT(*) AS executions,"
                " SUM(num_rows) AS rows,"
                " SUM(elapsed_s) AS total_elapsed_s,"
                " COUNT(DISTINCT worker_id) AS workers,"
                " MAX(created_at) AS last_written"
                " FROM points GROUP BY experiment ORDER BY experiment"
            ).fetchall()
        return [dict(r) for r in records]

    def perf_trajectory(self, experiment: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every execution's wall time, oldest first — profiling feedstock."""
        return [
            {"experiment": r.experiment, "cache_key": r.cache_key, "seed": r.seed,
             "params": r.params, "elapsed_s": r.elapsed_s, "worker_id": r.worker_id,
             "created_at": r.created_at, "attempt": r.attempt}
            for r in self.point_records(experiment=experiment, latest_only=False)
        ]

    def fetch_specs(self, specs: Sequence[ScenarioSpec]) -> Tuple[List[Any], List[ScenarioSpec]]:
        """Merged typed rows for ``specs`` in spec order, plus missing specs.

        This is the read side of the acceptance contract: after any number
        of workers filled the store, fetching a grid in its declared order
        reproduces the exact merged row list a single-process ``run_sweep``
        of that grid returns.
        """
        merged: List[Any] = []
        missing: List[ScenarioSpec] = []
        for spec in specs:
            rows = self.get(spec)
            if rows is None:
                missing.append(spec)
            else:
                merged.extend(rows)
        return merged, missing

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Garbage-collect superseded executions and shrink the database.

        Keeps only the newest ``points`` record per cache key (the record
        every read path serves), deletes the older executions and their
        flattened rows, then ``VACUUM``\\ s the file.  This trades the perf
        trajectory of the dropped executions for disk space — run it when
        the append-only history has served its purpose.
        """
        bytes_before = os.path.getsize(self.path)
        with contextlib.closing(self._connect()) as conn:
            with conn:
                removed_rows = conn.execute(
                    "DELETE FROM point_rows WHERE point_id NOT IN"
                    " (SELECT MAX(id) FROM points GROUP BY cache_key)"
                ).rowcount
                removed = conn.execute(
                    "DELETE FROM points WHERE id NOT IN"
                    " (SELECT MAX(id) FROM points GROUP BY cache_key)"
                ).rowcount
                (kept,) = conn.execute("SELECT COUNT(*) FROM points").fetchone()
            # VACUUM must run outside the transaction the context opened.
            conn.execute("VACUUM")
        return {
            "removed_executions": removed,
            "removed_rows": removed_rows,
            "kept_points": kept,
            "bytes_before": bytes_before,
            "bytes_after": os.path.getsize(self.path),
        }
