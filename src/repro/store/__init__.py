"""Queryable, append-only result store for sweep executions.

:class:`ResultStore` is the durable sibling of the per-point pickle
:class:`~repro.experiments.sweep.SweepCache`: one SQLite file that every
worker — local ``run_sweep`` processes and distributed ``runner worker``
processes alike — commits finished grid points to, and that analysis and
dashboards query afterwards.
"""

from repro.store.result_store import PointRecord, ResultStore

__all__ = ["PointRecord", "ResultStore"]
