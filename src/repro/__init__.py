"""repro — a full reimplementation of NetFence (SIGCOMM 2010).

NetFence places the network at the first line of DoS defense: bottleneck
routers stamp *secure congestion policing feedback* into packets, access
routers validate it and police every sender with per-(sender, bottleneck)
rate limiters, and victims can withhold the feedback to suppress unwanted
traffic entirely.

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.simulator` — packet-level discrete-event simulator substrate.
* :mod:`repro.transport` — TCP (Reno-style), UDP/on-off attack sources, and
  application workloads.
* :mod:`repro.crypto`, :mod:`repro.passport` — MAC / key / source
  authentication substrates.
* :mod:`repro.core` — the NetFence architecture itself.
* :mod:`repro.baselines` — TVA+, StopIt, and per-sender fair queuing.
* :mod:`repro.analysis` — fairness metrics and the Appendix A fluid model.
* :mod:`repro.experiments` — one module per figure/table of the evaluation.
"""

from repro.core import (
    Feedback,
    FeedbackAction,
    FeedbackMode,
    NetFenceAccessRouter,
    NetFenceEndHost,
    NetFenceHeader,
    NetFenceParams,
    NetFenceRouter,
    RegularRateLimiter,
    RequestRateLimiter,
    ReturnPolicy,
)
from repro.simulator import Simulator, Topology

__version__ = "1.0.0"

__all__ = [
    "Feedback",
    "FeedbackAction",
    "FeedbackMode",
    "NetFenceAccessRouter",
    "NetFenceEndHost",
    "NetFenceHeader",
    "NetFenceParams",
    "NetFenceRouter",
    "RegularRateLimiter",
    "RequestRateLimiter",
    "ReturnPolicy",
    "Simulator",
    "Topology",
    "__version__",
]
