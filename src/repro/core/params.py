"""NetFence design parameters (Fig. 3 of the paper).

All time values are seconds, rates are bits per second, unless noted.  The
defaults are the paper's values; experiments that scale the topology down
also scale ``Ilim`` (and with it the ``2·Ilim`` hysteresis) so the number of
control intervals per simulated second stays comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetFenceParams:
    """Tunable constants of the NetFence design.

    Attributes mirror Fig. 3:

    * ``l1_interval``: level-1 request packets are limited to one per
      ``l1_interval`` seconds (1 ms), i.e. the request token rate is
      ``1 / l1_interval`` tokens per second.
    * ``control_interval`` (``Ilim``): rate-limiter control interval (2 s).
    * ``feedback_expiration`` (``w``): feedback older than this is invalid (4 s).
    * ``additive_increase`` (``Δ``): rate-limit additive increase (12 kbps).
    * ``multiplicative_decrease`` (``δ``): rate-limit multiplicative decrease (0.1).
    * ``loss_threshold`` (``p_th``): packet loss rate that triggers a
      monitoring cycle (2 %).
    * ``queue_limit_seconds``: max queue length, 0.2 s × link bandwidth.
    * ``red_minthresh_fraction`` / ``red_maxthresh_fraction`` / ``red_wq``:
      RED parameters (0.5·Qlim, 0.75·Qlim, 0.1).
    """

    # Request channel (§4.2)
    l1_interval: float = 0.001
    request_token_depth: float = 2048.0
    request_channel_fraction: float = 0.05
    # The highest useful priority level: a level-k packet costs 2^(k-1)
    # tokens, so levels beyond log2(depth)+1 could never be admitted by the
    # per-sender token limiter and senders never pick them.
    max_priority_level: int = 12

    # Rate limiting (§4.3.3, §4.3.4)
    control_interval: float = 2.0
    feedback_expiration: float = 4.0
    additive_increase_bps: float = 12_000.0
    multiplicative_decrease: float = 0.1
    initial_rate_limit_bps: float = 64_000.0
    max_caching_delay: float = 0.5
    min_cache_bytes: int = 12_000
    # The leaky bucket's burst tolerance: accrued credit is capped at one
    # MTU's worth of transmission time, so fractional credit left over from a
    # departure is preserved (sustained goodput reaches the rate limit) while
    # idle periods still cannot fund bursts (§4.3.3 — leaky, not token).
    leaky_bucket_depth_bytes: int = 1500

    # Attack detection and monitoring cycles (§4.3.1)
    loss_threshold: float = 0.02
    utilization_threshold: float = 0.95
    detection_interval: float = 1.0
    loss_ewma_weight: float = 0.1
    monitor_cycle_min_duration: float = 3 * 3600.0  # Tb: "a few hours"
    rate_limiter_idle_timeout: float = 3 * 3600.0   # Ta

    # Queues (Fig. 3)
    queue_limit_seconds: float = 0.2
    red_minthresh_fraction: float = 0.5
    red_maxthresh_fraction: float = 0.75
    red_wq: float = 0.1
    # Fraction of the regular channel's byte limit given to the legacy
    # channel's drop-tail queue (§5: legacy traffic is served at the lowest
    # priority, so it needs only a shallow buffer).
    legacy_queue_fraction: float = 0.25

    # Hysteresis: a congested link keeps stamping L↓ for this many control
    # intervals after congestion abates (§4.3.4 shows 2·Ilim is the minimum
    # for robustness; the ablation benchmark varies this).
    hysteresis_intervals: float = 2.0

    @property
    def request_token_rate(self) -> float:
        """Request tokens granted per second (one level-1 packet per ``l1``)."""
        return 1.0 / self.l1_interval

    @property
    def hysteresis_duration(self) -> float:
        """How long L↓ stamping persists after congestion abates."""
        return self.hysteresis_intervals * self.control_interval

    def scaled(self, time_factor: float) -> "NetFenceParams":
        """Return a copy with all time constants multiplied by ``time_factor``.

        Used by the experiments to shrink simulated time while keeping the
        same number of AIMD control intervals (see DESIGN.md §2).
        """
        if time_factor <= 0:
            raise ValueError("time_factor must be positive")
        return replace(
            self,
            control_interval=self.control_interval * time_factor,
            feedback_expiration=self.feedback_expiration * time_factor,
            detection_interval=max(self.detection_interval * time_factor, 0.05),
            # The leaky-bucket caching delay is deliberately NOT scaled: it is
            # what lets TCP's bursts survive the rate limiter (§4.3.3), and
            # shrinking it starves TCP senders long before it changes any
            # AIMD-level behaviour.
        )

    def with_overrides(self, **kwargs) -> "NetFenceParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


#: The paper's default parameters (Fig. 3).
DEFAULT_PARAMS = NetFenceParams()
