"""The NetFence bottleneck router: channels, attack detection, feedback stamping.

A NetFence router keeps three channels per output link (Fig. 2): the request
channel (strict-priority by level-k, capped at 5 % of the link capacity), the
regular channel (a RED queue sized to 0.2 s of the link), and a low-priority
legacy channel.

Per output link, the router runs the attack-detection loop of §4.3.1: it
samples the regular channel's loss rate (and the link utilization) once per
detection interval, starts a *monitoring cycle* when the loss-rate EWMA
exceeds ``p_th`` (or utilization exceeds the high-load threshold), and ends
the cycle only after the link has been attack-free for ``Tb``.

While a link is in the ``mon`` state the router rewrites the congestion
policing feedback of every request/regular packet it forwards onto the link,
following the three ordered rules of §4.3.2, with the ``2·Ilim`` stamping
hysteresis of §4.3.4.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.seeding import derive_seed

from repro.core.domain import NetFenceDomain
from repro.core.feedback import (
    BottleneckStamper,
    Feedback,
    FeedbackAction,
    multi_append,
)
from repro.core.header import HEADER_KEY, NetFenceHeader
from repro.core.params import NetFenceParams
from repro.obs.metrics import get_registry
from repro.obs.trace import ReasonCode, active_tracer
from repro.runtime.clock import Clock
from repro.simulator.engine import PeriodicTimer
from repro.simulator.fairqueue import DRRQueue, per_source_as_key
from repro.simulator.link import Link
from repro.simulator.node import Router
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import (
    DropTailQueue,
    LevelPriorityQueue,
    PacketQueue,
    REDQueue,
)
from repro.simulator.trace import EWMA


class NetFenceChannelQueue(PacketQueue):
    """The three-channel output queue of a NetFence router (Fig. 2).

    Scheduling order: request packets (within their 5 % bandwidth cap,
    enforced by a byte budget that refills at ``request_fraction × capacity``),
    then regular packets, then legacy packets.  If only request packets are
    waiting and the budget is exhausted, :meth:`time_until_ready` tells the
    link when to try again.

    When ``as_fairness`` is enabled the regular channel separates traffic per
    source AS with a DRR queue — the §4.5 fallback that localizes the damage
    of compromised access routers.
    """

    def __init__(
        self,
        clock: Clock,
        capacity_bps: float,
        params: Optional[NetFenceParams] = None,
        as_fairness: bool = False,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.clock = clock
        self.params = params or NetFenceParams()
        self.capacity_bps = capacity_bps
        qlim_bytes = max(int(self.params.queue_limit_seconds * capacity_bps / 8), 3_000)
        self.regular_queue: PacketQueue
        if as_fairness:
            self.regular_queue = DRRQueue(
                key_fn=per_source_as_key,
                per_flow_capacity_bytes=max(qlim_bytes // 8, 4_500),
            )
        else:
            self.regular_queue = REDQueue(
                capacity_bytes=qlim_bytes,
                minthresh_fraction=self.params.red_minthresh_fraction,
                maxthresh_fraction=self.params.red_maxthresh_fraction,
                wq=self.params.red_wq,
                seed=seed,
            )
        request_capacity = max(int(qlim_bytes * self.params.request_channel_fraction), 4 * 1_500)
        self.request_queue = LevelPriorityQueue(
            capacity_bytes=request_capacity,
            max_level=self.params.max_priority_level,
        )
        legacy_capacity = max(int(qlim_bytes * self.params.legacy_queue_fraction), 3_000)
        self.legacy_queue = DropTailQueue(capacity_bytes=legacy_capacity)

        # Request-channel bandwidth budget (bytes); refills continuously.
        self._request_budget = 0.0
        self._request_budget_max = max(request_capacity, 1_500)
        self._budget_updated = clock.now

        self.on_regular_drop: Optional[Callable[[Packet], None]] = None
        for queue in (self.request_queue, self.regular_queue, self.legacy_queue):
            queue.drop_callback = self._inner_drop

    # -- drop bubbling -----------------------------------------------------------
    def _inner_drop(self, packet: Packet, reason: str = "tail") -> None:
        self.stats.record_drop(packet, reason)
        if packet.is_regular and self.on_regular_drop is not None:
            self.on_regular_drop(packet)
        if self.drop_callback is not None:
            self.drop_callback(packet, reason)

    # -- request budget -----------------------------------------------------------
    def _refill_budget(self) -> None:
        now = self.clock.now
        elapsed = now - self._budget_updated
        if elapsed > 0:
            rate = self.params.request_channel_fraction * self.capacity_bps / 8.0
            self._request_budget = min(
                self._request_budget_max, self._request_budget + elapsed * rate
            )
            self._budget_updated = now

    # -- PacketQueue interface -------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        ptype = packet.ptype
        if ptype is PacketType.REQUEST:
            queue: PacketQueue = self.request_queue
        elif ptype is PacketType.REGULAR:
            queue = self.regular_queue
        else:
            queue = self.legacy_queue
        accepted = queue.enqueue(packet)
        if accepted:
            self.stats.record_enqueue(packet)
        return accepted

    def dequeue(self) -> Optional[Packet]:
        self._refill_budget()
        if len(self.request_queue):
            head_cost = 92.0  # request packets are small and near-constant size
            if self._request_budget >= head_cost:
                packet = self.request_queue.dequeue()
                if packet is not None:
                    self._request_budget -= packet.size_bytes
                    self.stats.record_dequeue(packet)
                    return packet
        packet = self.regular_queue.dequeue()
        if packet is None:
            packet = self.legacy_queue.dequeue()
        if packet is None and len(self.request_queue):
            # Only capped request traffic remains; the link will poke us later.
            return None
        if packet is not None:
            self.stats.record_dequeue(packet)
        return packet

    def time_until_ready(self) -> Optional[float]:
        """When the request budget will next allow a transmission."""
        if not len(self.request_queue):
            return None
        self._refill_budget()
        deficit = 92.0 - self._request_budget
        if deficit <= 0:
            return 1e-6
        rate = self.params.request_channel_fraction * self.capacity_bps / 8.0
        return deficit / rate

    def __len__(self) -> int:
        return len(self.request_queue) + len(self.regular_queue) + len(self.legacy_queue)

    @property
    def byte_length(self) -> int:
        return (
            self.request_queue.byte_length
            + self.regular_queue.byte_length
            + self.legacy_queue.byte_length
        )

    @property
    def regular_congested(self) -> bool:
        """Whether the regular channel currently signals congestion."""
        if isinstance(self.regular_queue, REDQueue):
            return self.regular_queue.congested
        # For DRR (per-AS fairness) fall back to a half-full heuristic.
        return self.regular_queue.byte_length > 0


def netfence_queue_factory(
    clock: Clock,
    params: Optional[NetFenceParams] = None,
    as_fairness: bool = False,
    seed: Optional[int] = None,
) -> Callable[[float], NetFenceChannelQueue]:
    """Return a queue factory for :class:`repro.simulator.topology.Topology`.

    When ``seed`` is given, each queue the factory builds receives its own
    seed derived from ``(seed, creation index)``, so every RED instance draws
    an independent — yet scenario-reproducible — random stream.
    """
    counter = itertools.count()

    def factory(capacity_bps: float) -> NetFenceChannelQueue:
        queue_seed = None if seed is None else derive_seed(seed, "bneck-queue", next(counter))
        return NetFenceChannelQueue(clock, capacity_bps, params=params,
                                    as_fairness=as_fairness, seed=queue_seed)

    return factory


@dataclass
class LinkMonitorState:
    """Per-output-link attack detection and monitoring-cycle state."""

    link: Link
    in_mon: bool = False
    mon_since: float = 0.0
    last_attack_time: float = 0.0
    stamping_until: float = -math.inf
    loss_ewma: EWMA = field(default_factory=lambda: EWMA(weight=0.1, initial=0.0))
    util_ewma: EWMA = field(default_factory=lambda: EWMA(weight=0.1, initial=0.0))
    monitoring_cycles_started: int = 0
    decr_stamped: int = 0
    last_arrivals: int = 0
    last_drops: int = 0
    last_bytes: int = 0

    def is_overloaded(self, now: float) -> bool:
        """True while the L↓ stamping hysteresis is active (§4.3.4)."""
        return now <= self.stamping_until


class NetFenceRouter(Router):
    """A NetFence-enabled router (bottleneck or transit).

    Args:
        domain: the shared NetFence deployment state.
        monitored_links: names of output links to run attack detection on.
            ``None`` (default) monitors every output link whose queue is a
            :class:`NetFenceChannelQueue`.
        force_mon: immediately put monitored links into the ``mon`` state
            (used by micro-benchmarks and unit tests).
    """

    def __init__(
        self,
        clock: Clock,
        name: str,
        as_name: Optional[str] = None,
        domain: Optional[NetFenceDomain] = None,
        monitored_links: Optional[list[str]] = None,
        force_mon: bool = False,
    ) -> None:
        super().__init__(clock, name, as_name=as_name)
        self.domain = domain or NetFenceDomain()
        self.params = self.domain.params
        self.stamper = BottleneckStamper(self.domain.key_registry, as_name or name)
        self.link_states: Dict[str, LinkMonitorState] = {}
        #: Number of monitored links currently in the ``mon`` state.  While
        #: zero, :meth:`before_enqueue` takes a single-test fast path — no
        #: state lookup, no header fetch — which is the common case for
        #: transit routers and unattacked links.
        self._mon_count = 0
        self._monitored_names = monitored_links
        self._force_mon = force_mon
        self.demoted_legacy = 0
        self._detect_timer = PeriodicTimer(
            clock, self.params.detection_interval, self._detect_all
        )
        self._detect_timer.start()
        # Telemetry: cold-path tracer captured at construction; metrics are
        # pull-based watches, registered only under an enabled registry.
        self._tracer = active_tracer()
        self._trace_point = f"router:{name}"
        registry = get_registry()
        if registry.enabled:
            label = {"router": name}
            registry.watch("netfence_mon_links", lambda: self._mon_count,
                           help="monitored links currently in the mon state",
                           labels=label)
            registry.watch("netfence_demoted_legacy_total",
                           lambda: self.demoted_legacy,
                           help="headerless transit packets demoted to legacy",
                           labels=label)
            registry.watch(
                "netfence_decr_stamped_total",
                lambda: sum(s.decr_stamped for s in self.link_states.values()),
                help="L-down feedback stamps across monitored links",
                labels=label)

    # -- wiring -----------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        super().attach_link(link)
        self.domain.register_link(link.name, self.as_name or self.name)
        monitor = (
            self._monitored_names is None
            and isinstance(link.queue, NetFenceChannelQueue)
        ) or (self._monitored_names is not None and link.name in self._monitored_names)
        if monitor:
            state = LinkMonitorState(link=link)
            self.link_states[link.name] = state
            if isinstance(link.queue, NetFenceChannelQueue):
                link.queue.on_regular_drop = lambda pkt, s=state: self._on_regular_drop(s)
            if self._force_mon:
                self.start_monitoring(link.name)

    # -- monitoring cycle --------------------------------------------------------
    def start_monitoring(self, link_name: str) -> None:
        """Begin a monitoring cycle on a link (normally done by detection)."""
        state = self.link_states[link_name]
        if not state.in_mon:
            state.in_mon = True
            state.mon_since = self.clock.now
            state.monitoring_cycles_started += 1
            self._mon_count += 1
        state.last_attack_time = self.clock.now

    def stop_monitoring(self, link_name: str) -> None:
        state = self.link_states[link_name]
        if state.in_mon:
            self._mon_count -= 1
        state.in_mon = False
        state.stamping_until = -math.inf

    def mark_overloaded(self, link_name: str, now: Optional[float] = None) -> None:
        """Extend the L↓ stamping hysteresis for a link."""
        state = self.link_states[link_name]
        now = self.clock.now if now is None else now
        state.stamping_until = max(
            state.stamping_until, now + self.params.hysteresis_duration
        )

    def _on_regular_drop(self, state: LinkMonitorState) -> None:
        # A regular-packet drop is an immediate congestion signal while the
        # link is in the mon state; outside mon it only feeds the loss EWMA
        # through the periodic detection pass.
        if state.in_mon:
            state.last_attack_time = self.clock.now
            self.mark_overloaded(state.link.name)

    def _detect_all(self) -> None:
        for state in self.link_states.values():
            self._detect(state)

    def _detect(self, state: LinkMonitorState) -> None:
        link = state.link
        # Attack detection is driven by the loss rate of *regular* packets
        # (§4.3.1, Fig. 19); request-channel drops are expected during request
        # floods and must not start a monitoring cycle by themselves.
        if isinstance(link.queue, NetFenceChannelQueue):
            stats = link.queue.regular_queue.stats
        else:
            stats = link.queue.stats
        arrivals = stats.arrivals - state.last_arrivals
        drops = stats.dropped - state.last_drops
        delivered = link.bytes_delivered - state.last_bytes
        state.last_arrivals = stats.arrivals
        state.last_drops = stats.dropped
        state.last_bytes = link.bytes_delivered

        interval_loss = drops / arrivals if arrivals else 0.0
        interval_util = delivered * 8.0 / (link.capacity_bps * self.params.detection_interval)
        loss_avg = state.loss_ewma.update(interval_loss)
        util_avg = state.util_ewma.update(min(interval_util, 1.0))

        now = self.clock.now
        attack_now = (
            interval_loss > self.params.loss_threshold
            or loss_avg > self.params.loss_threshold
            or util_avg > self.params.utilization_threshold
        )
        congested_now = drops > 0 or (
            isinstance(link.queue, NetFenceChannelQueue) and link.queue.regular_congested
        )

        if not state.in_mon:
            if attack_now:
                self.start_monitoring(link.name)
                if congested_now:
                    self.mark_overloaded(link.name)
            return

        if attack_now:
            state.last_attack_time = now
        if congested_now:
            self.mark_overloaded(link.name)
        if now - state.last_attack_time > self.params.monitor_cycle_min_duration:
            self.stop_monitoring(link.name)

    # -- partial deployment (§5) ---------------------------------------------------
    def on_transit(self, packet: Packet, from_link: Optional[Link]) -> bool:
        """Demote transit packets that carry no NetFence header.

        Under partial deployment, traffic from legacy ASes reaches NetFence
        routers unstamped; §5 forwards it on the low-priority legacy channel
        rather than letting it compete with policed regular traffic.  In a
        full deployment every packet from a NetFence end host carries a
        header, so this never fires.
        """
        if packet.ptype is not PacketType.LEGACY and HEADER_KEY not in packet.headers:
            packet.ptype = PacketType.LEGACY
            self.demoted_legacy += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point,
                                  ReasonCode.DEMOTED_LEGACY, packet,
                                  ts=self.clock.now, detail="no NetFence header")
        return True

    # -- feedback stamping (§4.3.2) ------------------------------------------------
    def before_enqueue(self, packet: Packet, out_link: Link) -> bool:
        if not self._mon_count:
            # Fast path: no link is in a monitoring cycle, so no stamping can
            # apply — skip the per-packet state/header lookups entirely.
            return True
        state = self.link_states.get(out_link.name)
        if state is None or not state.in_mon or packet.ptype is PacketType.LEGACY:
            return True
        header = packet.headers.get(HEADER_KEY)
        if header is None or header.feedback is None:
            return True
        if self.domain.feedback_mode == "multi":
            self._stamp_multi(packet, header, out_link, state)
        else:
            self._stamp_single(packet, header, out_link, state)
        return True

    def _stamp_single(
        self,
        packet: Packet,
        header: NetFenceHeader,
        out_link: Link,
        state: LinkMonitorState,
    ) -> None:
        feedback = header.feedback
        overloaded = state.is_overloaded(self.clock.now)
        if feedback.is_nop:
            # Rule 1: nop feedback is always replaced with L↓ so the access
            # router instantiates a rate limiter for this link.
            header.feedback = self.stamper.stamp_decr(
                feedback, packet.src, packet.dst, packet.src_as or "", out_link.name
            )
            state.decr_stamped += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.STAMPED_DECR,
                                  packet, ts=self.clock.now,
                                  detail=f"rule 1 (nop) on {out_link.name}")
        elif feedback.is_decr:
            # Rule 2: an upstream bottleneck already stamped L'↓ — leave it.
            return
        elif overloaded:
            # Rule 3: the link is overloaded; overwrite L↑ with our L↓.
            header.feedback = self.stamper.stamp_decr(
                feedback, packet.src, packet.dst, packet.src_as or "", out_link.name
            )
            state.decr_stamped += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.STAMPED_DECR,
                                  packet, ts=self.clock.now,
                                  detail=f"rule 3 (overloaded) on {out_link.name}")

    def _stamp_multi(
        self,
        packet: Packet,
        header: NetFenceHeader,
        out_link: Link,
        state: LinkMonitorState,
    ) -> None:
        feedback = header.feedback
        action = (
            FeedbackAction.DECR
            if state.is_overloaded(self.clock.now)
            else FeedbackAction.INCR
        )
        header.feedback = multi_append(
            self.domain.key_registry,
            self.as_name or self.name,
            packet.src_as or "",
            feedback,
            packet.src,
            packet.dst,
            out_link.name,
            action,
        )
        if action is FeedbackAction.DECR:
            state.decr_stamped += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.STAMPED_DECR,
                                  packet, ts=self.clock.now,
                                  detail=f"multi append on {out_link.name}")

    # -- introspection ------------------------------------------------------------
    def link_state(self, link_name: str) -> LinkMonitorState:
        return self.link_states[link_name]

    def in_monitoring_cycle(self, link_name: str) -> bool:
        state = self.link_states.get(link_name)
        return bool(state and state.in_mon)
