"""Congestion policing feedback: ``nop``, ``L↑``, and ``L↓`` (§4.1, §4.4).

A feedback value has five key fields (Fig. 5): ``mode``, ``link``, ``action``,
``ts``, and ``MAC``; ``mon`` feedback additionally carries ``token_nop``.
Three MAC constructions protect it (Eqs. 1–3):

* ``token_nop = MAC_Ka(src, dst, ts, link_null, nop)``                  (1)
* ``token_L↑  = MAC_Ka(src, dst, ts, L, mon, incr)``                    (2)
* ``token_L↓  = MAC_Kai(src, dst, ts, L, mon, decr, token_nop)``        (3)

``Ka`` is the access router's time-varying secret; ``Kai`` is the pairwise
secret between the bottleneck link's AS and the sender's AS.  The bottleneck
router consumes ``token_nop`` when it computes (3) and erases it, so a
malicious downstream router cannot recompute or overwrite the feedback.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.crypto.keys import AccessRouterSecret, ASKeyRegistry
from repro.crypto.mac import compute_mac, mac_equal

#: The null link identifier used in nop feedback (Eq. 1).
LINK_NULL = "\x00null"


class FeedbackMode(Enum):
    NOP = "nop"
    MON = "mon"


class FeedbackAction(Enum):
    INCR = "incr"
    DECR = "decr"


@dataclass(slots=True)
class Feedback:
    """One congestion policing feedback value.

    ``chain`` is only used by the Appendix B.1 multi-bottleneck variant: it
    holds the ordered ``(link, action)`` pairs stamped by every on-path
    bottleneck, all protected by the single ``mac`` token (Eqs. 4–5).  For
    chain feedback, ``action`` summarizes the chain (``decr`` if any link
    stamped ``decr``) so the end-host presentation logic can treat it like
    ordinary feedback.

    **Treat instances as immutable.**  Stampers and routers always *replace*
    a header's feedback with a freshly constructed value, never mutate one
    in place; that contract lets the hot paths (end-host bookkeeping, packet
    headers) alias a single instance instead of copying it per packet.  Use
    :meth:`copy` (or ``dataclasses.replace``) when a derived value is needed.
    """

    mode: FeedbackMode
    link: Optional[str]
    action: FeedbackAction
    ts: float
    mac: bytes = b""
    token_nop: Optional[bytes] = None
    chain: Optional[tuple] = None

    # -- predicates ---------------------------------------------------------
    @property
    def is_nop(self) -> bool:
        return self.mode is FeedbackMode.NOP

    @property
    def is_mon(self) -> bool:
        return self.mode is FeedbackMode.MON

    @property
    def is_incr(self) -> bool:
        return self.is_mon and self.action is FeedbackAction.INCR

    @property
    def is_decr(self) -> bool:
        return self.is_mon and self.action is FeedbackAction.DECR

    def is_fresh(self, now: float, expiration: float) -> bool:
        """Freshness check: |now - ts| <= w (§4.4)."""
        return abs(now - self.ts) <= expiration

    def copy(self) -> "Feedback":
        # Direct construction: senders copy feedback on every outbound packet,
        # and ``dataclasses.replace`` re-inspects fields on each call.
        return Feedback(
            self.mode, self.link, self.action, self.ts,
            self.mac, self.token_nop, self.chain,
        )

    def describe(self) -> str:
        """Human-readable form used in logs and example output."""
        if self.is_nop:
            return "nop"
        arrow = "↑" if self.is_incr else "↓"
        return f"{self.link}{arrow}"


class FeedbackStamper:
    """Stamps and validates feedback on behalf of an *access* router.

    The access router knows its own secret ``Ka`` and, through the AS key
    registry, the pairwise key shared with any bottleneck AS, so it can both
    create nop / ``L↑`` feedback and validate all three kinds (§4.4).
    """

    def __init__(
        self,
        secret: AccessRouterSecret,
        registry: ASKeyRegistry,
        local_as: str,
    ) -> None:
        self.secret = secret
        self.registry = registry
        self.local_as = local_as
        # MAC-verification memo.  A sender presents the *same* feedback value
        # on every packet until new feedback arrives (once per control
        # interval at most), so the verification outcome — a pure function of
        # the feedback's fields, the addressing, and the epoch keys derived
        # from its timestamp — is recomputed thousands of times.  Freshness
        # (the only ``now``-dependent part) is checked outside the memo.
        # The memo is sharded by the feedback timestamp's key epoch: once the
        # validating clock enters a new epoch, shards older than the previous
        # epoch can never be consulted again (their feedback is stale by the
        # freshness check) and are dropped wholesale.  A wall-clock policer
        # crosses an epoch every ``rotation_interval`` seconds, so without
        # eviction this memo would grow for the life of the process.
        self._verify_cache: dict = {}
        self._memo_epoch = 0

    # -- stamping ------------------------------------------------------------
    def token_nop(self, src: str, dst: str, ts: float, key: Optional[bytes] = None) -> bytes:
        key = key if key is not None else self.secret.current(ts)
        return compute_mac(key, src, dst, ts, LINK_NULL, FeedbackMode.NOP.value)

    def stamp_nop(self, src: str, dst: str, now: float) -> Feedback:
        """Create nop feedback (Eq. 1)."""
        return Feedback(
            mode=FeedbackMode.NOP,
            link=None,
            action=FeedbackAction.INCR,
            ts=now,
            mac=self.token_nop(src, dst, now),
        )

    def stamp_incr(self, src: str, dst: str, link: str, now: float) -> Feedback:
        """Create ``L↑`` feedback (Eq. 2), carrying a fresh ``token_nop``."""
        key = self.secret.current(now)
        mac = compute_mac(
            key, src, dst, now, link, FeedbackMode.MON.value, FeedbackAction.INCR.value
        )
        return Feedback(
            mode=FeedbackMode.MON,
            link=link,
            action=FeedbackAction.INCR,
            ts=now,
            mac=mac,
            token_nop=self.token_nop(src, dst, now, key=key),
        )

    # -- validation -----------------------------------------------------------
    def validate(self, feedback: Feedback, src: str, dst: str, now: float,
                 expiration: float, link_as: Optional[str] = None) -> bool:
        """Validate returned feedback presented by a sender (§4.4).

        ``link_as`` identifies the AS of the bottleneck link for ``L↓``
        feedback; the paper obtains it with an IP-to-AS mapping of the link
        identifier.  The caller (the access router) provides it from its
        link-to-AS map.
        """
        if not feedback.is_fresh(now, expiration):
            return False
        if not feedback.mac:
            return False
        # ``ts`` determines the candidate keys (epoch-derived), so the memo
        # key covers every input of the MAC verification below.
        now_epoch = self.secret.epoch_of(now)
        if now_epoch > self._memo_epoch:
            self._memo_epoch = now_epoch
            floor = now_epoch - 1
            for stale in [e for e in self._verify_cache if e < floor]:
                del self._verify_cache[stale]
        memo = self._verify_cache.get(now_epoch)
        if memo is None:
            memo = self._verify_cache[now_epoch] = {}
        memo_key = (
            feedback.mac, feedback.mode, feedback.link, feedback.action,
            feedback.ts, src, dst, link_as,
        )
        verdict = memo.get(memo_key)
        if verdict is None:
            verdict = False
            for key in self.secret.candidates(feedback.ts):
                if self._validate_with_key(feedback, src, dst, key, link_as):
                    verdict = True
                    break
            if len(memo) >= 8192:
                memo.clear()
            memo[memo_key] = verdict
        return verdict

    @property
    def memo_size(self) -> int:
        """Memoized verification entries across epochs, for telemetry gauges."""
        return sum(len(memo) for memo in self._verify_cache.values())

    def _validate_with_key(
        self,
        feedback: Feedback,
        src: str,
        dst: str,
        key: bytes,
        link_as: Optional[str],
    ) -> bool:
        if feedback.is_nop:
            expected = compute_mac(
                key, src, dst, feedback.ts, LINK_NULL, FeedbackMode.NOP.value
            )
            return mac_equal(feedback.mac, expected)
        if feedback.link is None:
            return False
        if feedback.is_incr:
            expected = compute_mac(
                key, src, dst, feedback.ts, feedback.link,
                FeedbackMode.MON.value, FeedbackAction.INCR.value,
            )
            return mac_equal(feedback.mac, expected)
        # L↓: re-compute token_nop with Ka, then the MAC with Kai (Eq. 3).
        if link_as is None:
            return False
        token_nop = compute_mac(
            key, src, dst, feedback.ts, LINK_NULL, FeedbackMode.NOP.value
        )
        kai = self.registry.key_for(self.local_as, link_as)
        expected = compute_mac(
            kai, src, dst, feedback.ts, feedback.link,
            FeedbackMode.MON.value, FeedbackAction.DECR.value, token_nop,
        )
        return mac_equal(feedback.mac, expected)


class BottleneckStamper:
    """Stamps ``L↓`` feedback on behalf of a bottleneck router (Eq. 3).

    The bottleneck router knows the pairwise key its AS shares with the
    sender's AS (via Passport / the AS key registry).  It consumes the
    ``token_nop`` carried in the packet's current feedback and erases it.
    """

    def __init__(self, registry: ASKeyRegistry, local_as: str) -> None:
        self.registry = registry
        self.local_as = local_as

    def stamp_decr(
        self,
        current: Feedback,
        src: str,
        dst: str,
        src_as: str,
        link: str,
    ) -> Feedback:
        """Overwrite ``current`` with ``L↓`` feedback for ``link``.

        ``current`` must carry a ``token_nop`` (nop feedback's MAC *is* the
        token; ``L↑`` feedback carries it in a dedicated field).  The
        timestamp is preserved so the access router can recompute the token.
        """
        token_nop = current.token_nop if current.is_mon else current.mac
        kai = self.registry.key_for(self.local_as, src_as)
        mac = compute_mac(
            kai, src, dst, current.ts, link,
            FeedbackMode.MON.value, FeedbackAction.DECR.value, token_nop,
        )
        return Feedback(
            mode=FeedbackMode.MON,
            link=link,
            action=FeedbackAction.DECR,
            ts=current.ts,
            mac=mac,
            token_nop=None,  # erased to stop downstream tampering (§4.4)
        )


# ---------------------------------------------------------------------------
# Appendix B.1: multi-bottleneck feedback in one packet (Eqs. 4–5)
# ---------------------------------------------------------------------------

def multi_stamp_nop(secret: AccessRouterSecret, src: str, dst: str, now: float) -> Feedback:
    """Access-router stamp for the multi-feedback header: Eq. (4).

    ``token_nop = MAC_Ka(src, dst, ts)``; the chain starts empty.
    """
    key = secret.current(now)
    token = compute_mac(key, src, dst, now)
    return Feedback(
        mode=FeedbackMode.NOP,
        link=None,
        action=FeedbackAction.INCR,
        ts=now,
        mac=token,
        chain=(),
    )


def multi_append(
    registry: ASKeyRegistry,
    local_as: str,
    src_as: str,
    feedback: Feedback,
    src: str,
    dst: str,
    link: str,
    action: FeedbackAction,
) -> Feedback:
    """Bottleneck-router stamp for the multi-feedback header: Eq. (5).

    Appends ``(link, action)`` to the chain and folds them into the token:
    ``token = MAC_Kai(src, dst, ts, L, action, token)``.
    """
    kai = registry.key_for(local_as, src_as)
    token = compute_mac(kai, src, dst, feedback.ts, link, action.value, feedback.mac)
    chain = tuple(feedback.chain or ()) + ((link, action.value),)
    summary = (
        FeedbackAction.DECR
        if any(act == FeedbackAction.DECR.value for _, act in chain)
        else FeedbackAction.INCR
    )
    return Feedback(
        mode=FeedbackMode.MON,
        link=chain[-1][0],
        action=summary,
        ts=feedback.ts,
        mac=token,
        chain=chain,
    )


def multi_validate(
    secret: AccessRouterSecret,
    registry: ASKeyRegistry,
    local_as: str,
    feedback: Feedback,
    src: str,
    dst: str,
    now: float,
    expiration: float,
    link_as_resolver,
) -> bool:
    """Access-router validation of a multi-feedback header (Appendix B.1).

    Recomputes Eq. (4) and then folds Eq. (5) once per chain entry, resolving
    each link's AS through ``link_as_resolver`` (the IP-to-AS map).
    """
    if not feedback.is_fresh(now, expiration):
        return False
    chain = tuple(feedback.chain or ())
    for key in secret.candidates(feedback.ts):
        token = compute_mac(key, src, dst, feedback.ts)
        valid = True
        for link, action in chain:
            link_as = link_as_resolver(link)
            if link_as is None:
                valid = False
                break
            kai = registry.key_for(local_as, link_as)
            token = compute_mac(kai, src, dst, feedback.ts, link, action, token)
        if valid and mac_equal(token, feedback.mac):
            return True
    return False
