"""The NetFence access router (§4.2, §4.3.3, Fig. 18).

The access router sits at the trust boundary between end systems and the
network.  For every packet arriving from one of its own hosts it:

1. treats packets without a NetFence header as legacy traffic (lowest
   priority, never policed);
2. polices **request packets** with the per-sender priority token scheme of
   §4.2 and stamps fresh ``nop`` feedback into them;
3. validates the congestion policing feedback presented in **regular
   packets**; packets with missing, stale, or forged feedback are demoted to
   the request channel (§4.4);
4. forwards packets carrying valid ``nop`` feedback unpoliced (refreshing the
   timestamp), and sends packets carrying ``mon`` feedback through the
   per-(sender, bottleneck) rate limiter(s) chosen by the installed
   :class:`~repro.core.multibottleneck.PolicingPolicy`;
5. resets the forward feedback before the packet leaves (nop stays nop with a
   fresh timestamp; ``L↓``/``L↑`` becomes ``L↑``), so the bottleneck router
   only has to touch packets when it is actually overloaded;
6. once per control interval, applies the robust AIMD adjustment to every
   rate limiter and tears down limiters that have been idle for ``Ta``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.core.domain import NetFenceDomain
from repro.core.feedback import FeedbackStamper
from repro.core.header import HEADER_KEY, NetFenceHeader, get_netfence_header
from repro.core.multibottleneck import PolicingPolicy, SingleBottleneckPolicy
from repro.core.ratelimiter import RegularRateLimiter, RequestRateLimiter
from repro.crypto.keys import AccessRouterSecret
from repro.obs.metrics import get_registry
from repro.obs.trace import ReasonCode, active_tracer
from repro.runtime.clock import Clock
from repro.simulator.engine import PeriodicTimer
from repro.simulator.link import Link
from repro.simulator.node import Router
from repro.simulator.packet import Packet, PacketType


class NetFenceAccessRouter(Router):
    """Access router: feedback validation and per-sender traffic policing."""

    def __init__(
        self,
        clock: Clock,
        name: str,
        as_name: Optional[str] = None,
        domain: Optional[NetFenceDomain] = None,
        policy: Optional[PolicingPolicy] = None,
        policy_factory: Optional[Callable[[], PolicingPolicy]] = None,
        secret: Optional[AccessRouterSecret] = None,
    ) -> None:
        super().__init__(clock, name, as_name=as_name)
        self.domain = domain or NetFenceDomain()
        self.params = self.domain.params
        self.local_as = as_name or name
        self.secret = secret or AccessRouterSecret(name)
        self.stamper = FeedbackStamper(self.secret, self.domain.key_registry, self.local_as)
        if policy is None:
            policy = policy_factory() if policy_factory is not None else SingleBottleneckPolicy()
        self.policy = policy
        self.policy.attach(self)

        self.request_limiters: Dict[str, RequestRateLimiter] = {}
        self.rate_limiters: Dict[Tuple[str, str], RegularRateLimiter] = {}

        self.counters: Dict[str, int] = {
            "request_admitted": 0,
            "request_dropped": 0,
            "regular_nop": 0,
            "regular_invalid": 0,
            "regular_passed": 0,
            "regular_cached": 0,
            "regular_dropped": 0,
            "legacy": 0,
        }

        self._adjust_timer = PeriodicTimer(
            clock, self.params.control_interval, self._adjust_all
        )
        self._adjust_timer.start()

        # Telemetry: the tracer is captured once at construction (the
        # disabled cost is one ``is not None`` test at the cold decision
        # branches); metrics bridge the existing counters through pull-based
        # watches, registered only when the active registry is enabled.
        self._tracer = active_tracer()
        self._trace_point = f"access:{name}"
        registry = get_registry()
        if registry.enabled:
            label = {"router": name}
            for event in self.counters:
                registry.watch(
                    "netfence_access_events_total",
                    lambda key=event: self.counters[key],
                    help="access-router policing decisions by outcome",
                    labels={**label, "event": event})
            registry.watch("netfence_rate_limiters",
                           lambda: len(self.rate_limiters),
                           help="live (sender, bottleneck) rate limiters",
                           labels=label)
            registry.watch("netfence_request_limiters",
                           lambda: len(self.request_limiters),
                           help="live per-sender request limiters",
                           labels=label)
            registry.watch("netfence_secret_epoch_cache",
                           lambda: self.secret.cache_size,
                           help="cached secret-key epochs", labels=label)
            registry.watch("netfence_stamper_memo_cache",
                           lambda: self.stamper.memo_size,
                           help="memoized feedback verifications", labels=label)

    # -- limiter management -----------------------------------------------------
    def get_rate_limiter(self, sender: str, link: str) -> RegularRateLimiter:
        """Find or create the rate limiter for a (sender, bottleneck link) pair."""
        key = (sender, link)
        limiter = self.rate_limiters.get(key)
        if limiter is None:
            limiter = RegularRateLimiter(
                self.clock,
                sender,
                link,
                self.params,
                release_fn=self._on_limiter_release,
            )
            self.rate_limiters[key] = limiter
        return limiter

    def _on_limiter_release(self, packet: Packet) -> None:
        """A rate limiter released a cached packet: resume policing, then forward."""
        verdict = self.policy.continue_chain(packet)
        if verdict is True:
            self.counters["regular_cached"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.RELEASED,
                                  packet, ts=self.clock.now)
            self.forward(packet)
        elif verdict is False:
            self.counters["regular_dropped"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.DROP_POLICED,
                                  packet, ts=self.clock.now,
                                  detail="dropped after release")
        # verdict None: the packet was cached again by a later limiter.

    def _adjust_all(self) -> None:
        """Per-control-interval AIMD pass plus idle-limiter garbage collection."""
        expired = []
        for key, limiter in self.rate_limiters.items():
            self.policy.adjust(limiter)
            if limiter.idle_for() > self.params.rate_limiter_idle_timeout:
                expired.append(key)
        for key in expired:
            limiter = self.rate_limiters.pop(key)
            limiter.close()

    # -- policing hooks ----------------------------------------------------------
    def admit_from_host(self, packet: Packet, from_link: Optional[Link]) -> Optional[bool]:
        # Inlined ptype/header reads: this hook runs for every packet every
        # local host sends.
        ptype = packet.ptype
        if ptype is PacketType.LEGACY:
            self.counters["legacy"] += 1
            return True
        header = packet.headers.get(HEADER_KEY)
        if header is None:
            # Sender does not speak NetFence: legacy channel, lowest priority.
            packet.ptype = PacketType.LEGACY
            self.counters["legacy"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point,
                                  ReasonCode.DEMOTED_LEGACY, packet,
                                  ts=self.clock.now, detail="no NetFence header")
            return True
        if ptype is PacketType.REGULAR:
            return self._police_regular(packet, header)
        return self._police_request(packet, header)

    # -- request channel (§4.2) ------------------------------------------------------
    def _police_request(self, packet: Packet, header: NetFenceHeader) -> bool:
        packet.ptype = PacketType.REQUEST
        limiter = self.request_limiters.get(packet.src)
        if limiter is None:
            limiter = RequestRateLimiter(self.params)
            self.request_limiters[packet.src] = limiter
        if not limiter.admit(packet, self.clock.now):
            self.counters["request_dropped"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point,
                                  ReasonCode.DROP_REQUEST_TOKENS, packet,
                                  ts=self.clock.now,
                                  detail=f"level {packet.priority}")
            return False
        header.priority = packet.priority
        header.feedback = self.policy.stamp_initial(packet)
        self.counters["request_admitted"] += 1
        if self._tracer is not None:
            self._tracer.emit(self._trace_point,
                              ReasonCode.ADMITTED_REQUEST, packet,
                              ts=self.clock.now,
                              detail=f"level {packet.priority}")
        return True

    # -- regular channel (§4.3.3) -------------------------------------------------------
    def _police_regular(self, packet: Packet, header: NetFenceHeader) -> Optional[bool]:
        feedback = header.feedback
        if feedback is None or not self.policy.validate(packet, feedback):
            # Invalid feedback: demote to the request channel (§4.4).
            self.counters["regular_invalid"] += 1
            if self._tracer is not None:
                # Distinguish a stale-but-genuine MAC from a missing/forged
                # one: re-checking freshness here is cold-path only.
                if feedback is not None and not feedback.is_fresh(
                        self.clock.now, self.params.feedback_expiration):
                    reason = ReasonCode.MAC_STALE
                    detail = f"feedback ts={feedback.ts:.3f}"
                else:
                    reason = ReasonCode.UNVERIFIED_FEEDBACK
                    detail = "missing feedback" if feedback is None else "bad MAC"
                self._tracer.emit(self._trace_point, reason, packet,
                                  ts=self.clock.now, detail=detail)
            return self._police_request(packet, header)
        if feedback.is_nop and not feedback.chain:
            header.feedback = self.policy.stamp_initial(packet)
            self.counters["regular_nop"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point, ReasonCode.ADMITTED_NOP,
                                  packet, ts=self.clock.now)
            return True
        verdict = self.policy.police_mon(packet, header, feedback)
        if verdict is True:
            self.counters["regular_passed"] += 1
            if self._tracer is not None:
                self._tracer.emit(self._trace_point,
                                  ReasonCode.ADMITTED_REGULAR, packet,
                                  ts=self.clock.now)
        elif verdict is False:
            # No trace event here: a False verdict always originates in a
            # component that already emitted the precise reason (the rate
            # limiter's DROP_CACHE_DELAY) — a second, vaguer DROP_POLICED
            # for the same packet would only double the emission volume.
            self.counters["regular_dropped"] += 1
        return verdict

    # -- introspection --------------------------------------------------------------
    def limiter_for(self, sender: str, link: str) -> Optional[RegularRateLimiter]:
        return self.rate_limiters.get((sender, link))

    @property
    def active_rate_limiters(self) -> int:
        return len(self.rate_limiters)


class LegacyAccessRouter(Router):
    """An access router in a non-upgraded AS (§5, partial deployment).

    It performs no policing, validates nothing, and attaches no feedback;
    packets its own hosts originate without a NetFence header are marked as
    legacy traffic so every downstream NetFence router serves them on the
    lowest-priority ``legacy`` channel.  (In the paper the demotion happens
    at the first NetFence router the packet crosses; marking at the origin
    access router is observationally identical and keeps transit routers on
    their fast path.)
    """

    def __init__(self, clock: Clock, name: str, as_name: Optional[str] = None) -> None:
        super().__init__(clock, name, as_name=as_name)
        self.legacy_marked = 0

    def admit_from_host(self, packet: Packet, from_link: Optional[Link]) -> Optional[bool]:
        if not packet.is_legacy and get_netfence_header(packet) is None:
            packet.ptype = PacketType.LEGACY
            self.legacy_marked += 1
        return True
