"""Shared NetFence deployment state: keys, link ownership, parameters.

A :class:`NetFenceDomain` represents what all deployed NetFence routers have
in common in one simulation: the AS pairwise key registry (established via
Passport/BGP in the paper), the mapping from a link identifier to the AS that
owns it (the paper uses an IP-to-AS mapping tool [32] for this, §4.4), and
the design parameters.  Every NetFence access and bottleneck router holds a
reference to the same domain object.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.deployment import DeploymentPlan
from repro.core.params import NetFenceParams
from repro.crypto.keys import ASKeyRegistry


class NetFenceDomain:
    """Deployment-wide state shared by all NetFence routers."""

    def __init__(self, params: Optional[NetFenceParams] = None,
                 master: Optional[bytes] = None,
                 feedback_mode: str = "single",
                 deployment: Optional[DeploymentPlan] = None) -> None:
        if feedback_mode not in ("single", "multi"):
            raise ValueError("feedback_mode must be 'single' or 'multi'")
        self.params = params or NetFenceParams()
        self.key_registry = ASKeyRegistry(master=master)
        #: "single" is the core design (§4); "multi" carries feedback from
        #: every on-path bottleneck in one packet (Appendix B.1).
        self.feedback_mode = feedback_mode
        #: The partial-deployment plan this simulation runs under, ``None``
        #: meaning full deployment (§5).  Recorded here so routers, monitors,
        #: and result collectors can introspect which ASes are upgraded.
        self.deployment = deployment
        self._link_owner: Dict[str, str] = {}

    def register_link(self, link_name: str, as_name: str) -> None:
        """Record that ``link_name`` belongs to ``as_name``.

        Bottleneck routers call this for their output links so that access
        routers can later resolve the AS (and hence the pairwise key ``Kai``)
        when validating ``L↓`` feedback.
        """
        self._link_owner[link_name] = as_name

    def as_for_link(self, link_name: Optional[str]) -> Optional[str]:
        """The AS that owns a link, or ``None`` if unknown."""
        if link_name is None:
            return None
        return self._link_owner.get(link_name)

    @property
    def registered_links(self) -> Dict[str, str]:
        return dict(self._link_owner)
