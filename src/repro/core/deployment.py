"""Partial-deployment planning (§5 of the paper).

NetFence is deployable at the granularity of an AS: an upgraded ("enabled")
AS runs NetFence access routers and its hosts speak the NetFence header
protocol, while a legacy AS forwards plain IP.  Traffic that reaches a
NetFence bottleneck without a valid header travels on the low-priority
``legacy`` channel, so upgraded sources keep their congestion-policing
guarantees even when most of the Internet has not deployed (§5's incremental
deployment argument — early adopters are protected first).

:class:`DeploymentPlan` captures one concrete deployment state for a
scenario: which source ASes are enabled, and whether the bottleneck AS
itself runs NetFence.  Plans are value objects — hashable, picklable, and
deterministic for a given ``(num_source_as, fraction, seed)`` — so sweep
grid points that share a deployment fraction always police the same AS
subset.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from repro.seeding import derive_seed


@dataclass(frozen=True)
class DeploymentPlan:
    """Which parts of a scenario topology run NetFence.

    Attributes:
        num_source_as: total number of source ASes in the topology.
        enabled_as: sorted indices of the NetFence-enabled source ASes.
        bottleneck_enabled: whether the bottleneck AS runs NetFence routers.
            When ``False`` the bottleneck is a plain FIFO router and no
            feedback is ever stamped — the fraction-0-everywhere baseline.
    """

    num_source_as: int
    enabled_as: Tuple[int, ...] = ()
    bottleneck_enabled: bool = True

    def __post_init__(self) -> None:
        if self.num_source_as < 0:
            raise ValueError("num_source_as must be non-negative")
        bad = [i for i in self.enabled_as if not 0 <= i < self.num_source_as]
        if bad:
            raise ValueError(f"enabled AS indices out of range: {bad}")
        ordered = tuple(sorted(set(self.enabled_as)))
        if ordered != self.enabled_as:
            object.__setattr__(self, "enabled_as", ordered)

    @classmethod
    def full(cls, num_source_as: int) -> "DeploymentPlan":
        """Everyone deployed — the implicit plan of all pre-§5 experiments."""
        return cls(num_source_as=num_source_as,
                   enabled_as=tuple(range(num_source_as)))

    @classmethod
    def from_fraction(
        cls,
        num_source_as: int,
        fraction: float,
        seed: int = 0,
        bottleneck_enabled: bool = True,
    ) -> "DeploymentPlan":
        """Enable a deterministic, seed-derived subset of the source ASes.

        ``round(fraction * num_source_as)`` ASes are chosen with a dedicated
        RNG stream derived from ``seed``, so the subset is stable across
        runs, processes, and sweep workers but varies with the scenario seed
        like every other source of randomness.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("deployment fraction must be within [0, 1]")
        count = round(fraction * num_source_as)
        rng = random.Random(derive_seed(seed, "deployment-plan", num_source_as, count))
        enabled = tuple(sorted(rng.sample(range(num_source_as), count)))
        return cls(num_source_as=num_source_as, enabled_as=enabled,
                   bottleneck_enabled=bottleneck_enabled)

    def is_enabled(self, as_index: int) -> bool:
        """Whether source AS ``as_index`` runs NetFence."""
        return as_index in self.enabled_as

    @property
    def fraction(self) -> float:
        """The realized deployment fraction among source ASes."""
        if self.num_source_as == 0:
            return 0.0
        return len(self.enabled_as) / self.num_source_as

    @property
    def is_full(self) -> bool:
        return self.bottleneck_enabled and len(self.enabled_as) == self.num_source_as

    def describe(self) -> str:
        bneck = "netfence" if self.bottleneck_enabled else "legacy"
        return (f"deployment {len(self.enabled_as)}/{self.num_source_as} source ASes, "
                f"bottleneck {bneck}")
