"""NetFence core: secure congestion policing feedback and closed-loop policing.

This package implements the paper's primary contribution:

* :mod:`repro.core.params` — the design parameters of Fig. 3.
* :mod:`repro.core.feedback` — the three kinds of congestion policing
  feedback (``nop``, ``L↑``, ``L↓``) and their MAC protection (Eqs. 1–3).
* :mod:`repro.core.header` — the NetFence shim header (Fig. 6) with its
  20-byte common case / 28-byte worst case wire size.
* :mod:`repro.core.ratelimiter` — the per-sender request-channel token
  limiter (§4.2, Fig. 15) and the per-(sender, bottleneck) leaky-bucket
  regular-packet rate limiter with robust AIMD (§4.3.3–4.3.4, Figs. 16–17).
* :mod:`repro.core.endhost` — the end-host shim between transport and IP
  that presents and returns feedback (§3.1), including the capability use
  where a victim refuses to return feedback (§3.3).
* :mod:`repro.core.access` — the NetFence access router (§4.3.3, Fig. 18).
* :mod:`repro.core.bottleneck` — the NetFence bottleneck router: attack
  detection, monitoring cycles, and feedback stamping (§4.3.1–4.3.2, Fig. 19).
* :mod:`repro.core.multibottleneck` — the Appendix B alternatives for flows
  crossing several bottlenecks.
* :mod:`repro.core.aslevel` — per-AS policing and RED-PD heavy-hitter
  detection to localize compromised ASes (§4.5).
"""

from repro.core.params import NetFenceParams
from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
from repro.core.header import NetFenceHeader
from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter
from repro.core.endhost import NetFenceEndHost, ReturnPolicy
from repro.core.ratelimiter import RegularRateLimiter, RequestRateLimiter

__all__ = [
    "NetFenceParams",
    "Feedback",
    "FeedbackAction",
    "FeedbackMode",
    "NetFenceHeader",
    "NetFenceAccessRouter",
    "NetFenceRouter",
    "NetFenceEndHost",
    "ReturnPolicy",
    "RegularRateLimiter",
    "RequestRateLimiter",
]
