"""Congestion quota (§7, Discussion) — an optional second line of defense.

The paper observes that when legitimate users have *limited* demand during an
attack while attackers try to congest a bottleneck persistently, the damage
can be reduced further by charging each sender a **congestion quota** at its
access router, an idea borrowed from re-ECN [9]: only a bounded amount of
"congestion traffic" may be sent through a bottleneck per period of time.

Congestion traffic is defined as the traffic a sender pushes through a rate
limiter while that limiter's rate is being decreased — i.e. while the sender
keeps transmitting into a congested bottleneck.  Unlike re-ECN, the quota is
kept per (sender, bottleneck link), so a sender's traffic toward healthy
links is never collateral damage.

:class:`CongestionQuota` tracks the spend and answers whether a sender has
exhausted its quota; :class:`QuotaEnforcer` glues it onto a
:class:`~repro.core.access.NetFenceAccessRouter` by wrapping the router's
rate limiters' accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.access import NetFenceAccessRouter
from repro.core.ratelimiter import RegularRateLimiter
from repro.runtime.clock import Clock
from repro.simulator.engine import PeriodicTimer


@dataclass
class QuotaState:
    """Congestion-byte accounting for one (sender, bottleneck link) pair."""

    spent_bytes: int = 0
    total_spent_bytes: int = 0
    exhausted: bool = False


class CongestionQuota:
    """Per-(sender, bottleneck link) congestion quota accounting.

    Args:
        quota_bytes: congestion bytes a sender may push through one
            bottleneck per replenishment period.
        period_s: replenishment period; at each period boundary every pair's
            spend resets (a simple sliding-window approximation of re-ECN's
            continuous accounting).
    """

    def __init__(self, quota_bytes: int = 500_000, period_s: float = 60.0) -> None:
        if quota_bytes <= 0:
            raise ValueError("quota_bytes must be positive")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.quota_bytes = quota_bytes
        self.period_s = period_s
        self._state: Dict[Tuple[str, str], QuotaState] = {}

    def state_for(self, sender: str, link: str) -> QuotaState:
        key = (sender, link)
        state = self._state.get(key)
        if state is None:
            state = QuotaState()
            self._state[key] = state
        return state

    def charge(self, sender: str, link: str, size_bytes: int) -> None:
        """Charge congestion bytes to a sender's quota for one bottleneck."""
        state = self.state_for(sender, link)
        state.spent_bytes += size_bytes
        state.total_spent_bytes += size_bytes
        if state.spent_bytes > self.quota_bytes:
            state.exhausted = True

    def allows(self, sender: str, link: str) -> bool:
        """Whether the sender may still send congestion traffic via ``link``."""
        return not self.state_for(sender, link).exhausted

    def replenish(self) -> None:
        """Reset every pair's spend for a new period."""
        for state in self._state.values():
            state.spent_bytes = 0
            state.exhausted = False

    @property
    def exhausted_pairs(self) -> list[Tuple[str, str]]:
        return [key for key, state in self._state.items() if state.exhausted]


class QuotaEnforcer:
    """Attach congestion-quota enforcement to a NetFence access router.

    Every control interval the enforcer inspects each rate limiter: if the
    limiter's rate was decreased (the bottleneck was congested) the bytes the
    sender pushed through it during that interval are charged to the sender's
    quota.  Once a (sender, link) pair exhausts its quota, packets policed by
    that limiter are dropped until the quota replenishes.
    """

    def __init__(
        self,
        clock: Clock,
        router: NetFenceAccessRouter,
        quota: Optional[CongestionQuota] = None,
    ) -> None:
        self.clock = clock
        self.router = router
        self.quota = quota or CongestionQuota()
        self.dropped_over_quota = 0
        self._last_forwarded: Dict[Tuple[str, str], int] = {}
        self._last_decreases: Dict[Tuple[str, str], int] = {}

        # Piggyback on the router's control interval and the quota period.
        self._audit_timer = PeriodicTimer(clock, router.params.control_interval, self._audit)
        self._audit_timer.start()
        self._replenish_timer = PeriodicTimer(clock, self.quota.period_s, self.quota.replenish)
        self._replenish_timer.start()

        # Intercept policing results: wrap each limiter's police() lazily.
        self._original_get = router.get_rate_limiter
        router.get_rate_limiter = self._get_rate_limiter  # type: ignore[assignment]

    # -- limiter wrapping -------------------------------------------------------
    def _get_rate_limiter(self, sender: str, link: str) -> RegularRateLimiter:
        limiter = self._original_get(sender, link)
        if not getattr(limiter, "_quota_wrapped", False):
            original_police = limiter.police

            def police_with_quota(packet, _original=original_police, _sender=sender,
                                  _link=link):
                if not self.quota.allows(_sender, _link):
                    self.dropped_over_quota += 1
                    limiter.stats.dropped += 1
                    return "drop"
                return _original(packet)

            limiter.police = police_with_quota  # type: ignore[assignment]
            limiter._quota_wrapped = True
        return limiter

    # -- periodic audit -----------------------------------------------------------
    def _audit(self) -> None:
        for (sender, link), limiter in self.router.rate_limiters.items():
            key = (sender, link)
            forwarded = limiter.stats.bytes_forwarded
            decreases = limiter.stats.decreases
            delta_bytes = forwarded - self._last_forwarded.get(key, 0)
            delta_decreases = decreases - self._last_decreases.get(key, 0)
            self._last_forwarded[key] = forwarded
            self._last_decreases[key] = decreases
            if delta_decreases > 0 and delta_bytes > 0:
                # Traffic sent while the limiter was being decreased is
                # congestion traffic; charge it against the quota.
                self.quota.charge(sender, link, delta_bytes)

    def stop(self) -> None:
        self._audit_timer.stop()
        self._replenish_timer.stop()
