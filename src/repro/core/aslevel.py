"""Localizing the damage of compromised ASes (§4.5).

If congestion persists *after* a monitoring cycle has started, the access
routers of some source AS are evidently not policing their senders — i.e.
that AS harbours compromised routers.  The paper offers three containment
options at the congested link, all keyed on the (Passport-authenticated)
source AS of packets:

1. **Per-AS queuing** — separate each source AS's traffic into its own queue
   (at most ~35 K queues).  Implemented by building the regular channel of
   :class:`repro.core.bottleneck.NetFenceChannelQueue` as a per-source-AS DRR
   (``as_fairness=True``).
2. **Per-AS rate limiting** — compute each AS's max-min fair share of the
   link and rate-limit it to that share (:func:`max_min_fair_shares`,
   :class:`PerASRateLimiter`).
3. **Heavy-hitter detection** — detect and throttle only the high-rate
   source ASes, RED-PD style (:class:`HeavyHitterDetector`), on the theory
   that well-behaved ASes keep reducing their traffic in response to ``L↓``
   feedback while compromised ones do not.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from repro.simulator.packet import Packet


def max_min_fair_shares(capacity_bps: float, demands_bps: Mapping[str, float]) -> Dict[str, float]:
    """Classic max-min fair allocation of ``capacity_bps`` across demands.

    Returns each key's allocation.  Keys with demand below their fair share
    keep their demand; the leftover is redistributed among the others.
    """
    if capacity_bps < 0:
        raise ValueError("capacity_bps cannot be negative")
    remaining = dict(demands_bps)
    allocation: Dict[str, float] = {}
    capacity_left = capacity_bps
    while remaining and capacity_left > 1e-9:
        share = capacity_left / len(remaining)
        satisfied = {k: d for k, d in remaining.items() if d <= share}
        if not satisfied:
            for key in remaining:
                allocation[key] = share
            return allocation
        for key, demand in satisfied.items():
            allocation[key] = demand
            capacity_left -= demand
            del remaining[key]
    for key in remaining:
        allocation[key] = 0.0
    return allocation


class PerASRateLimiter:
    """Token-bucket rate limiting of each source AS to its max-min fair share.

    The congested router periodically recomputes fair shares from the demand
    it observed in the last interval (as in Pushback [29]) and then admits or
    drops packets against each AS's budget.
    """

    def __init__(self, capacity_bps: float, interval_s: float = 1.0) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.capacity_bps = capacity_bps
        self.interval_s = interval_s
        self._demand_bytes: Dict[str, int] = defaultdict(int)
        self._budgets_bits: Dict[str, float] = {}
        self.shares_bps: Dict[str, float] = {}
        self.admitted = 0
        self.dropped = 0

    def observe_demand(self, packet: Packet) -> None:
        """Record a packet's arrival for the next share computation."""
        self._demand_bytes[packet.src_as or packet.src] += packet.size_bytes

    def recompute(self) -> Dict[str, float]:
        """Recompute per-AS fair shares from last interval's demand."""
        demands = {
            as_name: bytes_ * 8 / self.interval_s
            for as_name, bytes_ in self._demand_bytes.items()
        }
        self.shares_bps = max_min_fair_shares(self.capacity_bps, demands)
        self._budgets_bits = {
            as_name: share * self.interval_s for as_name, share in self.shares_bps.items()
        }
        self._demand_bytes.clear()
        return dict(self.shares_bps)

    def admit(self, packet: Packet) -> bool:
        """Admit the packet if its source AS still has budget this interval."""
        self.observe_demand(packet)
        as_name = packet.src_as or packet.src
        budget = self._budgets_bits.get(as_name)
        if budget is None:
            # Unknown AS: admit until the next recompute assigns it a share.
            self.admitted += 1
            return True
        cost = packet.size_bytes * 8
        if budget >= cost:
            self._budgets_bits[as_name] = budget - cost
            self.admitted += 1
            return True
        self.dropped += 1
        return False


@dataclass
class _ASHistory:
    """Recent per-interval byte counts for one source AS."""

    bytes_per_interval: List[int] = field(default_factory=list)


class HeavyHitterDetector:
    """RED-PD-style detection of persistently high-rate source ASes.

    Every interval, each AS's sending rate is compared with the per-AS fair
    share of the link (capacity divided by the number of active ASes).  An AS
    whose rate exceeds ``threshold_multiplier ×`` its fair share for
    ``trigger_intervals`` consecutive intervals is flagged as a heavy hitter
    and throttled to the fair share until it behaves for
    ``forgive_intervals`` consecutive intervals.
    """

    def __init__(
        self,
        capacity_bps: float,
        interval_s: float = 1.0,
        threshold_multiplier: float = 2.0,
        trigger_intervals: int = 3,
        forgive_intervals: int = 5,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        self.capacity_bps = capacity_bps
        self.interval_s = interval_s
        self.threshold_multiplier = threshold_multiplier
        self.trigger_intervals = trigger_intervals
        self.forgive_intervals = forgive_intervals
        self._interval_bytes: Dict[str, int] = defaultdict(int)
        self._offense_streak: Dict[str, int] = defaultdict(int)
        self._clean_streak: Dict[str, int] = defaultdict(int)
        self.throttled: Dict[str, float] = {}  # AS -> allowed rate (bps)
        self._budgets_bits: Dict[str, float] = {}

    def observe(self, packet: Packet) -> None:
        self._interval_bytes[packet.src_as or packet.src] += packet.size_bytes

    def end_interval(self) -> Dict[str, float]:
        """Close the current interval; returns the set of throttled ASes."""
        active = [as_name for as_name, b in self._interval_bytes.items() if b > 0]
        fair_share = self.capacity_bps / max(len(active), 1)
        threshold = self.threshold_multiplier * fair_share
        for as_name in active:
            rate = self._interval_bytes[as_name] * 8 / self.interval_s
            if rate > threshold:
                self._offense_streak[as_name] += 1
                self._clean_streak[as_name] = 0
                if self._offense_streak[as_name] >= self.trigger_intervals:
                    self.throttled[as_name] = fair_share
            else:
                self._clean_streak[as_name] += 1
                self._offense_streak[as_name] = 0
                if (
                    as_name in self.throttled
                    and self._clean_streak[as_name] >= self.forgive_intervals
                ):
                    del self.throttled[as_name]
        self._interval_bytes.clear()
        self._budgets_bits = {
            as_name: rate * self.interval_s for as_name, rate in self.throttled.items()
        }
        return dict(self.throttled)

    def admit(self, packet: Packet) -> bool:
        """Admit or drop a packet against its AS's throttle budget."""
        self.observe(packet)
        as_name = packet.src_as or packet.src
        if as_name not in self.throttled:
            return True
        budget = self._budgets_bits.get(as_name, 0.0)
        cost = packet.size_bytes * 8
        if budget >= cost:
            self._budgets_bits[as_name] = budget - cost
            return True
        return False
