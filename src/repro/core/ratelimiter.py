"""Access-router rate limiters.

Two limiters live at the access router:

* :class:`RequestRateLimiter` — one per sender.  It implements the
  priority-based token scheme of §4.2 (Fig. 15): admitting a level-k request
  packet costs ``2^(k-1)`` tokens, tokens refill at one per ``l1`` (1 ms),
  and level-0 packets are never rate limited (they just get the lowest
  forwarding priority).

* :class:`RegularRateLimiter` — one per (sender, bottleneck link) pair,
  created when ``mon`` feedback for that link first appears.  It is a leaky
  bucket implemented as a queue whose de-queuing rate is the rate limit
  (§4.3.3, Fig. 16), deliberately *not* a token bucket, so strategic senders
  cannot save up bursts.  Its rate limit is adjusted once per control
  interval by the robust AIMD rule of §4.3.4 (Fig. 17).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.core.feedback import Feedback
from repro.core.params import NetFenceParams
from repro.obs.trace import ReasonCode, active_tracer
from repro.runtime.clock import Clock, ClockHandle
from repro.simulator.packet import Packet

#: Policing verdicts, mirroring the paper's pseudo-code.
PASS = "pass"
CACHED = "cached"
DROP = "drop"


class RequestRateLimiter:
    """Per-sender token-based policing of request packets (§4.2, Fig. 15)."""

    def __init__(self, params: NetFenceParams) -> None:
        self.params = params
        self._tokens = params.request_token_depth
        self._last_refill = 0.0
        self.admitted = 0
        self.dropped = 0

    def admit(self, packet: Packet, now: float) -> bool:
        """Admit or drop a request packet based on its priority level."""
        level = max(0, min(packet.priority, self.params.max_priority_level))
        if level == 0:
            # Level-0 packets are not rate limited; they are simply forwarded
            # with the lowest priority (§4.2).
            self.admitted += 1
            return True
        tokens_now = min(
            self.params.request_token_depth,
            self._tokens + (now - self._last_refill) * self.params.request_token_rate,
        )
        cost = 2.0 ** (level - 1)
        if cost > tokens_now:
            self.dropped += 1
            # The paper's pseudo-code does not refund or persist the lapsed
            # refill here; we keep the refill so time is not lost.
            self._tokens = tokens_now
            self._last_refill = now
            return False
        self._tokens = tokens_now - cost
        self._last_refill = now
        self.admitted += 1
        return True

    @property
    def available_tokens(self) -> float:
        return self._tokens


@dataclass
class RateLimiterStats:
    """Counters exposed for tests and experiments."""

    passed: int = 0
    cached: int = 0
    dropped: int = 0
    released: int = 0
    bytes_forwarded: int = 0
    increases: int = 0
    decreases: int = 0
    holds: int = 0


class RegularRateLimiter:
    """The per-(sender, bottleneck link) leaky-bucket rate limiter.

    Packets that cannot be forwarded immediately are cached in a FIFO and
    released at the rate limit; packets whose queuing delay would exceed
    ``params.max_caching_delay`` are dropped (Fig. 16's
    ``caching_delay_too_long``).

    AIMD state (§4.3.4): ``has_incr`` records whether fresh ``L↑`` feedback
    has been seen this control interval; the adjustment runs once per
    ``Ilim`` via :meth:`adjust`.
    """

    def __init__(
        self,
        clock: Clock,
        sender: str,
        link: str,
        params: NetFenceParams,
        release_fn: Callable[[Packet], None],
        initial_rate_bps: Optional[float] = None,
    ) -> None:
        self.clock = clock
        self.sender = sender
        self.link = link
        self.params = params
        self.release_fn = release_fn
        self.rate_bps = initial_rate_bps or params.initial_rate_limit_bps
        self.stats = RateLimiterStats()

        # AIMD bookkeeping (Fig. 17).
        self.has_incr = False
        self.interval_start = clock.now
        self._interval_bytes = 0

        # Appendix B.2 extensions (rate-limiter inference).
        self.has_incr_star = False
        self.is_active = False
        self.is_active_star = False

        # Leaky bucket.
        self._cache: Deque[Packet] = deque()
        self._cache_bytes = 0
        self._last_departure = clock.now
        self._unleash_event: Optional[ClockHandle] = None
        # Hot-path constants: the bucket depth in bits and the cache-capacity
        # floor never change after construction, so the per-packet charge in
        # :meth:`police` avoids re-deriving them from params every time.
        self._depth_bits = params.leaky_bucket_depth_bytes * 8.0
        self._min_cache_bytes = float(params.min_cache_bytes)
        self._max_caching_delay = params.max_caching_delay

        # Idle-termination bookkeeping (§4.3.1): a limiter can be removed once
        # it has neither seen L↓ feedback nor dropped a packet for Ta seconds.
        self.last_pressure_time = clock.now

        # Tracing touches only the cache/drop branches, never the PASS fast
        # path, so a limiter with tracing off pays nothing per passed packet.
        self._tracer = active_tracer()
        self._trace_point = f"limiter:{sender}->{link}"

    # -- feedback status --------------------------------------------------------
    def update_status(self, feedback: Feedback) -> None:
        """Record the feedback presented with a packet (Fig. 17's update_status)."""
        if feedback.is_decr:
            self.last_pressure_time = self.clock.now
            self.is_active = True
        if feedback.is_incr:
            self.is_active = True
            if feedback.ts >= self.interval_start:
                self.has_incr = True

    def update_inferred_status(self, feedback: Feedback) -> None:
        """Record feedback *inferred* from another link's feedback (Appendix B.2)."""
        self.is_active_star = True
        if feedback.is_incr and feedback.ts >= self.interval_start:
            self.has_incr_star = True

    # -- policing -----------------------------------------------------------------
    def police(self, packet: Packet) -> str:
        """Pass, cache, or drop a regular packet (Fig. 16)."""
        now = self.clock.now
        if not self._cache:
            # Credit drains at the rate limit but is capped at one MTU of
            # transmission time: idle periods cannot fund bursts (the bucket
            # stays leaky, §4.3.3), yet fractional credit accrued since the
            # last departure is preserved instead of being discarded, so
            # sustained goodput tracks rate_bps even for sub-MTU packets.
            # A single floored rate keeps accrual and consumption consistent
            # even if AIMD drives rate_bps below 1 bps.
            rate = max(self.rate_bps, 1.0)
            credit_bits = (now - self._last_departure) * rate
            depth_bits = self._depth_bits
            if credit_bits > depth_bits:
                credit_bits = depth_bits
                self._last_departure = now - depth_bits / rate
            tx_bits = packet.size_bytes * 8
            if credit_bits >= tx_bits:
                self._last_departure += tx_bits / rate
                self._account_forward(packet)
                self.stats.passed += 1
                return PASS
            if self._caching_delay_too_long(packet):
                self._record_drop(packet)
                return DROP
        else:
            if self._caching_delay_too_long(packet):
                self._record_drop(packet)
                return DROP
        self._cache.append(packet)
        self._cache_bytes += packet.size_bytes
        self.stats.cached += 1
        if self._tracer is not None:
            self._tracer.emit(self._trace_point,
                              ReasonCode.RATE_LIMITED, packet, ts=now,
                              detail=f"cached at {self.rate_bps:.0f} bps")
        if len(self._cache) == 1:
            self._schedule_next_unleash()
        return CACHED

    def _caching_delay_too_long(self, packet: Packet) -> bool:
        # The cache may hold up to max_caching_delay's worth of bytes at the
        # current rate limit, but never less than min_cache_bytes so that a
        # TCP sender always has room for a couple of segments (Fig. 3 notes
        # every limiter queues at least one packet).
        capacity_bytes = max(
            self.rate_bps * self._max_caching_delay / 8.0,
            self._min_cache_bytes,
        )
        return self._cache_bytes + packet.size_bytes > capacity_bytes

    def _record_drop(self, packet: Packet) -> None:
        self.stats.dropped += 1
        self.last_pressure_time = self.clock.now
        if self._tracer is not None:
            self._tracer.emit(self._trace_point,
                              ReasonCode.DROP_CACHE_DELAY, packet,
                              ts=self.clock.now,
                              detail=f"cache {self._cache_bytes}B full")

    def _account_forward(self, packet: Packet) -> None:
        self._interval_bytes += packet.size_bytes
        self.stats.bytes_forwarded += packet.size_bytes

    # -- leaky-bucket release -------------------------------------------------------
    def _schedule_next_unleash(self) -> None:
        if not self._cache:
            return
        head = self._cache[0]
        wait = head.size_bytes * 8 / max(self.rate_bps, 1.0)
        elapsed = self.clock.now - self._last_departure
        delay = max(wait - elapsed, 0.0)
        self._unleash_event = self.clock.schedule(delay, self._unleash)

    def _unleash(self) -> None:
        # This event has fired; drop the handle so a later close() does not
        # cancel an already-dispatched event.
        self._unleash_event = None
        if not self._cache:
            return
        packet = self._cache.popleft()
        self._cache_bytes -= packet.size_bytes
        # Consume exactly the packet's transmission time; any residual credit
        # (the release may have fired early thanks to banked credit) carries
        # over to the next departure.
        tx_s = packet.size_bytes * 8 / max(self.rate_bps, 1.0)
        self._last_departure = min(self._last_departure + tx_s, self.clock.now)
        self._account_forward(packet)
        self.stats.released += 1
        self.release_fn(packet)
        if self._cache:
            self._schedule_next_unleash()

    # -- AIMD adjustment ----------------------------------------------------------
    @property
    def interval_throughput_bps(self) -> float:
        elapsed = max(self.clock.now - self.interval_start, 1e-9)
        return self._interval_bytes * 8 / elapsed

    def adjust(self) -> str:
        """Apply the robust AIMD rule at the end of a control interval (Fig. 17).

        Returns "increase", "decrease", or "keep" for observability.
        """
        action = "keep"
        if self.has_incr:
            if self.interval_throughput_bps > self.rate_bps / 2:
                self.rate_bps += self.params.additive_increase_bps
                action = "increase"
                self.stats.increases += 1
            else:
                self.stats.holds += 1
        else:
            self.rate_bps *= 1 - self.params.multiplicative_decrease
            action = "decrease"
            self.stats.decreases += 1
        self._start_new_interval()
        return action

    def adjust_with_inference(self) -> str:
        """Appendix B.2 adjustment: also consult inferred feedback state."""
        action = "keep"
        if self.has_incr or self.has_incr_star:
            if self.interval_throughput_bps > self.rate_bps / 2:
                self.rate_bps += self.params.additive_increase_bps
                action = "increase"
                self.stats.increases += 1
            else:
                self.stats.holds += 1
        elif self.is_active:
            self.rate_bps *= 1 - self.params.multiplicative_decrease
            action = "decrease"
            self.stats.decreases += 1
        elif self.is_active_star:
            self.stats.holds += 1
        else:
            self.rate_bps *= 1 - self.params.multiplicative_decrease
            action = "decrease"
            self.stats.decreases += 1
        self._start_new_interval()
        return action

    def _start_new_interval(self) -> None:
        self.has_incr = False
        self.has_incr_star = False
        self.is_active = False
        self.is_active_star = False
        self.interval_start = self.clock.now
        self._interval_bytes = 0

    # -- lifecycle -----------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._cache)

    def idle_for(self) -> float:
        """Seconds since the limiter last saw L↓ feedback or dropped a packet."""
        return self.clock.now - self.last_pressure_time

    def close(self) -> None:
        """Cancel pending releases (used when the access router removes the limiter).

        Cached packets are forwarded immediately rather than silently lost:
        removing a limiter means the bottleneck no longer needs policing.
        """
        if self._unleash_event is not None:
            self._unleash_event.cancel()
            self._unleash_event = None
        while self._cache:
            packet = self._cache.popleft()
            self._cache_bytes -= packet.size_bytes
            # Flushed packets are forwarded like any other release, so they
            # must show up in the experiment counters too.
            self._account_forward(packet)
            self.stats.released += 1
            self.release_fn(packet)
