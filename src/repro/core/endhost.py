"""The NetFence end-host module (the shim between transport and IP, §6.2).

Senders and receivers do not implement any trusted functionality — the shim
only moves feedback around:

* On the **send** path it attaches a NetFence header: the freshest valid
  feedback it holds for the destination (presenting ``L↑`` even when newer
  ``L↓`` exists, as §4.3.4 recommends for legitimate senders), plus the
  *return* feedback for the reverse direction.  When it has no fresh
  feedback it marks the packet as a request packet and picks a priority
  level from how long it has been waiting (§4.2, the LazySusan-style
  waiting-time priority).
* On the **receive** path it records the forward feedback carried by the
  packet (to be returned later) and absorbs any returned feedback destined
  for this host's own flows.
* The **capability** use of §3.3 is a return policy: a victim that has
  identified unwanted senders simply refuses to return feedback to them, so
  they can never send valid regular packets.
* One-way transports (UDP) have no reverse traffic to piggyback on, so the
  shim can emit dedicated low-rate feedback packets (§3.1 step 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.feedback import Feedback
from repro.core.header import HEADER_KEY, NetFenceHeader
from repro.core.params import NetFenceParams
from repro.runtime.clock import Clock
from repro.simulator.engine import PeriodicTimer
from repro.simulator.node import Host
from repro.simulator.packet import Packet, PacketType

#: Size of a dedicated feedback packet (40 B transport/IP + 28 B NetFence).
FEEDBACK_PACKET_SIZE = 68


class ReturnPolicy:
    """Decides whether feedback is returned to a given peer (§3.3).

    The default returns feedback to everyone.  A DoS victim that can identify
    attack traffic blocks the attackers' addresses, which withholds their
    capability tokens and confines them to the request channel.
    """

    def __init__(self, blocked: Optional[Set[str]] = None) -> None:
        self.blocked: Set[str] = set(blocked or ())

    def allows(self, peer: str) -> bool:
        return peer not in self.blocked

    def block(self, peer: str) -> None:
        self.blocked.add(peer)

    def unblock(self, peer: str) -> None:
        self.blocked.discard(peer)


@dataclass
class _PeerFeedbackState:
    """Feedback bookkeeping for one remote peer (or one peer+flow)."""

    peer_name: str = ""
    # Feedback this host may present to its access router (learned from the
    # peer's return headers / feedback packets).
    latest_nop: Optional[Feedback] = None
    latest_incr: Optional[Feedback] = None
    latest_decr: Optional[Feedback] = None
    # Forward feedback observed in packets *from* the peer, awaiting return.
    to_return: Optional[Feedback] = None
    returned_dirty: bool = False
    # Request-channel bookkeeping.
    last_request_time: Optional[float] = None


class NetFenceEndHost:
    """Attach NetFence send/receive behaviour to a :class:`Host`.

    Args:
        clock: the driving clock — a Simulator in swept scenarios, a
            WallClock when the shim fronts a real socket (runner loadgen).
        host: the host to instrument.
        params: NetFence parameters.
        return_policy: which peers get their feedback returned.
        send_feedback_packets: emit dedicated feedback packets for peers that
            we receive from but never send to (one-way UDP flows).
        presentation_strategy: "honest" (default; also the attacker's optimal
            strategy), "hide_decr", or "stale" — used by the strategic-attack
            experiments and the security tests.
        auto_priority: pick request priority from waiting time.  Attack
            sources that flood requests at a fixed level disable this.
        per_flow_feedback: track feedback per (peer, flow) instead of per
            peer, modelling implementations that keep the NetFence feedback
            loop inside each connection's state.  The repeated-file-transfer
            experiment (Fig. 8) uses this so every new transfer bootstraps
            through the request channel, as in the paper.
    """

    def __init__(
        self,
        clock: Clock,
        host: Host,
        params: Optional[NetFenceParams] = None,
        return_policy: Optional[ReturnPolicy] = None,
        send_feedback_packets: bool = False,
        feedback_packet_interval: float = 0.2,
        presentation_strategy: str = "honest",
        auto_priority: bool = True,
        per_flow_feedback: bool = False,
    ) -> None:
        self.clock = clock
        self.host = host
        self.params = params or NetFenceParams()
        self.return_policy = return_policy or ReturnPolicy()
        self.presentation_strategy = presentation_strategy
        self.auto_priority = auto_priority
        self.per_flow_feedback = per_flow_feedback
        self.peers: Dict[str, _PeerFeedbackState] = {}
        self.stats_requests_sent = 0
        self.stats_regular_sent = 0
        self.stats_feedback_packets_sent = 0

        host.outbound_filters.append(self._outbound)
        host.inbound_filters.append(self._inbound)

        self._feedback_timer: Optional[PeriodicTimer] = None
        if send_feedback_packets:
            self._feedback_timer = PeriodicTimer(
                clock, feedback_packet_interval, self._emit_feedback_packets
            )
            self._feedback_timer.start()

    # -- per-peer state -----------------------------------------------------------
    def _state_key(self, peer_name: str, flow_id: str = "") -> str:
        if self.per_flow_feedback and flow_id:
            return f"{peer_name}#{flow_id}"
        return peer_name

    def _peer(self, name: str, flow_id: str = "") -> _PeerFeedbackState:
        key = self._state_key(name, flow_id)
        state = self.peers.get(key)
        if state is None:
            state = _PeerFeedbackState(peer_name=name)
            self.peers[key] = state
        return state

    # -- outbound path ------------------------------------------------------------
    def _outbound(self, packet: Packet) -> Optional[bool]:
        if packet.ptype is PacketType.LEGACY:
            return True
        # _peer()/_state_key() inlined for the common per-peer mode: this
        # filter runs on every packet the host sends.
        dst = packet.dst
        key = (f"{dst}#{packet.flow_id}"
               if self.per_flow_feedback and packet.flow_id else dst)
        peer = self.peers.get(key)
        if peer is None:
            peer = _PeerFeedbackState(peer_name=dst)
            self.peers[key] = peer
        header = NetFenceHeader()
        presented = self._select_presented(peer)
        now = self.clock.now
        if presented is not None:
            packet.ptype = PacketType.REGULAR
            # Feedback values are immutable by contract (routers replace,
            # never mutate), so the header can alias the stored instance.
            header.feedback = presented
            self.stats_regular_sent += 1
        else:
            # No valid feedback for this destination: the packet travels on
            # the request channel (§3.1 step 1 / §4.4 — packets without valid
            # feedback are treated as request packets), with a priority level
            # derived from how long the sender has been waiting (§4.2).
            packet.ptype = PacketType.REQUEST
            if self.auto_priority:
                packet.priority = self._request_priority(peer, now)
            header.priority = packet.priority
            peer.last_request_time = now
            self.stats_requests_sent += 1
        if peer.to_return is not None and self.return_policy.allows(packet.dst):
            header.returned = peer.to_return
            peer.returned_dirty = False
        packet.headers[HEADER_KEY] = header
        return True

    def _select_presented(self, peer: _PeerFeedbackState) -> Optional[Feedback]:
        # Runs once per outbound packet; freshness checks are inlined (no
        # per-call closure, no ``is_fresh`` method calls on the hot path).
        now = self.clock.now
        w = self.params.feedback_expiration
        strategy = self.presentation_strategy
        incr = peer.latest_incr
        incr_fresh = incr is not None and abs(now - incr.ts) <= w
        if strategy == "hide_decr":
            if incr_fresh:
                return incr
            nop = peer.latest_nop
            return nop if nop is not None and abs(now - nop.ts) <= w else None
        if strategy == "stale":
            # Present the newest incr feedback even if it has expired — the
            # access router must reject it (security test).
            if incr is not None:
                return incr
            nop = peer.latest_nop
            if nop is not None and abs(now - nop.ts) <= w:
                return nop
            decr = peer.latest_decr
            return decr if decr is not None and abs(now - decr.ts) <= w else None
        # "honest": present unexpired L↑ even when newer L↓ exists (§4.3.4 —
        # the aggressive-but-admissible strategy every sender should mimic);
        # otherwise present the most recently received unexpired feedback, so
        # that a sender that has just learnt of a mon-state bottleneck starts
        # using its rate limiter right away instead of riding an older nop.
        if incr_fresh:
            return incr
        nop = peer.latest_nop
        if nop is not None and abs(now - nop.ts) > w:
            nop = None
        decr = peer.latest_decr
        if decr is not None and abs(now - decr.ts) > w:
            decr = None
        if nop is None:
            return decr
        if decr is None:
            return nop
        return decr if decr.ts > nop.ts else nop

    def _request_priority(self, peer: _PeerFeedbackState, now: float) -> int:
        if peer.last_request_time is None:
            return 0
        elapsed_ms = (now - peer.last_request_time) * 1000.0
        if elapsed_ms < 1.0:
            return 0
        level = int(math.floor(math.log2(elapsed_ms))) + 1
        return min(level, self.params.max_priority_level)

    # -- inbound path -----------------------------------------------------------
    def _inbound(self, packet: Packet) -> Optional[bool]:
        header: Optional[NetFenceHeader] = packet.headers.get(HEADER_KEY)
        if header is None:
            return True
        peer = self._peer(packet.src, packet.flow_id)
        if header.feedback is not None:
            peer.to_return = header.feedback
            peer.returned_dirty = True
        if header.returned is not None:
            self._absorb_returned(peer, header.returned)
        if packet.protocol in ("netfence-fb", "netfence-req"):
            # Dedicated feedback/probe packets carry no payload for the transport.
            return False
        return True

    def _absorb_returned(self, peer: _PeerFeedbackState, feedback: Feedback) -> None:
        if feedback.is_nop:
            if peer.latest_nop is None or feedback.ts >= peer.latest_nop.ts:
                peer.latest_nop = feedback
        elif feedback.is_incr:
            if peer.latest_incr is None or feedback.ts >= peer.latest_incr.ts:
                peer.latest_incr = feedback
        else:
            if peer.latest_decr is None or feedback.ts >= peer.latest_decr.ts:
                peer.latest_decr = feedback

    # -- dedicated feedback packets (one-way flows) ------------------------------
    def _emit_feedback_packets(self) -> None:
        for state in list(self.peers.values()):
            if state.to_return is None or not state.returned_dirty:
                continue
            peer_name = state.peer_name
            if not self.return_policy.allows(peer_name):
                continue
            packet = Packet(
                src=self.host.name,
                dst=peer_name,
                size_bytes=FEEDBACK_PACKET_SIZE,
                ptype=PacketType.REGULAR,
                flow_id=f"fb:{self.host.name}->{peer_name}",
                protocol="netfence-fb",
            )
            self.stats_feedback_packets_sent += 1
            self.host.send(packet)

    # -- helpers for tests and experiments -----------------------------------------
    def stored_feedback(self, peer: str, flow_id: str = "") -> _PeerFeedbackState:
        return self._peer(peer, flow_id)

    def stop(self) -> None:
        if self._feedback_timer is not None:
            self._feedback_timer.stop()
