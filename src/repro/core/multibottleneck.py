"""Access-router policing policies, including the Appendix B alternatives.

The core NetFence design (§4.3.3) polices a regular packet with exactly one
rate limiter — the one named by the feedback the packet carries.  §4.3.5
explains the drawback when a flow crosses several ``mon``-state bottlenecks;
Appendix B offers two alternatives:

* **B.1 multi-bottleneck feedback** — the packet carries feedback from every
  on-path bottleneck (a chained token, Eqs. 4–5) and the access router sends
  the packet through all the corresponding rate limiters.
* **B.2 rate-limiter inference** — the packet still carries one feedback,
  but the access router remembers which bottlenecks appear on the path to
  each destination and polices the packet through all of them, using the
  single feedback to *infer* the state of the silent links.

Each variant is a :class:`PolicingPolicy`; the access router delegates its
mon-state policing, feedback validation, initial stamping, feedback resetting
and AIMD adjustment to the installed policy.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set

from repro.core.feedback import (
    Feedback,
    FeedbackAction,
    FeedbackMode,
    multi_stamp_nop,
    multi_validate,
)
from repro.core.header import NetFenceHeader
from repro.core.ratelimiter import CACHED, DROP, RegularRateLimiter
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.access import NetFenceAccessRouter

#: Packet-header key holding the limiters a packet still has to pass.
PENDING_KEY = "_nf_pending"
#: Packet-header key holding the links the packet has been policed for.
LINKS_KEY = "_nf_links"


class PolicingPolicy:
    """Base class: the single-bottleneck core design (§4.3.3)."""

    name = "single"

    def __init__(self) -> None:
        self.router: "NetFenceAccessRouter" = None  # set by attach()

    def attach(self, router: "NetFenceAccessRouter") -> None:
        self.router = router

    # -- stamping / validation ------------------------------------------------
    def stamp_initial(self, packet: Packet) -> Feedback:
        """The feedback an access router stamps when forwarding (nop, Eq. 1)."""
        return self.router.stamper.stamp_nop(packet.src, packet.dst, self.router.clock.now)

    def validate(self, packet: Packet, feedback: Feedback) -> bool:
        link_as = self.router.domain.as_for_link(feedback.link) if feedback.is_decr else None
        return self.router.stamper.validate(
            feedback,
            packet.src,
            packet.dst,
            self.router.clock.now,
            self.router.params.feedback_expiration,
            link_as=link_as,
        )

    # -- mon-state policing ------------------------------------------------------
    def police_mon(
        self, packet: Packet, header: NetFenceHeader, feedback: Feedback
    ) -> Optional[bool]:
        """Police a valid mon-feedback packet.  Returns True / False / None
        with the same meaning as ``Router.admit_from_host``."""
        limiter = self.router.get_rate_limiter(packet.src, feedback.link)
        limiter.update_status(feedback)
        packet.headers[LINKS_KEY] = [feedback.link]
        return self._police_through(packet, [limiter])

    def _police_through(
        self, packet: Packet, limiters: List[RegularRateLimiter]
    ) -> Optional[bool]:
        """Send the packet through ``limiters`` in order (chained policing)."""
        pending: Deque[RegularRateLimiter] = deque(limiters)
        while pending:
            limiter = pending.popleft()
            verdict = limiter.police(packet)
            if verdict == DROP:
                packet.headers.pop(LINKS_KEY, None)
                return False
            if verdict == CACHED:
                packet.headers[PENDING_KEY] = pending
                return None
        self.finalize(packet)
        return True

    def continue_chain(self, packet: Packet) -> Optional[bool]:
        """Resume policing after a rate limiter released a cached packet."""
        pending: Optional[Deque[RegularRateLimiter]] = packet.headers.pop(PENDING_KEY, None)
        if not pending:
            self.finalize(packet)
            return True
        return self._police_through(packet, list(pending))

    # -- feedback reset (§4.3.3: access router resets feedback on forwarding) -----
    def finalize(self, packet: Packet) -> None:
        links: Optional[List[str]] = packet.headers.pop(LINKS_KEY, None)
        header: Optional[NetFenceHeader] = packet.get_header("netfence")
        if header is None:
            return
        now = self.router.clock.now
        if not links:
            header.feedback = self.stamp_initial(packet)
            return
        header.feedback = self.router.stamper.stamp_incr(
            packet.src, packet.dst, self._restamp_link(packet, links), now
        )

    def _restamp_link(self, packet: Packet, links: List[str]) -> str:
        return links[0]

    # -- AIMD -----------------------------------------------------------------------
    def adjust(self, limiter: RegularRateLimiter) -> str:
        return limiter.adjust()


class SingleBottleneckPolicy(PolicingPolicy):
    """The core design: exactly one rate limiter polices a packet."""

    name = "single"


class MultiFeedbackPolicy(PolicingPolicy):
    """Appendix B.1: the packet carries feedback from all on-path bottlenecks."""

    name = "multi"

    def attach(self, router: "NetFenceAccessRouter") -> None:
        super().attach(router)
        router.domain.feedback_mode = "multi"

    def stamp_initial(self, packet: Packet) -> Feedback:
        return multi_stamp_nop(
            self.router.secret, packet.src, packet.dst, self.router.clock.now
        )

    def validate(self, packet: Packet, feedback: Feedback) -> bool:
        return multi_validate(
            self.router.secret,
            self.router.domain.key_registry,
            self.router.local_as,
            feedback,
            packet.src,
            packet.dst,
            self.router.clock.now,
            self.router.params.feedback_expiration,
            self.router.domain.as_for_link,
        )

    def police_mon(
        self, packet: Packet, header: NetFenceHeader, feedback: Feedback
    ) -> Optional[bool]:
        chain = tuple(feedback.chain or ())
        if not chain:
            header.feedback = self.stamp_initial(packet)
            return True
        limiters: List[RegularRateLimiter] = []
        links: List[str] = []
        for link, action in chain:
            limiter = self.router.get_rate_limiter(packet.src, link)
            limiter.update_status(
                Feedback(
                    mode=FeedbackMode.MON,
                    link=link,
                    action=FeedbackAction(action),
                    ts=feedback.ts,
                )
            )
            limiters.append(limiter)
            links.append(link)
        packet.headers[LINKS_KEY] = links
        return self._police_through(packet, limiters)

    def finalize(self, packet: Packet) -> None:
        # B.1 always resets to a fresh (empty-chain) header; bottleneck
        # routers re-append their feedback downstream.
        packet.headers.pop(LINKS_KEY, None)
        header: Optional[NetFenceHeader] = packet.get_header("netfence")
        if header is not None:
            header.feedback = self.stamp_initial(packet)


class InferencePolicy(PolicingPolicy):
    """Appendix B.2: infer on-path bottlenecks from past feedback.

    The access router keeps a per-destination cache of the bottleneck links
    seen on the path to that destination and polices every packet through all
    of them.  The packet's single feedback updates the matching limiter's
    state directly and the other limiters' *inferred* state (``hasIncr*`` /
    ``isActive*``), and the AIMD adjustment uses the four-case rule of
    Appendix B.2.

    Cache entries are only grown here; the paper notes entries can be expired
    when a link's feedback stops appearing, which matters for long-lived
    deployments but not for the simulated attack periods.
    """

    name = "inference"

    def __init__(self) -> None:
        super().__init__()
        self.destination_cache: Dict[str, Set[str]] = {}

    def police_mon(
        self, packet: Packet, header: NetFenceHeader, feedback: Feedback
    ) -> Optional[bool]:
        cache = self.destination_cache.setdefault(packet.dst, set())
        cache.add(feedback.link)
        limiters: List[RegularRateLimiter] = []
        links: List[str] = []
        for link in sorted(cache):
            limiter = self.router.get_rate_limiter(packet.src, link)
            if link == feedback.link:
                limiter.update_status(feedback)
            else:
                limiter.update_inferred_status(feedback)
            limiters.append(limiter)
            links.append(link)
        packet.headers[LINKS_KEY] = links
        return self._police_through(packet, limiters)

    def _restamp_link(self, packet: Packet, links: List[str]) -> str:
        # Reset the feedback to L↑ of the *smallest-rate* on-path limiter so
        # downstream links see the most conservative state (Appendix B.2).
        lowest = min(
            links,
            key=lambda link: self.router.get_rate_limiter(packet.src, link).rate_bps,
        )
        return lowest

    def adjust(self, limiter: RegularRateLimiter) -> str:
        return limiter.adjust_with_inference()
