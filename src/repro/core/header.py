"""The NetFence shim header (Fig. 6).

The header sits between IP and the transport header.  A full header has a
*forward* part (the congestion policing feedback for the sender→receiver
direction, validated and rewritten by routers) and an optional *return* part
(the feedback the packet's sender is handing back to its peer for the
opposite direction).

Wire-size accounting follows Fig. 6 / §6.1:

* common header: 8 bytes (VER, TYPE, PROTO, PRIORITY, FLAGS, TIMESTAMP);
* nop forward feedback: common header + 32-bit MAC = 12 bytes;
* mon forward feedback: common header + LINK-ID + TOKEN-NOP + MAC = 20 bytes;
* return part: 32-bit MAC plus, for mon feedback, a 32-bit LINK-ID = 4–8 bytes
  (omitted entirely when the sender has already returned the latest feedback).

So the common case (nop both ways, return present) is 20 bytes and the worst
case (mon both ways) is 28 bytes, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.feedback import Feedback

#: Key under which the NetFence header is stored in ``Packet.headers``.
HEADER_KEY = "netfence"

COMMON_HEADER_BYTES = 8
MAC_FIELD_BYTES = 4
LINK_ID_BYTES = 4
TOKEN_NOP_BYTES = 4


@dataclass(slots=True)
class NetFenceHeader:
    """The shim header carried by request and regular packets.

    Attributes:
        feedback: forward-path congestion policing feedback.  ``None`` on a
            freshly minted request packet that has not yet reached its access
            router.
        returned: feedback being handed back to the packet's destination for
            the reverse direction (piggybacked return header, §6.1).
        priority: request-packet priority level (level-k, §4.2).
    """

    feedback: Optional[Feedback] = None
    returned: Optional[Feedback] = None
    priority: int = 0

    def wire_size(self) -> int:
        """On-wire size in bytes, per Fig. 6 / §6.1.

        The common case (nop feedback both ways, return header present) is
        20 bytes; the worst case (mon feedback both ways) is 28 bytes.  The
        return header may be omitted entirely when the sender has already
        returned the latest feedback, saving another 8 bytes.
        """
        size = COMMON_HEADER_BYTES
        if self.feedback is None or self.feedback.is_nop:
            size += MAC_FIELD_BYTES
        else:
            size += LINK_ID_BYTES + TOKEN_NOP_BYTES + MAC_FIELD_BYTES
        if self.returned is not None:
            size += MAC_FIELD_BYTES + LINK_ID_BYTES
        return size


def get_netfence_header(packet) -> Optional[NetFenceHeader]:
    """Fetch the NetFence header of a packet (or ``None``)."""
    return packet.get_header(HEADER_KEY)


def ensure_netfence_header(packet) -> NetFenceHeader:
    """Fetch the NetFence header, creating an empty one if missing."""
    header = packet.get_header(HEADER_KEY)
    if header is None:
        header = NetFenceHeader()
        packet.set_header(HEADER_KEY, header)
    return header
