"""Deterministic seed derivation shared across the whole stack.

Every source of randomness in a simulation must flow from one scenario seed,
but handing the *same* seed (or, worse, a hard-coded one) to independent
components makes their random streams identical and therefore correlated —
e.g. every RED queue deciding to drop on the same draw.  :func:`derive_seed`
fans a base seed out into per-component seeds: mix in any hashable
description of the component (labels, host names, grid-point parameters) and
the derived seeds are decorrelated from each other yet fully reproducible.

This lives at the bottom of the dependency stack (no repro imports) so the
simulator, transport, and experiment layers can all use it; the sweep engine
re-exports it for backwards compatibility.
"""

from __future__ import annotations

import hashlib
from typing import Any


def derive_seed(base_seed: int, *parts: Any) -> int:
    """Derive a deterministic per-component seed from a base seed and any
    hashable description of the component (labels, parameter values, ...)."""
    digest = hashlib.sha256(repr((base_seed,) + parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**31 - 1)
