"""Unified telemetry: clock-agnostic metrics, packet tracing, exporters.

``repro.obs`` is the cross-cutting observability layer:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with label sets and
  a disabled-by-default null fast path (see that module's docstring for the
  cost model);
* :mod:`repro.obs.trace` — a bounded ring buffer of reasoned per-packet
  decision events (:class:`~repro.obs.trace.ReasonCode`), driving
  ``runner trace``;
* :mod:`repro.obs.export` — JSON snapshots, Prometheus text, and the
  ``metric_rows`` bridge into :class:`~repro.store.ResultStore`.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    PacketTracer,
    ReasonCode,
    TraceEvent,
    active_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.export import (
    commit_metric_rows,
    metric_rows,
    prometheus_text,
    snapshot,
)

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "PacketTracer",
    "ReasonCode",
    "TraceEvent",
    "active_tracer",
    "set_tracer",
    "use_tracer",
    "commit_metric_rows",
    "metric_rows",
    "prometheus_text",
    "snapshot",
]
