"""Unified telemetry: clock-agnostic metrics, packet tracing, exporters.

``repro.obs`` is the cross-cutting observability layer:

* :mod:`repro.obs.metrics` — counters/gauges/histograms with label sets and
  a disabled-by-default null fast path (see that module's docstring for the
  cost model);
* :mod:`repro.obs.trace` — a bounded ring buffer of reasoned per-packet
  decision events (:class:`~repro.obs.trace.ReasonCode`), driving
  ``runner trace``;
* :mod:`repro.obs.export` — JSON snapshots, Prometheus text, and the
  ``metric_rows`` bridge into :class:`~repro.store.ResultStore`;
* :mod:`repro.obs.spans` — causal spans (trace/span/parent ids) with a
  ring-buffered :class:`~repro.obs.spans.SpanRecorder` and a wire-codec
  trace-context field, so one packet can be followed across processes;
* :mod:`repro.obs.log` — structured JSON-lines event logging with injected
  clocks and trace/span correlation, shared by ``serve``/``loadgen``/the
  worker fleet;
* :mod:`repro.obs.flight` — the live policer's always-on flight recorder
  (bounded rings of spans + logs + metrics snapshots, dumped to a forensic
  JSON file on trigger).
"""

from repro.obs.metrics import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.trace import (
    PacketTracer,
    ReasonCode,
    TraceEvent,
    active_tracer,
    set_tracer,
    use_tracer,
)
from repro.obs.export import (
    commit_metric_rows,
    metric_rows,
    prometheus_text,
    snapshot,
)
from repro.obs.spans import (
    TRACE_KEY,
    Span,
    SpanContext,
    SpanRecorder,
    active_span_recorder,
    set_span_recorder,
    use_span_recorder,
)
from repro.obs.log import JsonLinesLogger, bridge_stdlib
from repro.obs.flight import FlightRecorder

__all__ = [
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "PacketTracer",
    "ReasonCode",
    "TraceEvent",
    "active_tracer",
    "set_tracer",
    "use_tracer",
    "commit_metric_rows",
    "metric_rows",
    "prometheus_text",
    "snapshot",
    "TRACE_KEY",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "active_span_recorder",
    "set_span_recorder",
    "use_span_recorder",
    "JsonLinesLogger",
    "bridge_stdlib",
    "FlightRecorder",
]
