"""Clock-agnostic metrics: counters, gauges, and fixed-bucket histograms.

Design constraints, in order of importance:

1. **Disabled is free.**  The default process-global registry is disabled;
   a disabled registry hands out shared *null* instruments whose methods are
   no-ops and registers nothing.  Components therefore guard registration
   with ``if registry.enabled:`` at **construction** time, so the simulator
   hot path pays nothing — not even a no-op call — when telemetry is off,
   and hotpath-bench golden rows stay byte-identical.

2. **Clock-agnostic.**  Instruments never read time.  A registry may carry
   a :class:`~repro.runtime.clock.Clock` purely so exporters can timestamp
   snapshots consistently under *either* simulated or wall time; nothing in
   this module calls ``time.time()`` (lint rule NF002 territory).

3. **Pull over push.**  Components already keep counters
   (:class:`~repro.simulator.queues.QueueStats`, the access router's
   ``counters`` dict, :class:`~repro.core.ratelimiter.RateLimiterStats`).
   The cheapest instrument is therefore a *callback gauge*
   (:meth:`MetricsRegistry.watch`) evaluated only at collection time —
   zero per-packet cost even when enabled.  Direct ``inc()``/``observe()``
   instruments exist for paths that have no pre-existing counter (the live
   policer, exporters, tests).

Label sets are plain ``dict``\\ s; ``counter(name, labels={...})`` returns
the same child for the same ``(name, labels)`` pair, Prometheus-style.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "get_registry",
    "set_registry",
    "use_registry",
    "DEFAULT_BUCKETS",
]

#: Fixed default histogram buckets (seconds-ish scale; callers override).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Dict[str, Any]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def collect(self) -> float:
        return self.value


class Gauge:
    """A value that can go up, down, or be computed on demand."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = (), help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` at collection time instead of storing a value."""
        self._fn = fn

    def collect(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self.value


class Histogram:
    """Fixed-bucket histogram: cumulative bucket counts plus sum/count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.labels = labels
        self.help = help
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def collect(self) -> float:
        return float(self.count)


class _NullInstrument:
    """Shared no-op instrument handed out by disabled registries.

    Implements the union of the three instrument surfaces so call sites can
    hold one without isinstance checks; every mutator is a no-op.
    """

    name = ""
    labels: LabelSet = ()
    help = ""
    kind = "null"
    value = 0.0
    sum = 0.0
    count = 0
    buckets: Tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative(self) -> List[Tuple[float, int]]:
        return []

    def collect(self) -> float:
        return 0.0


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class MetricsRegistry:
    """A set of named, label-keyed instruments.

    ``enabled=False`` turns every factory into a return of the shared null
    instrument — the fast path that keeps disabled telemetry free.  The
    optional ``clock`` is only consulted by exporters (to timestamp
    snapshots); the registry itself never reads time.
    """

    def __init__(self, enabled: bool = True, clock: Optional[Any] = None) -> None:
        self.enabled = enabled
        self.clock = clock
        self._instruments: Dict[Tuple[str, LabelSet], Any] = {}
        self._lock = threading.Lock()

    # -- factories ---------------------------------------------------------
    def _get_or_make(self, name: str, labels: LabelSet, factory: Callable[[], Any]) -> Any:
        key = (name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, Any]] = None) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        frozen = _freeze_labels(labels)
        return self._get_or_make(name, frozen, lambda: Counter(name, frozen, help))

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, Any]] = None) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        frozen = _freeze_labels(labels)
        return self._get_or_make(name, frozen, lambda: Gauge(name, frozen, help))

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, Any]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        frozen = _freeze_labels(labels)
        return self._get_or_make(
            name, frozen, lambda: Histogram(name, frozen, help, buckets))

    def watch(self, name: str, fn: Callable[[], float], help: str = "",
              labels: Optional[Dict[str, Any]] = None) -> Gauge:
        """A callback gauge: ``fn`` is evaluated at collection time only.

        This is the instrument components bridge their existing counters
        through — registration is a one-time cost at construction and the
        per-event cost is zero.
        """
        gauge = self.gauge(name, help=help, labels=labels)
        gauge.set_function(fn)
        return gauge

    # -- collection --------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        with self._lock:
            instruments = list(self._instruments.values())
        return iter(sorted(instruments, key=lambda i: (i.name, i.labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    @property
    def now(self) -> Optional[float]:
        """The registry clock's reading, if a clock was injected."""
        return self.clock.now if self.clock is not None else None


#: Process-global default registry: telemetry is opt-in, so it starts
#: disabled and every instrument it hands out is a shared null.
_default_registry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry components consult at construction."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-global default; returns the old one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


class use_registry:
    """Context manager: swap the global registry in and back out.

    Components capture instruments at *construction*, so the swap must wrap
    scenario construction (e.g. the whole ``execute_spec`` call), not just
    the simulation run.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: Optional[MetricsRegistry] = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self.registry)
        return self.registry

    def __exit__(self, *exc: Any) -> None:
        if self._previous is not None:
            set_registry(self._previous)
