"""Exporters: JSON snapshots, Prometheus text, and the ResultStore bridge.

Three consumers pull from a :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`snapshot` — a flat ``{name{labels}: value}`` dict for JSON-lines
  streams (the live policer's stats events build on this);
* :func:`prometheus_text` — the Prometheus exposition format served by the
  policer's ``--metrics-port`` endpoint and the dashboard's ``/metrics``;
* :func:`metric_rows` / :func:`commit_metric_rows` — per-point metric
  summaries flattened into dict rows and committed into a
  :class:`~repro.store.ResultStore` ``metric_rows`` table, so sweeps leave
  queryable telemetry next to their result rows.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "flat_name",
    "snapshot",
    "prometheus_text",
    "metric_rows",
    "commit_metric_rows",
]


def flat_name(name: str, labels: Any) -> str:
    """``name`` or ``name{k="v",...}`` for labeled instruments."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


def snapshot(registry: MetricsRegistry, now: Optional[float] = None) -> Dict[str, Any]:
    """Flat JSON-ready view of every instrument.

    Histograms flatten to ``name_count`` / ``name_sum``; the timestamp key
    is only present when the caller (or the registry's clock) provides one,
    keeping the exporter clock-agnostic.
    """
    out: Dict[str, Any] = {}
    ts = now if now is not None else registry.now
    if ts is not None:
        out["_ts"] = ts
    for instrument in registry:
        key = flat_name(instrument.name, instrument.labels)
        if isinstance(instrument, Histogram):
            out[f"{key}_count"] = instrument.count
            out[f"{key}_sum"] = instrument.sum
        else:
            out[key] = instrument.collect()
    return out


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format (text/plain version 0.0.4)."""
    lines: List[str] = []
    seen_help: set = set()
    for instrument in registry:
        if instrument.name not in seen_help:
            seen_help.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            kind = instrument.kind if instrument.kind != "null" else "untyped"
            lines.append(f"# TYPE {instrument.name} {kind}")
        if isinstance(instrument, Histogram):
            base = dict(instrument.labels)
            for bound, cumulative in instrument.cumulative():
                labels = tuple(sorted({**base, "le": _fmt(bound)}.items()))
                lines.append(
                    f"{flat_name(instrument.name + '_bucket', labels)} {cumulative}")
            lines.append(
                f"{flat_name(instrument.name + '_sum', instrument.labels)} "
                f"{_fmt(instrument.sum)}")
            lines.append(
                f"{flat_name(instrument.name + '_count', instrument.labels)} "
                f"{instrument.count}")
        else:
            lines.append(
                f"{flat_name(instrument.name, instrument.labels)} "
                f"{_fmt(instrument.collect())}")
    return "\n".join(lines) + "\n"


def metric_rows(registry: MetricsRegistry) -> List[Dict[str, Any]]:
    """One dict row per instrument: ``{name, labels, kind, value}``.

    Histogram rows carry ``value`` = count plus ``sum`` and the cumulative
    bucket counts, so a store reader can rebuild percentiles.
    """
    rows: List[Dict[str, Any]] = []
    for instrument in registry:
        row: Dict[str, Any] = {
            "name": instrument.name,
            "labels": dict(instrument.labels),
            "kind": instrument.kind,
            "value": instrument.collect(),
        }
        if isinstance(instrument, Histogram):
            row["sum"] = instrument.sum
            row["buckets"] = [
                {"le": _fmt(bound), "count": cumulative}
                for bound, cumulative in instrument.cumulative()
            ]
        rows.append(row)
    return rows


def commit_metric_rows(store: Any, experiment: str, cache_key: str,
                       registry: MetricsRegistry,
                       now: Optional[float] = None) -> int:
    """Flatten ``registry`` and append it to ``store`` (ResultStore bridge).

    Returns the number of metric rows written.  ``store`` needs only the
    ``put_metric_rows`` method, so tests can pass fakes.
    """
    rows = metric_rows(registry)
    store.put_metric_rows(experiment, cache_key, rows,
                          now=now if now is not None else registry.now)
    return len(rows)
