"""Flight recorder: an always-on forensic ring for the live policer.

A long-running policer that collapses — goodput falls through the SLO
floor, an unverified feedback slips through, an exception kills the drain
task — is undebuggable from counters alone: by the time an operator looks,
the interesting history is gone.  The flight recorder keeps that history
*continuously* in three bounded rings —

* recent finished spans (fed by a
  :class:`~repro.obs.spans.SpanRecorder` sink),
* recent structured log records (fed by a
  :class:`~repro.obs.log.JsonLinesLogger` sink),
* periodic metrics snapshots (pushed by the stats loop),

— and on a *trigger* writes everything, plus the trigger's own context, to
a single JSON file.  Triggers in the live policer: ``SIGUSR1`` (operator
request), the first ``unverified_admissions`` increment, a legit-share SLO
breach, and an unhandled exception in the drain path.  :func:`dump` is
first-trigger-wins per recorder: a storm of unverified admissions produces
one dump naming the first, not a disk full of files.

``runner flightdump <file>`` pretty-prints a dump: header, metrics delta,
log tail, and the recorded spans re-linked into causal trees via
:func:`~repro.obs.spans.build_trees`.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

from repro.obs.spans import build_trees, format_tree

__all__ = ["FlightRecorder", "cli_main", "format_dump", "redact"]

#: Dump fields whose *name* marks the value as key material.  The dump is a
#: forensic artifact that leaves the process (files, CI artifacts, bug
#: reports); NF102 proves key material never reaches the recorder's rings on
#: purpose, and this pass guarantees it even for values smuggled in via
#: span/log attrs the linter cannot see (dynamic twin of NF102).
_SENSITIVE_NAME_RE = re.compile(
    r"(^|_)(master|secret|key|token|mac|password|passwd|credential|"
    r"passphrase)(_|$|s(_|$))",
    re.IGNORECASE,
)

_REDACTED = "[REDACTED]"


def _is_sensitive(name: Any) -> bool:
    return isinstance(name, str) and bool(_SENSITIVE_NAME_RE.search(name))


def redact(value: Any, sensitive: bool = False) -> Any:
    """Deep-copy ``value`` with sensitive string/bytes leaves blanked.

    Only str/bytes leaves under a sensitive name are replaced: numeric
    telemetry like ``key_epoch`` or ``secret_epochs`` is shape, not
    material, and stays readable in the dump.
    """
    if isinstance(value, dict):
        return {
            key: redact(item, sensitive=sensitive or _is_sensitive(key))
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [redact(item, sensitive=sensitive) for item in value]
    if sensitive and isinstance(value, (str, bytes, bytearray)):
        return _REDACTED
    return value


class FlightRecorder:
    """Bounded rings of spans + logs + metrics snapshots, dumped on trigger."""

    def __init__(
        self,
        span_capacity: int = 2048,
        log_capacity: int = 1024,
        metrics_capacity: int = 64,
        wall: Callable[[], float] = time.time,
    ) -> None:
        self.spans: Deque[Dict[str, Any]] = deque(maxlen=span_capacity)
        self.logs: Deque[Dict[str, Any]] = deque(maxlen=log_capacity)
        self.metrics: Deque[Dict[str, Any]] = deque(maxlen=metrics_capacity)
        self._wall = wall
        #: Trigger name of the first dump, ``None`` until one fires.
        self.triggered: Optional[str] = None
        #: Path the dump was written to.
        self.dump_path: Optional[str] = None

    # -- ring feeds (sinks) -------------------------------------------------
    def record_span(self, span: Dict[str, Any]) -> None:
        self.spans.append(span)

    def record_log(self, record: Dict[str, Any]) -> None:
        self.logs.append(record)

    def record_metrics(self, snapshot: Dict[str, Any]) -> None:
        self.metrics.append(snapshot)

    # -- dumping ------------------------------------------------------------
    def payload(self, trigger: str,
                context: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The forensic record as a JSON-safe dict (no file written).

        Everything passes through :func:`redact` on the way out: the rings
        may hold whatever the instruments recorded, but the dump never
        carries key material.
        """
        return {
            "event": "flight_dump",
            "trigger": trigger,
            "dumped_at": round(self._wall(), 6),
            "context": redact(context or {}),
            "spans": redact(list(self.spans)),
            "logs": redact(list(self.logs)),
            "metrics_snapshots": redact(list(self.metrics)),
        }

    def dump(self, path: str, trigger: str,
             context: Optional[Dict[str, Any]] = None) -> Optional[str]:
        """Write the forensic file once; later triggers are no-ops.

        Returns the path on the first call, ``None`` afterwards.  Write
        failures are swallowed after marking the recorder triggered — the
        flight recorder must never take the process down with it.
        """
        if self.triggered is not None:
            return None
        self.triggered = trigger
        payload = self.payload(trigger, context=context)
        try:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, sort_keys=True, default=repr)
                fh.write("\n")
        except OSError:
            return None
        self.dump_path = path
        return path


# ---------------------------------------------------------------------------
# ``runner flightdump`` — pretty-print a dump file
# ---------------------------------------------------------------------------

def _metric_lines(snapshots: List[Dict[str, Any]], limit: int) -> List[str]:
    """First-vs-last snapshot comparison: the metrics that actually moved."""
    if not snapshots:
        return ["  (no metrics snapshots recorded)"]
    first, last = snapshots[0], snapshots[-1]
    moved = []
    for key in sorted(last):
        if key.startswith("_"):
            continue
        before, after = first.get(key), last.get(key)
        if isinstance(after, (int, float)) and before != after:
            moved.append(f"  {key}: {before} -> {after}")
    if not moved:
        return ["  (no metric moved between the first and last snapshot)"]
    if len(moved) > limit:
        moved = moved[:limit] + [f"  ... {len(moved) - limit} more"]
    return moved


def format_dump(payload: Dict[str, Any], limit: int = 20) -> str:
    """Human-readable rendering of one flight-recorder dump."""
    lines = [
        f"flight dump: trigger={payload.get('trigger', '?')} "
        f"at {payload.get('dumped_at', '?')}",
    ]
    context = payload.get("context") or {}
    for key in sorted(context):
        lines.append(f"  context.{key} = {context[key]!r}")

    snapshots = payload.get("metrics_snapshots") or []
    lines.append(f"\nmetrics ({len(snapshots)} snapshot(s); moved values):")
    lines.extend(_metric_lines(snapshots, limit))

    logs = payload.get("logs") or []
    lines.append(f"\nlog tail ({len(logs)} record(s)):")
    for record in logs[-limit:]:
        ts = record.get("ts", "-")
        level = record.get("level", "?")
        event = record.get("event", "?")
        rest = {k: v for k, v in record.items()
                if k not in ("ts", "level", "event", "logger")}
        lines.append(f"  {ts} [{level}] {event} {json.dumps(rest, sort_keys=True, default=repr)}")

    spans = payload.get("spans") or []
    trees = build_trees(spans)
    lines.append(f"\nspans ({len(spans)} recorded, {len(trees)} trace(s)):")
    for tree in trees[:limit]:
        lines.append(format_tree(tree))
    if len(trees) > limit:
        lines.append(f"... {len(trees) - limit} more trace(s)")
    return "\n".join(lines)


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner flightdump",
        description="Pretty-print a live-policer flight-recorder dump.",
    )
    parser.add_argument("dump", help="path to a flight-recorder JSON dump")
    parser.add_argument("--limit", type=int, default=20,
                        help="max log lines / span trees to print (default 20)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="re-emit the dump as indented JSON instead")
    args = parser.parse_args(argv)

    try:
        with open(args.dump, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"flightdump: cannot read {args.dump}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(payload, dict) or payload.get("event") != "flight_dump":
        print(f"flightdump: {args.dump} is not a flight-recorder dump",
              file=sys.stderr)
        return 1

    try:
        if args.as_json:
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(format_dump(payload, limit=args.limit))
    except BrokenPipeError:
        # Piping into `head` closes stdout early; that is not an error.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
