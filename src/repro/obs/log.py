"""Structured JSON-lines event logging with trace/span correlation.

Before this module, every live process wrote its own ad-hoc JSON dicts to
stdout (``serve.py``/``loadgen.py`` ``_emit`` helpers) and the worker fleet
reported nothing machine-readable at all.  :class:`JsonLinesLogger` is the
one emitter they all share:

* **One record shape.**  Every line is a JSON object with ``ts`` (wall
  seconds), ``event``, ``level``, and ``logger``; when the logger holds an
  injected clock the record also carries ``sim_ts`` — the telemetry clock
  reading, which for a :class:`~repro.runtime.clock.WallClock` coincides
  with wall time and for a simulation clock is simulated seconds.
* **Correlation built in.**  Pass ``span=`` (a
  :class:`~repro.obs.spans.Span` or
  :class:`~repro.obs.spans.SpanContext`) and the record gains the
  ``trace``/``span``/``parent`` id fields, so ``runner trace --spans`` can
  stitch log lines from different processes into one causal tree.
* **Clock discipline.**  Wall time is read through the injected ``wall``
  callable (defaulting to ``time.time``), never inline — the same seam the
  rest of the codebase uses so simulated runs stay reproducible.
* **Tee-able.**  ``add_sink`` registers callables that observe every
  record — the flight recorder's ring rides on this.
* **stdlib bridge.**  :func:`bridge_stdlib` forwards ``logging`` records
  (e.g. :mod:`repro.experiments.sweep`'s import warnings) into the same
  stream, so a process has one log, not two formats.

The writer is line-buffered JSON on a plain text stream; ``emit`` never
raises on serialization surprises (non-JSON values are ``repr``-ed), because
losing a process to its own telemetry is the one failure mode a logger must
not have.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Callable, Dict, IO, List, Optional, Union

from repro.obs.spans import Span, SpanContext

__all__ = [
    "JsonLinesLogger",
    "StdlibBridgeHandler",
    "bridge_stdlib",
]

_LEVELS = ("debug", "info", "warning", "error")


class JsonLinesLogger:
    """Write structured events as JSON lines to a text stream."""

    def __init__(
        self,
        stream: Optional[IO[str]] = None,
        clock: Optional[Any] = None,
        name: str = "repro",
        wall: Callable[[], float] = time.time,
        min_level: str = "debug",
    ) -> None:
        if min_level not in _LEVELS:
            raise ValueError(f"unknown level {min_level!r}; one of {_LEVELS}")
        self._stream = stream if stream is not None else sys.stdout
        self.clock = clock
        self.name = name
        self._wall = wall
        self._threshold = _LEVELS.index(min_level)
        self._sinks: List[Callable[[Dict[str, Any]], None]] = []
        self.emitted = 0

    # -- core emission ------------------------------------------------------
    def emit(
        self,
        event: str,
        level: str = "info",
        span: Optional[Union[Span, SpanContext]] = None,
        extra: Optional[Dict[str, Any]] = None,
        **fields: Any,
    ) -> Optional[Dict[str, Any]]:
        """Write one record; returns it (or ``None`` when level-filtered).

        ``extra`` merges a whole dict into the record — the escape hatch for
        payload keys (``span``, ``level``, …) that shadow keyword parameters.
        """
        if _LEVELS.index(level) < self._threshold:
            return None
        record: Dict[str, Any] = {
            "ts": round(self._wall(), 6),
            "level": level,
            "event": event,
            "logger": self.name,
        }
        if self.clock is not None:
            record["sim_ts"] = round(float(self.clock.now), 6)
        if span is not None:
            context = span.context if isinstance(span, Span) else span
            record.update(context.ids_dict())
        if extra:
            for key, value in extra.items():
                if key not in ("ts", "event", "logger"):
                    record[key] = value
        record.update(fields)
        self.emitted += 1
        for sink in self._sinks:
            sink(record)
        try:
            line = json.dumps(record, sort_keys=True, default=repr,
                              allow_nan=False)
        except ValueError:
            line = json.dumps({k: repr(v) for k, v in record.items()},
                              sort_keys=True)
        self._stream.write(line + "\n")
        self._stream.flush()
        return record

    # -- level conveniences -------------------------------------------------
    def debug(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="debug", **fields)

    def info(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="info", **fields)

    def warning(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="warning", **fields)

    def error(self, event: str, **fields: Any) -> Optional[Dict[str, Any]]:
        return self.emit(event, level="error", **fields)

    def span_record(self, span: Union[Span, Dict[str, Any]]) -> None:
        """Emit one finished span as an ``{"event": "span"}`` record.

        Wire this as a :class:`~repro.obs.spans.SpanRecorder` sink
        (``recorder.add_sink(log.span_record)``) and every process's log
        doubles as its span export — the input ``runner trace --spans``
        stitches trees from.
        """
        fields = span.to_dict() if isinstance(span, Span) else dict(span)
        fields.setdefault("process", self.name)
        # The span dict's own "span" id key would collide with emit()'s
        # span= keyword, so it rides in via extra= instead.
        self.emit("span", level="debug", extra=fields)

    # -- tee ----------------------------------------------------------------
    def add_sink(self, sink: Callable[[Dict[str, Any]], None]) -> None:
        """Register a callable that observes every emitted record."""
        self._sinks.append(sink)


class StdlibBridgeHandler(logging.Handler):
    """A ``logging.Handler`` that forwards records into a JsonLinesLogger."""

    def __init__(self, logger: JsonLinesLogger,
                 level: int = logging.WARNING) -> None:
        super().__init__(level=level)
        self.target = logger

    def emit(self, record: logging.LogRecord) -> None:
        level = record.levelname.lower()
        if level not in _LEVELS:
            level = "error" if record.levelno >= logging.ERROR else "info"
        try:
            message = record.getMessage()
        except Exception:  # a bad %-format must not kill the process
            message = record.msg if isinstance(record.msg, str) else repr(record.msg)
        self.target.emit("stdlib_log", level=level, message=message,
                         stdlib_logger=record.name)


def bridge_stdlib(
    logger: JsonLinesLogger,
    name: str = "repro",
    level: int = logging.WARNING,
) -> StdlibBridgeHandler:
    """Attach (and return) a bridge handler on the named stdlib logger.

    Call ``logging.getLogger(name).removeHandler(handler)`` — or just let
    the process exit — to detach; the handler holds no other state.
    """
    handler = StdlibBridgeHandler(logger, level=level)
    stdlib_logger = logging.getLogger(name)
    stdlib_logger.addHandler(handler)
    if stdlib_logger.level == logging.NOTSET or stdlib_logger.level > level:
        stdlib_logger.setLevel(level)
    return handler
