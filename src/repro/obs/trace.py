"""Packet-path tracing: a bounded ring buffer of reasoned decision events.

Every decision point on the packet path — access-router policing, rate
limiting, bottleneck stamping, queue drops, live delivery — can emit one
:class:`TraceEvent` naming *what happened to which packet and why* (a
:class:`ReasonCode`).  Tracing is off by default: components capture the
active tracer **at construction** (``self._tracer = active_tracer()``), so
the per-packet cost when disabled is a single ``is not None`` test at the
cold decision points and nothing at all on the enqueue/dequeue fast path.

The buffer is a ``deque(maxlen=...)``: a long simulation or a live policer
keeps the most recent ``capacity`` events and never grows without bound.

Packets are identified by :attr:`~repro.simulator.packet.Packet.uid`
(a process-unique monotone int), so a packet's full path can be
reconstructed from the buffer even after the object is garbage collected.
"""

from __future__ import annotations

from collections import Counter, deque
from enum import Enum
from typing import Any, Deque, Dict, Iterable, List, NamedTuple, Optional

__all__ = [
    "ReasonCode",
    "TraceEvent",
    "PacketTracer",
    "active_tracer",
    "set_tracer",
    "use_tracer",
]


class ReasonCode(Enum):
    """Why a packet was admitted, demoted, delayed, or dropped."""

    # -- admissions ------------------------------------------------------
    ADMITTED_REQUEST = "ADMITTED_REQUEST"        # request channel, tokens paid
    ADMITTED_NOP = "ADMITTED_NOP"                # valid nop feedback, unpoliced
    ADMITTED_REGULAR = "ADMITTED_REGULAR"        # mon feedback, limiter passed
    RELEASED = "RELEASED"                        # leaky bucket released a cached packet
    DELIVERED = "DELIVERED"                      # live policer transmitted the packet
    # -- demotions / delays ---------------------------------------------
    DEMOTED_LEGACY = "DEMOTED_LEGACY"            # no NetFence header -> legacy channel
    UNVERIFIED_FEEDBACK = "UNVERIFIED_FEEDBACK"  # forged/invalid feedback -> request channel
    MAC_STALE = "MAC_STALE"                      # feedback failed the freshness window
    RATE_LIMITED = "RATE_LIMITED"                # cached in a per-(sender,link) leaky bucket
    STAMPED_DECR = "STAMPED_DECR"                # bottleneck stamped L-down feedback
    # -- drops -----------------------------------------------------------
    DROP_TAIL = "DROP_TAIL"                      # queue over byte capacity
    DROP_RED = "DROP_RED"                        # RED early/forced drop
    DROP_EVICTED = "DROP_EVICTED"                # lower-priority victim evicted
    DROP_NO_CHANNEL = "DROP_NO_CHANNEL"          # classifier named an unknown channel
    DROP_REQUEST_TOKENS = "DROP_REQUEST_TOKENS"  # priority tokens exhausted (Fig. 15)
    DROP_CACHE_DELAY = "DROP_CACHE_DELAY"        # caching delay too long (Fig. 16)
    DROP_POLICED = "DROP_POLICED"                # policy chain dropped the packet
    DROP_UNDELIVERABLE = "DROP_UNDELIVERABLE"    # live policer: destination unknown

    @property
    def is_drop(self) -> bool:
        return self.value.startswith("DROP_")


#: Queue-level drop reason keys (QueueStats) -> trace reason codes.
QUEUE_DROP_REASONS: Dict[str, ReasonCode] = {
    "tail": ReasonCode.DROP_TAIL,
    "early": ReasonCode.DROP_RED,
    "evicted": ReasonCode.DROP_EVICTED,
    "other": ReasonCode.DROP_NO_CHANNEL,
}


class TraceEvent(NamedTuple):
    """One reasoned decision about one packet.

    A ``NamedTuple`` rather than a dataclass on purpose: a frozen dataclass
    pays one ``object.__setattr__`` per field per event, which dominates
    ``emit()`` at hot-path emission rates (~90k events per fig12 point).
    """

    seq: int                      # global emission order
    ts: Optional[float]           # clock reading where the emitter has one
    point: str                    # where: "access:Ra", "queue:red", "serve:deliver", ...
    reason: ReasonCode
    uid: int
    src: str
    dst: str
    ptype: str
    flow: Optional[str]
    detail: str = ""

    def format(self) -> str:
        ts = f"t={self.ts:.6f}" if self.ts is not None else "t=-"
        detail = f" ({self.detail})" if self.detail else ""
        return (f"#{self.seq} {ts} [{self.point}] {self.src}->{self.dst} "
                f"{self.ptype} uid={self.uid} {self.reason.value}{detail}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq, "ts": self.ts, "point": self.point,
            "reason": self.reason.value, "uid": self.uid, "src": self.src,
            "dst": self.dst, "ptype": self.ptype, "flow": self.flow,
            "detail": self.detail,
        }


#: ``packet.ptype`` -> display string memo.  The ptype population is a tiny
#: closed set (one enum, plus the odd plain string from runtime shims), so
#: this stays a handful of entries while saving an isinstance + enum
#: ``.value`` descriptor lookup per event on the emission hot path.
_PTYPE_STR: Dict[Any, str] = {}


class PacketTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0  # total, including events the ring has evicted

    def emit(self, point: str, reason: ReasonCode, packet: Any,
             ts: Optional[float] = None, detail: str = "") -> None:
        """Record one decision about ``packet`` (anything Packet-shaped)."""
        self.emitted = seq = self.emitted + 1
        ptype = packet.ptype
        label = _PTYPE_STR.get(ptype)
        if label is None:
            label = ptype.value if isinstance(ptype, Enum) else str(ptype)
            _PTYPE_STR[ptype] = label
        self.events.append(TraceEvent(
            seq, ts, point, reason, packet.uid, packet.src,
            packet.dst, label, getattr(packet, "flow_id", None), detail,
        ))

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def by_uid(self, uid: int) -> List[TraceEvent]:
        """A packet's full recorded path, in emission order."""
        return [e for e in self.events if e.uid == uid]

    def matching(self, follow: Optional[str] = None,
                 reasons: Optional[Iterable[ReasonCode]] = None) -> List[TraceEvent]:
        """Events filtered by endpoint/flow substring and/or reason set."""
        wanted = set(reasons) if reasons is not None else None
        out = []
        for event in self.events:
            if wanted is not None and event.reason not in wanted:
                continue
            if follow is not None and follow not in (
                    event.src, event.dst, event.flow):
                continue
            out.append(event)
        return out

    def reason_counts(self) -> Dict[str, int]:
        """Reason -> occurrences among buffered events, descending."""
        counts = Counter(e.reason.value for e in self.events)
        return dict(counts.most_common())

    def dropped_uids(self) -> List[int]:
        """uids with at least one DROP_* event, in first-drop order."""
        seen: List[int] = []
        for event in self.events:
            if event.reason.is_drop and event.uid not in seen:
                seen.append(event.uid)
        return seen


#: Process-global tracer; ``None`` means tracing is off (the default).
_active_tracer: Optional[PacketTracer] = None


def active_tracer() -> Optional[PacketTracer]:
    """The tracer components capture at construction (usually ``None``)."""
    return _active_tracer


def set_tracer(tracer: Optional[PacketTracer]) -> Optional[PacketTracer]:
    """Install (or clear, with ``None``) the global tracer; returns the old one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


class use_tracer:
    """Context manager installing a tracer around scenario construction."""

    def __init__(self, tracer: PacketTracer) -> None:
        self.tracer = tracer
        self._previous: Optional[PacketTracer] = None

    def __enter__(self) -> PacketTracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc: Any) -> None:
        set_tracer(self._previous)
