"""``runner trace`` — replay one grid point with packet tracing switched on.

Runs a single :class:`~repro.experiments.sweep.ScenarioSpec` in-process with
a :class:`~repro.obs.trace.PacketTracer` installed, then prints a reasoned
reconstruction of what happened to packets: a reason-code census, and the
full recorded path of a chosen packet (by ``--uid``, by ``--follow``
endpoint/flow substring, or — by default — the first packet that was
dropped).  With ``--metrics-store`` the run also executes under an enabled
:class:`~repro.obs.metrics.MetricsRegistry` and commits the per-point metric
summary into a :class:`~repro.store.result_store.ResultStore`.

``runner trace --spans LOG [LOG ...]`` is the cross-process mode: instead
of re-running anything it reads ``{"event": "span"}`` records out of one or
more JSON-lines logs — typically a ``runner serve --json --spans`` log and
a ``runner loadgen --json --spans`` log from the same session — and
re-links them into causal trees with
:func:`~repro.obs.spans.build_trees`, so one packet's journey shows up as
one tree even though its spans were recorded by different processes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.export import commit_metric_rows
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import build_trees, format_tree, parse_span_id
from repro.obs.trace import PacketTracer, ReasonCode, TraceEvent, use_tracer

__all__ = ["cli_main"]


def _read_span_records(paths: Sequence[str]) -> List[Dict[str, Any]]:
    """All span records from the given JSON-lines logs, start-time order."""
    records: List[Dict[str, Any]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict) and record.get("event") == "span":
                    records.append(record)
    records.sort(key=lambda r: (r.get("start_ts") is None,
                                r.get("start_ts") or 0.0))
    return records


def _cmd_spans(argv: Sequence[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="runner trace --spans",
        description="Stitch span records from JSON-lines logs into causal trees.",
    )
    parser.add_argument("logs", nargs="+", metavar="LOG",
                        help="JSON-lines log files (serve/loadgen/worker --json)")
    parser.add_argument("--trace-id", default=None, metavar="HEX",
                        help="only show this trace")
    parser.add_argument("--cross-process-only", action="store_true",
                        help="only show traces spanning more than one process")
    parser.add_argument("--limit", type=int, default=20,
                        help="max trees to print (default 20)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the trees as JSON instead of text")
    args = parser.parse_args(argv)

    try:
        records = _read_span_records(args.logs)
    except OSError as exc:
        print(f"trace: cannot read log: {exc}", file=sys.stderr)
        return 2
    if args.trace_id is not None:
        wanted = parse_span_id(args.trace_id)
        records = [r for r in records
                   if "trace" in r and parse_span_id(r["trace"]) == wanted]
    trees = build_trees(records)

    def processes(node: Dict[str, Any]) -> set:
        out = {node["span"].get("process")} - {None}
        for child in node["children"]:
            out |= processes(child)
        return out

    by_procs = [(tree, processes(tree)) for tree in trees]
    cross = [tree for tree, procs in by_procs if len(procs) > 1]
    if args.cross_process_only:
        trees = cross

    if args.as_json:
        json.dump({
            "span_records": len(records),
            "traces": len(by_procs),
            "cross_process_traces": len(cross),
            "trees": trees[: args.limit],
        }, sys.stdout, sort_keys=True)
        print()
        return 0

    print(f"trace: {len(records)} span records, {len(by_procs)} trace(s), "
          f"{len(cross)} crossing processes")
    for tree in trees[: args.limit]:
        print(format_tree(tree))
    if len(trees) > args.limit:
        print(f"... {len(trees) - args.limit} more (raise --limit)")
    return 0


def _parse_reasons(raw: Optional[str]) -> Optional[List[ReasonCode]]:
    if not raw:
        return None
    out = []
    for token in raw.split(","):
        token = token.strip().upper()
        if not token:
            continue
        try:
            out.append(ReasonCode[token])
        except KeyError:
            valid = ", ".join(r.name for r in ReasonCode)
            raise ValueError(f"unknown reason code {token!r}; one of: {valid}")
    return out or None


def _pick_path(tracer: PacketTracer, uid: Optional[int],
               follow: Optional[str]) -> List[TraceEvent]:
    """The packet path to print: explicit uid > follow filter > first drop."""
    if uid is not None:
        return tracer.by_uid(uid)
    if follow is not None:
        return tracer.matching(follow=follow)
    dropped = tracer.dropped_uids()
    if dropped:
        return tracer.by_uid(dropped[0])
    return []


def cli_main(argv: Optional[Sequence[str]] = None,
             experiments: Optional[Dict[str, Any]] = None) -> int:
    if argv is not None and "--spans" in argv:
        rest = [a for a in argv if a != "--spans"]
        return _cmd_spans(rest)
    parser = argparse.ArgumentParser(
        prog="runner trace",
        description="Re-run one grid point with packet-path tracing enabled.",
    )
    parser.add_argument("experiment",
                        help="experiment name (as in 'runner list')")
    parser.add_argument("--point", type=int, default=0,
                        help="grid point index to trace (default 0)")
    parser.add_argument("--quick", action="store_true",
                        help="use the experiment's --quick grid")
    parser.add_argument("--follow", default=None, metavar="WHO",
                        help="print events whose src/dst/flow matches WHO")
    parser.add_argument("--uid", type=int, default=None,
                        help="print the full path of this packet uid")
    parser.add_argument("--reasons", default=None, metavar="CODES",
                        help="comma-separated ReasonCode filter for --follow "
                             "output (e.g. DROP_RED,DROP_TAIL)")
    parser.add_argument("--capacity", type=int, default=100_000,
                        help="trace ring-buffer capacity (default 100000)")
    parser.add_argument("--limit", type=int, default=40,
                        help="max events to print per section (default 40)")
    parser.add_argument("--metrics-store", default=None, metavar="PATH",
                        help="also run with metrics enabled and commit the "
                             "per-point metric summary to this result store")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the trace as JSON instead of text")
    args = parser.parse_args(argv)

    if experiments is None:
        from repro.experiments.runner import EXPERIMENTS
        experiments = EXPERIMENTS
    experiment = experiments.get(args.experiment)
    if experiment is None:
        print(f"trace: unknown experiment {args.experiment!r} "
              f"(try: {', '.join(sorted(experiments))})", file=sys.stderr)
        return 2
    try:
        reasons = _parse_reasons(args.reasons)
    except ValueError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2

    specs = experiment.build_grid(args.quick)
    if not 0 <= args.point < len(specs):
        print(f"trace: --point {args.point} out of range "
              f"(grid has {len(specs)} points)", file=sys.stderr)
        return 2
    spec = specs[args.point]

    from repro.experiments.sweep import execute_spec

    tracer = PacketTracer(capacity=args.capacity)
    registry = MetricsRegistry(enabled=True)
    with use_tracer(tracer):
        if args.metrics_store:
            with use_registry(registry):
                result = execute_spec(spec, capture_errors=True)
        else:
            result = execute_spec(spec, capture_errors=True)
    if result.error is not None:
        print(f"trace: point failed:\n{result.error}", file=sys.stderr)
        return 1

    if args.metrics_store:
        from repro.store import ResultStore

        store = ResultStore(args.metrics_store)
        written = commit_metric_rows(store, spec.experiment, spec.cache_key(),
                                     registry)
        print(f"trace: committed {written} metric rows to "
              f"{args.metrics_store}", file=sys.stderr)

    path = _pick_path(tracer, args.uid, args.follow)
    if args.follow is not None and reasons is not None:
        path = [e for e in path if e.reason in reasons]

    if args.as_json:
        payload = {
            "spec": spec.describe(),
            "point": args.point,
            "events_recorded": len(tracer),
            "events_emitted": tracer.emitted,
            "reason_counts": tracer.reason_counts(),
            "dropped_uids": tracer.dropped_uids()[: args.limit],
            "path": [e.to_dict() for e in path[: args.limit]],
        }
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0

    print(f"trace: {spec.describe()}")
    print(f"trace: {len(tracer)} events buffered "
          f"({tracer.emitted} emitted, capacity {tracer.capacity})")
    counts = tracer.reason_counts()
    if counts:
        width = max(len(name) for name in counts)
        print("\nreason counts:")
        for name, count in counts.items():
            print(f"  {name:<{width}}  {count}")
    else:
        print("\nno events recorded — did the scenario emit any decisions?")

    if path:
        if args.uid is not None:
            title = f"path of uid={args.uid}"
        elif args.follow is not None:
            title = f"events matching {args.follow!r}"
        else:
            title = f"path of first dropped packet (uid={path[0].uid})"
        print(f"\n{title}:")
        for event in path[: args.limit]:
            print(f"  {event.format()}")
        if len(path) > args.limit:
            print(f"  ... {len(path) - args.limit} more "
                  f"(raise --limit to see them)")
    elif args.uid is not None or args.follow is not None:
        print("\nno matching events")
    else:
        print("\nno dropped packets recorded")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
