"""Causal spans: trace contexts that survive process and socket boundaries.

:mod:`repro.obs.trace` answers *what happened to a packet inside one
process*; this module answers *which operation caused which* across the
distributed pieces of the system — loadgen → policer over UDP, submitter →
worker fleet over the shared queue, sweep driver → point execution.

The model is deliberately tiny (a strict subset of W3C trace-context /
OpenTelemetry semantics):

* :class:`SpanContext` — the identity triple ``(trace_id, span_id,
  parent_id)``; 64-bit ints, ``parent_id == 0`` meaning "root".  It is a
  ``NamedTuple`` so the wire codec can carry it as three fixed-width
  integers and equality/canonicality are structural.
* :class:`Span` — one named, timed operation: a context plus start/end
  clock readings, a status, and optional attributes.
* :class:`SpanRecorder` — a bounded ``deque`` ring of *finished* spans with
  the same process-global ``active``/``set``/``use`` plumbing as
  :class:`~repro.obs.trace.PacketTracer`: components capture the recorder
  at construction, so the disabled-mode cost is one ``is not None`` test.

Clock discipline: the recorder never reads wall time itself.  Timestamps
come from an injected clock (anything with a ``.now`` float, i.e. the
:class:`~repro.runtime.clock.Clock` protocol) or are passed explicitly by
the caller; with neither, spans carry ``None`` timestamps and remain
causally ordered by their ids.

Cross-process stitching: every emitter writes finished spans as
``{"event": "span", ...}`` JSON-lines records (see
:meth:`Span.to_dict`); :func:`build_trees` re-links any iterable of such
records — typically the merged serve + loadgen logs — into per-trace trees
for ``runner trace --spans`` and the flight-recorder pretty-printer.
"""

from __future__ import annotations

import os
import random
from collections import deque
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Union,
)
from contextlib import contextmanager

__all__ = [
    "TRACE_KEY",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "active_span_recorder",
    "build_trees",
    "format_tree",
    "parse_span_id",
    "set_span_recorder",
    "span_id_str",
    "use_span_recorder",
]

#: ``Packet.headers`` key under which a :class:`SpanContext` rides a packet.
#: The wire codec (:mod:`repro.runtime.codec`) serializes this header — and
#: only this one besides the NetFence shim — so a context attached by a
#: loadgen sender is visible to the policer that admits the packet.
TRACE_KEY = "trace"

_ID_MASK = (1 << 64) - 1


def span_id_str(value: int) -> str:
    """Canonical textual form of a trace/span id (16 hex digits)."""
    return f"{value & _ID_MASK:016x}"


def parse_span_id(text: Union[str, int]) -> int:
    """Inverse of :func:`span_id_str`; also accepts already-int ids."""
    if isinstance(text, int):
        return text & _ID_MASK
    return int(text, 16) & _ID_MASK


class SpanContext(NamedTuple):
    """The propagated identity of one span: who am I, inside which trace,
    caused by whom.  ``parent_id == 0`` marks a trace root."""

    trace_id: int
    span_id: int
    parent_id: int = 0

    def child_of(self, span_id: int) -> "SpanContext":
        """A context for a new span caused by this one (same trace)."""
        return SpanContext(self.trace_id, span_id, self.span_id)

    def ids_dict(self) -> Dict[str, Optional[str]]:
        """The correlation fields every log record carries."""
        return {
            "trace": span_id_str(self.trace_id),
            "span": span_id_str(self.span_id),
            "parent": span_id_str(self.parent_id) if self.parent_id else None,
        }


class Span:
    """One named, timed operation within a trace.

    ``__slots__`` for the same reason :class:`~repro.obs.trace.TraceEvent`
    is a NamedTuple: span starts can sit on per-packet paths, and attribute
    dicts are allocated only when a caller actually attaches attributes.
    """

    __slots__ = ("name", "context", "start_ts", "end_ts", "status", "attrs")

    def __init__(
        self,
        name: str,
        context: SpanContext,
        start_ts: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.context = context
        self.start_ts = start_ts
        self.end_ts: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs

    @property
    def duration_s(self) -> Optional[float]:
        if self.start_ts is None or self.end_ts is None:
            return None
        return self.end_ts - self.start_ts

    def set_attr(self, key: str, value: Any) -> None:
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-lines shape emitted to logs and flight dumps."""
        out: Dict[str, Any] = {"name": self.name}
        out.update(self.context.ids_dict())
        out.update(start_ts=self.start_ts, end_ts=self.end_ts,
                   status=self.status)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ids = self.context.ids_dict()
        return (f"Span({self.name!r}, trace={ids['trace']}, "
                f"span={ids['span']}, status={self.status!r})")


class SpanRecorder:
    """Bounded ring buffer of finished :class:`Span` objects.

    ``seed`` makes the id stream deterministic (tests, simulated sweeps);
    without one, ids are drawn from an OS-seeded stream so that concurrent
    processes — a policer and many loadgen hosts — never collide.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Optional[Any] = None,
        seed: Optional[int] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.clock = clock
        self.spans: Deque[Span] = deque(maxlen=capacity)
        self.started = 0
        self.finished = 0
        if seed is None:
            seed = int.from_bytes(os.urandom(8), "big")
        self._ids = random.Random(seed)
        self._sinks: List[Any] = []

    # -- id allocation ------------------------------------------------------
    def new_id(self) -> int:
        """A nonzero 64-bit id (0 is reserved for "no parent")."""
        value = 0
        while value == 0:
            value = self._ids.getrandbits(64)
        return value

    # -- clock plumbing -----------------------------------------------------
    def _ts(self, ts: Optional[float]) -> Optional[float]:
        if ts is not None:
            return ts
        if self.clock is not None:
            return float(self.clock.now)
        return None

    # -- lifecycle ----------------------------------------------------------
    def start(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        trace_id: Optional[int] = None,
        ts: Optional[float] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span.  With ``parent`` the new span joins that trace;
        otherwise it roots a new trace (or joins an explicit ``trace_id``)."""
        self.started += 1
        span_id = self.new_id()
        if parent is not None:
            context = (parent.context if isinstance(parent, Span)
                       else parent).child_of(span_id)
        else:
            context = SpanContext(
                trace_id if trace_id is not None else self.new_id(), span_id)
        return Span(name, context, start_ts=self._ts(ts), attrs=attrs)

    def finish(self, span: Span, ts: Optional[float] = None,
               status: str = "ok") -> Span:
        """Close a span and commit it to the ring (and any sinks)."""
        span.end_ts = self._ts(ts)
        span.status = status
        self.finished += 1
        self.spans.append(span)
        for sink in self._sinks:
            sink(span.to_dict())
        return span

    def event(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        ts: Optional[float] = None,
        status: str = "ok",
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """An instantaneous span (start == end): one causal decision point.

        This is the per-packet form — the policer records admission and
        delivery as zero-duration children of the context the packet
        carried, so path latency lives in attributes, not span clocks that
        two machines would disagree about.
        """
        span = self.start(name, parent=parent, ts=ts, attrs=attrs)
        return self.finish(span, ts=span.start_ts, status=status)

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[Union[Span, SpanContext]] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """``with recorder.span("worker.execute") as s: ...`` — the span is
        finished on exit, with status ``"error"`` if the body raised."""
        span = self.start(name, parent=parent, attrs=attrs)
        try:
            yield span
        except BaseException:
            self.finish(span, status="error")
            raise
        self.finish(span)

    # -- sinks (flight recorder / log tee) ----------------------------------
    def add_sink(self, sink: Any) -> None:
        """Register a callable invoked with every finished span's dict."""
        self._sinks.append(sink)

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def by_trace(self, trace_id: int) -> List[Span]:
        return [s for s in self.spans if s.context.trace_id == trace_id]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [s.to_dict() for s in self.spans]


# ---------------------------------------------------------------------------
# Cross-process tree reconstruction
# ---------------------------------------------------------------------------

def build_trees(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Re-link span dicts (possibly from several processes' logs) into trees.

    Each input record needs at least ``trace`` and ``span`` ids (hex strings
    or ints, as :meth:`Span.to_dict` writes them).  Returns root nodes
    ``{"span": record, "children": [...]}``; a span whose parent never shows
    up in the input (lost log line, foreign process) is promoted to a root
    so nothing disappears silently.
    """
    nodes: Dict[tuple, Dict[str, Any]] = {}
    ordered: List[tuple] = []
    for record in records:
        if "trace" not in record or "span" not in record:
            continue
        key = (parse_span_id(record["trace"]), parse_span_id(record["span"]))
        if key in nodes:  # same span logged by two readers: keep the first
            continue
        nodes[key] = {"span": record, "children": []}
        ordered.append(key)

    roots: List[Dict[str, Any]] = []
    for key in ordered:
        node = nodes[key]
        parent_raw = node["span"].get("parent")
        parent_key = (key[0], parse_span_id(parent_raw)) if parent_raw else None
        if parent_key is not None and parent_key in nodes:
            nodes[parent_key]["children"].append(node)
        else:
            roots.append(node)

    def start_key(node: Dict[str, Any]) -> tuple:
        start = node["span"].get("start_ts")
        return (start is None, start if start is not None else 0.0)

    def sort_children(node: Dict[str, Any]) -> None:
        node["children"].sort(key=start_key)
        for child in node["children"]:
            sort_children(child)

    for root in roots:
        sort_children(root)
    roots.sort(key=lambda n: (parse_span_id(n["span"]["trace"]),) + start_key(n))
    return roots


def format_tree(root: Dict[str, Any]) -> str:
    """Human-readable indented rendering of one :func:`build_trees` root."""
    lines: List[str] = []

    def emit(node: Dict[str, Any], depth: int) -> None:
        span = node["span"]
        start = span.get("start_ts")
        end = span.get("end_ts")
        if start is not None and end is not None and end > start:
            timing = f" {1000.0 * (end - start):.3f}ms"
        elif start is not None:
            timing = f" @{start:.6f}"
        else:
            timing = ""
        status = span.get("status", "ok")
        flag = "" if status == "ok" else f" [{status}]"
        process = span.get("process")
        where = f" <{process}>" if process else ""
        attrs = span.get("attrs")
        detail = f" {attrs}" if attrs else ""
        lines.append(f"{'  ' * depth}{span.get('name', '?')}{where}"
                     f"{timing}{flag}{detail}")
        for child in node["children"]:
            emit(child, depth + 1)

    trace = span_id_str(parse_span_id(root["span"]["trace"]))
    lines.insert(0, f"trace {trace}:")
    emit(root, 1)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Process-global recorder (mirrors repro.obs.trace)
# ---------------------------------------------------------------------------

#: ``None`` means span recording is off (the default).
_active_recorder: Optional[SpanRecorder] = None


def active_span_recorder() -> Optional[SpanRecorder]:
    """The recorder components capture at construction (usually ``None``)."""
    return _active_recorder


def set_span_recorder(
    recorder: Optional[SpanRecorder],
) -> Optional[SpanRecorder]:
    """Install (or clear) the global recorder; returns the previous one."""
    global _active_recorder
    previous = _active_recorder
    _active_recorder = recorder
    return previous


class use_span_recorder:
    """Context manager installing a recorder around scenario construction."""

    def __init__(self, recorder: SpanRecorder) -> None:
        self.recorder = recorder
        self._previous: Optional[SpanRecorder] = None

    def __enter__(self) -> SpanRecorder:
        self._previous = set_span_recorder(self.recorder)
        return self.recorder

    def __exit__(self, *exc: Any) -> None:
        set_span_recorder(self._previous)
