"""Packets and the header stack.

NetFence distinguishes three packet types (§3.1 of the paper):

* **request** packets — used to bootstrap a connection and obtain congestion
  policing feedback; carry a priority level (§4.2).
* **regular** packets — normal data packets carrying (and subject to)
  congestion policing feedback.
* **legacy** packets — packets from non-NetFence senders; forwarded with the
  lowest priority.

A :class:`Packet` carries a stack of optional headers (Passport, NetFence,
capability, transport) in the ``headers`` mapping.  Header objects are plain
Python objects owned by the corresponding subsystem; the simulator itself only
cares about ``size_bytes`` and addressing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

_packet_ids = itertools.count(1)

#: Conventional sizes (bytes) used throughout the experiments.
DATA_PACKET_SIZE = 1500
TCP_IP_HEADER_SIZE = 40
ACK_PACKET_SIZE = 40
REQUEST_PACKET_SIZE = 92  # 40B TCP/IP + 28B NetFence + 24B Passport (§4.6)


class PacketType(Enum):
    """NetFence channel a packet belongs to."""

    REQUEST = "request"
    REGULAR = "regular"
    LEGACY = "legacy"


@dataclass(slots=True)
class Packet:
    """A network packet.

    ``__slots__`` keeps per-packet memory small and attribute access fast —
    packets are the single most-allocated object in a simulation run.

    Attributes:
        src: source host identifier.
        dst: destination host identifier.
        size_bytes: total on-wire size, including all headers.
        ptype: NetFence channel (request / regular / legacy).
        flow_id: identifier of the transport flow this packet belongs to.
        protocol: transport protocol name ("tcp", "udp", ...).
        headers: per-subsystem header objects, keyed by subsystem name
            (e.g. ``"netfence"``, ``"passport"``, ``"tcp"``).
        created_at: simulation time when the packet was created.
        priority: request-channel priority level (level-k, §4.2); only
            meaningful for request packets.
        src_as / dst_as: autonomous system numbers, filled by the topology.
    """

    src: str
    dst: str
    size_bytes: int = DATA_PACKET_SIZE
    ptype: PacketType = PacketType.REGULAR
    flow_id: str = ""
    protocol: str = "udp"
    headers: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    priority: int = 0
    src_as: Optional[str] = None
    dst_as: Optional[str] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def copy_for_reply(self, size_bytes: int = ACK_PACKET_SIZE) -> "Packet":
        """Create a reply packet (swapped addressing, empty headers)."""
        return Packet(
            src=self.dst,
            dst=self.src,
            size_bytes=size_bytes,
            ptype=self.ptype,
            flow_id=self.flow_id,
            protocol=self.protocol,
            src_as=self.dst_as,
            dst_as=self.src_as,
        )

    @property
    def is_request(self) -> bool:
        return self.ptype is PacketType.REQUEST

    @property
    def is_regular(self) -> bool:
        return self.ptype is PacketType.REGULAR

    @property
    def is_legacy(self) -> bool:
        return self.ptype is PacketType.LEGACY

    def get_header(self, name: str) -> Any:
        """Return the header object for ``name`` or ``None``."""
        return self.headers.get(name)

    def set_header(self, name: str, header: Any) -> None:
        """Attach (or replace) a header object."""
        self.headers[name] = header

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(uid={self.uid}, {self.src}->{self.dst}, {self.ptype.value}, "
            f"{self.size_bytes}B, flow={self.flow_id!r})"
        )
