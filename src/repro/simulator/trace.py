"""Measurement utilities: EWMA estimators and throughput/utilization monitors.

NetFence's attack detection uses exponentially weighted moving averages of a
link's utilization and packet loss rate (§4.3.1); the evaluation section
reports per-sender throughput, Jain's fairness index, and file transfer
times.  The classes here collect those measurements without perturbing the
simulated systems.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.simulator.engine import PeriodicTimer
from repro.simulator.link import Link
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.clock import Clock


class EWMA:
    """Exponentially weighted moving average: ``avg ← (1-w)·avg + w·sample``."""

    def __init__(self, weight: float = 0.1, initial: Optional[float] = None) -> None:
        if not 0 < weight <= 1:
            raise ValueError("weight must be in (0, 1]")
        self.weight = weight
        self.value: Optional[float] = initial

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = sample
        else:
            self.value = (1 - self.weight) * self.value + self.weight * sample
        return self.value

    def get(self, default: float = 0.0) -> float:
        return default if self.value is None else self.value


@dataclass
class FlowRecord:
    """Bytes delivered for one flow, plus first/last packet times."""

    bytes_received: int = 0
    packets_received: int = 0
    first_time: Optional[float] = None
    last_time: Optional[float] = None

    def record(self, packet: Packet, now: float) -> None:
        self.bytes_received += packet.size_bytes
        self.packets_received += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def throughput_bps(self, duration: Optional[float] = None) -> float:
        """Average goodput in bits per second."""
        if duration is None:
            if self.first_time is None or self.last_time is None:
                return 0.0
            duration = self.last_time - self.first_time
        if duration <= 0:
            return 0.0
        return self.bytes_received * 8.0 / duration


class ThroughputMonitor:
    """Tracks bytes delivered per sender (keyed by packet source).

    Attach it to a receiving host's ``default_agent`` path or call
    :meth:`record` from a sink agent.  Throughput is measured over the
    monitoring window ``[start_time, end_time]``.
    """

    def __init__(self, clock: "Clock", start_time: Optional[float] = None) -> None:
        self.clock = clock
        self.records: Dict[str, FlowRecord] = defaultdict(FlowRecord)
        #: Packets received before ``start_time`` are not counted.  Pass the
        #: measurement-window start up front (e.g. the experiment warmup) or
        #: call :meth:`start` when the window begins.
        self.start_time: Optional[float] = start_time
        self.end_time: Optional[float] = None

    def start(self) -> None:
        self.start_time = self.clock.now

    def start_at(self, time: float) -> None:
        """Begin the measurement window at an absolute simulation time."""
        self.start_time = time

    def stop(self) -> None:
        self.end_time = self.clock.now

    def record(self, packet: Packet) -> None:
        if self.start_time is not None and self.clock.now < self.start_time:
            return
        self.records[packet.src].record(packet, self.clock.now)

    def window(self) -> float:
        start = self.start_time or 0.0
        end = self.end_time if self.end_time is not None else self.clock.now
        return max(end - start, 1e-12)

    def throughput_bps(self, sender: str) -> float:
        record = self.records.get(sender)
        if record is None:
            return 0.0
        return record.bytes_received * 8.0 / self.window()

    def throughputs(self, senders: Optional[List[str]] = None) -> Dict[str, float]:
        names = senders if senders is not None else list(self.records)
        return {name: self.throughput_bps(name) for name in names}


class LinkMonitor:
    """Samples a link's utilization and loss rate once per interval.

    Produces time series that the experiments use to report bottleneck
    utilization (§6.3.2 reports > 90 % for NetFence, ~100 % for others).
    """

    def __init__(self, clock: "Clock", link: Link, interval: float = 1.0) -> None:
        self.clock = clock
        self.link = link
        self.interval = interval
        self.utilization_series: List[float] = []
        self.loss_series: List[float] = []
        self._last_bytes = 0
        self._last_drops = 0
        self._last_arrivals = 0
        self._timer = PeriodicTimer(clock, interval, self._sample)

    def start(self) -> None:
        self._last_bytes = self.link.bytes_delivered
        stats = self.link.queue.stats
        self._last_drops = stats.dropped
        self._last_arrivals = stats.arrivals
        self._timer.start()

    def stop(self) -> None:
        self._timer.stop()

    def _sample(self) -> None:
        delivered = self.link.bytes_delivered - self._last_bytes
        self._last_bytes = self.link.bytes_delivered
        utilization = delivered * 8.0 / (self.link.capacity_bps * self.interval)
        self.utilization_series.append(min(1.0, utilization))

        stats = self.link.queue.stats
        drops = stats.dropped - self._last_drops
        arrivals = stats.arrivals - self._last_arrivals
        self._last_drops = stats.dropped
        self._last_arrivals = stats.arrivals
        self.loss_series.append(drops / arrivals if arrivals else 0.0)

    @property
    def mean_utilization(self) -> float:
        if not self.utilization_series:
            return 0.0
        return sum(self.utilization_series) / len(self.utilization_series)

    @property
    def mean_loss_rate(self) -> float:
        if not self.loss_series:
            return 0.0
        return sum(self.loss_series) / len(self.loss_series)
