"""Discrete-event, packet-level network simulator substrate.

The paper evaluated NetFence with ns-2.  This package is a from-scratch
Python replacement that offers the abstractions NetFence needs:

* :mod:`repro.simulator.engine` — an event scheduler (the simulation clock).
* :mod:`repro.simulator.packet` — packets and the header stack.
* :mod:`repro.simulator.link` — point-to-point links with bandwidth and
  propagation delay.
* :mod:`repro.simulator.queues` — DropTail, RED, and multi-band priority
  queues.
* :mod:`repro.simulator.fairqueue` — Deficit Round Robin and two-level
  hierarchical fair queuing (used by the TVA+/StopIt/FQ baselines).
* :mod:`repro.simulator.node` — hosts and routers.
* :mod:`repro.simulator.routing` — static shortest-path routing.
* :mod:`repro.simulator.topology` — topology construction helpers
  (dumbbell and parking-lot topologies used in the paper's evaluation).
* :mod:`repro.simulator.trace` — EWMA estimators and throughput monitors.
"""

from repro.simulator.engine import Simulator, Event
from repro.simulator.packet import Packet, PacketType
from repro.simulator.link import Link
from repro.simulator.queues import DropTailQueue, REDQueue, PriorityChannelQueue
from repro.simulator.fairqueue import DRRQueue, HierarchicalFairQueue
from repro.simulator.node import Node, Host, Router
from repro.simulator.topology import Topology

__all__ = [
    "Simulator",
    "Event",
    "Packet",
    "PacketType",
    "Link",
    "DropTailQueue",
    "REDQueue",
    "PriorityChannelQueue",
    "DRRQueue",
    "HierarchicalFairQueue",
    "Node",
    "Host",
    "Router",
    "Topology",
]
