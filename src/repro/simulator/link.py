"""Point-to-point links with bandwidth, propagation delay, and a queue.

A :class:`Link` is unidirectional: it carries packets from ``src_node`` to
``dst_node``.  The :class:`repro.simulator.topology.Topology` helper creates
one link per direction so that duplex links behave as two independent
resources (as in ns-2).

Transmission model: when a packet reaches the head of the output queue, the
link is busy for ``size_bytes * 8 / capacity_bps`` seconds (serialization),
then the packet is delivered to ``dst_node.receive`` after ``delay_s``
seconds of propagation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, PacketQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simulator.node import Node


class Link:
    """A unidirectional link.

    Args:
        sim: the simulation engine.
        src_node: upstream node (owns the output queue).
        dst_node: downstream node (receives delivered packets).
        capacity_bps: link capacity in bits per second.
        delay_s: one-way propagation delay in seconds.
        queue: output queue; defaults to a DropTail queue sized to
            0.2 s × capacity (the paper's ``Qlim``, Fig. 3).
        name: optional human-readable identifier; defaults to
            ``"src->dst"``.  This is also the link identifier (``L``) that
            NetFence embeds in its congestion policing feedback.
    """

    def __init__(
        self,
        sim: Simulator,
        src_node: "Node",
        dst_node: "Node",
        capacity_bps: float,
        delay_s: float = 0.01,
        queue: Optional[PacketQueue] = None,
        name: Optional[str] = None,
    ) -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity_bps must be positive")
        if delay_s < 0:
            raise ValueError("delay_s cannot be negative")
        self.sim = sim
        self.src_node = src_node
        self.dst_node = dst_node
        self.capacity_bps = capacity_bps
        self.delay_s = delay_s
        if queue is None:
            qlim_bytes = max(int(0.2 * capacity_bps / 8), 2 * 1500)
            queue = DropTailQueue(capacity_bytes=qlim_bytes)
        self.queue = queue
        self.name = name or f"{src_node.name}->{dst_node.name}"
        self._busy = False
        self._poke_pending = False
        self.bytes_delivered = 0
        self.packets_delivered = 0
        self.bytes_offered = 0
        self.packets_offered = 0
        #: Optional per-packet trace hooks, called as ``tap(packet, link)``
        #: when a packet finishes serialization / is delivered downstream.
        #: ``None`` (the default) keeps the transmit path hook-free — the
        #: fast path is a single attribute test per packet.
        self.transmit_tap: Optional[Callable[[Packet, "Link"], None]] = None
        self.deliver_tap: Optional[Callable[[Packet, "Link"], None]] = None
        #: Cached once: whether the queue is rate-capped (exposes
        #: ``time_until_ready``), so the drain path skips the ``getattr``.
        self._time_until_ready = getattr(queue, "time_until_ready", None)
        #: Bound-method caches: one attribute load instead of two on the
        #: per-packet paths (the queue object is fixed for the link's
        #: lifetime; nothing in-tree ever swaps ``link.queue``).
        self._schedule_fast = sim.schedule_fast
        self._enqueue = queue.enqueue
        self._dequeue = queue.dequeue

    # -- transmission -------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Offer a packet to the link (called by the upstream node)."""
        self.bytes_offered += packet.size_bytes
        self.packets_offered += 1
        accepted = self._enqueue(packet)
        if accepted and not self._busy:
            self._start_next_transmission()

    def serialization_delay(self, packet: Packet) -> float:
        """Time to clock the packet onto the wire."""
        return packet.size_bytes * 8.0 / self.capacity_bps

    def _start_next_transmission(self) -> None:
        packet = self._dequeue()
        if packet is None:
            self._busy = False
            self._schedule_poke_if_needed()
            return
        self._busy = True
        # Inlined serialization_delay(); scheduled on the no-handle fast path
        # — transmission-end events are never cancelled.
        tx_time = packet.size_bytes * 8.0 / self.capacity_bps
        self._schedule_fast(tx_time, self._finish_transmission, (packet,))

    def _schedule_poke_if_needed(self) -> None:
        # Rate-capped queues (e.g. NetFence's 5 % request channel) can hold
        # packets while refusing to release one right now.  Ask the queue when
        # to try again so the link does not stall forever.
        time_until_ready = self._time_until_ready
        if time_until_ready is None or self._poke_pending or len(self.queue) == 0:
            return
        wait = time_until_ready()
        if wait is None:
            return
        self._poke_pending = True
        self.sim.schedule_fast(max(wait, 1e-6), self._poke)

    def _poke(self) -> None:
        self._poke_pending = False
        if not self._busy:
            self._start_next_transmission()

    def _finish_transmission(self, packet: Packet) -> None:
        self.bytes_delivered += packet.size_bytes
        self.packets_delivered += 1
        if self.transmit_tap is not None:
            self.transmit_tap(packet, self)
        # Delivery events are never cancelled either; with no deliver tap
        # attached, skip the _deliver wrapper frame and hand the packet
        # straight to the downstream node's receive.
        if self.deliver_tap is None:
            self._schedule_fast(self.delay_s, self.dst_node.receive, (packet, self))
        else:
            self._schedule_fast(self.delay_s, self._deliver, (packet,))
        self._start_next_transmission()

    def _deliver(self, packet: Packet) -> None:
        if self.deliver_tap is not None:
            self.deliver_tap(packet, self)
        self.dst_node.receive(packet, self)

    # -- accounting ----------------------------------------------------------
    def utilization(self, since: float = 0.0, now: Optional[float] = None) -> float:
        """Average utilization of the link between ``since`` and ``now``."""
        now = self.sim.now if now is None else now
        elapsed = max(now - since, 1e-12)
        return min(1.0, (self.bytes_delivered * 8.0) / (self.capacity_bps * elapsed))

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets the output queue dropped."""
        return self.queue.stats.drop_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.name}, {self.capacity_bps / 1e6:.1f} Mbps, {self.delay_s * 1e3:.0f} ms)"
