"""Discrete-event simulation engine.

A small, deterministic event scheduler built on :mod:`heapq`.  The heap holds
plain ``(time, seq, event)`` tuples so event ordering is resolved entirely by
C-level tuple comparison — events scheduled for the same instant fire in the
order they were scheduled, which keeps simulations reproducible across runs
and platforms, and no Python ``__lt__`` ever runs on the hot path.

Cancellation is lazy (O(1)): a cancelled event stays in the heap and is
skipped when it surfaces.  To stop cancel-heavy workloads (retransmit timers,
rate-limiter releases) from bloating the heap for the rest of the run, the
simulator opportunistically *compacts* the heap — rebuilds it from the live
events — once cancelled entries outnumber live ones.  Compaction preserves
the ``(time, seq)`` dispatch order exactly, so it is invisible to results.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation-only import, avoids a
    # runtime dependency from the lowest layer on repro.runtime
    from repro.runtime.clock import Clock


class Event:
    """A scheduled callback.

    Events are ordered by their ``(time, seq)`` key, carried by the heap
    tuple — the payload fields do not participate in ordering.  ``cancelled``
    events stay in the heap but are skipped when popped (lazy deletion),
    which keeps cancellation O(1); the owning simulator counts cancellations
    so it can compact the heap when they pile up.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, seq={self.seq}{flag})"


#: Compaction only kicks in above this many cancelled entries, so small
#: simulations never pay the rebuild.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, my_callback, arg1, arg2)
        sim.run(until=10.0)
    """

    #: Class-wide default for :attr:`dispatch_tap`, applied to simulators at
    #: construction time.  :mod:`repro.perf` sets this (in a try/finally)
    #: to census events inside experiment points that build their own
    #: simulator; it is ``None`` in normal runs.  The tap receives the
    #: *callback* being dispatched.
    default_dispatch_tap: Optional[Callable[[Callable[..., Any]], None]] = None

    def __init__(self) -> None:
        #: Heap of ``(time, seq, event_or_None, callback, args)`` entries.
        #: ``seq`` is unique, so tuple comparison never reaches the payload;
        #: entry[2] is ``None`` for fast-path events that can never be
        #: cancelled (no :class:`Event` is allocated for those).
        self._queue: list[tuple] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._running = False
        self._stopped = False
        #: Optional per-dispatch trace hook ``tap(callback)``; ``None`` (the
        #: default) keeps the run loop on its fast path — a single local
        #: ``None`` test per event.  Attach before calling :meth:`run`.
        self.dispatch_tap: Optional[Callable[[Callable[..., Any]], None]] = (
            Simulator.default_dispatch_tap
        )

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of *live* events still in the queue.

        Cancelled events awaiting lazy deletion are excluded, so pollers see
        real remaining work rather than phantom entries.
        """
        return len(self._queue) - self._cancelled

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (pre-compaction)."""
        return self._cancelled

    # -- cancellation bookkeeping -------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        # Opportunistic compaction: once cancelled entries exceed the live
        # ones (and are worth the rebuild), drop them all at O(live).
        if (
            self._cancelled > _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        ``(time, seq)`` keys are unique, so re-heapifying the live entries
        reproduces the exact dispatch order of the lazy-deletion path.  The
        list is mutated in place so aliases held by a running :meth:`run`
        loop stay valid.
        """
        self._queue[:] = [
            entry for entry in self._queue
            if entry[2] is None or not entry[2].cancelled
        ]
        heapq.heapify(self._queue)
        self._cancelled = 0

    # -- scheduling ---------------------------------------------------------
    # Both schedule methods build the Event via ``__new__`` plus direct slot
    # stores instead of calling ``Event.__init__``: scheduling is the single
    # hottest call in a simulation (once per packet transmission, delivery,
    # and transport tick), and skipping the extra Python frame is a measured
    # win.  Keep the slot assignments in sync with ``Event.__init__``.

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can later be cancelled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = time = self._now + delay
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._queue, (time, seq, event, callback, args))
        return event

    def schedule_fast(self, delay: float, callback: Callable[..., Any],
                      args: tuple = ()) -> None:
        """Schedule a callback that will *never be cancelled* — no handle.

        The fast path for high-volume internal events (link serialization
        and propagation): no :class:`Event` is allocated and nothing is
        returned, only the heap tuple exists.  Callers that might ever need
        to cancel must use :meth:`schedule` instead.  ``args`` is passed as
        a tuple (not ``*args``) to avoid re-packing.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, None, callback, args))

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at t={time:.6f}, before now={self._now:.6f}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event.__new__(Event)
        event.time = time
        event.seq = seq
        event.callback = callback
        event.args = args
        event.cancelled = False
        event._sim = self
        heapq.heappush(self._queue, (time, seq, event, callback, args))
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time.  Events scheduled
                exactly at ``until`` are executed.
            max_events: optional safety valve on the number of events.

        Returns:
            The simulation time when the run stopped.

        Clock contract: the clock advances to ``until`` if and only if every
        event due at or before ``until`` has been executed (whether the
        queue drained, only later events remain, or ``max_events`` tripped
        exactly on the last due event).  When the run stops early — via
        :meth:`stop`, or ``max_events`` tripping with work still pending —
        the clock stays at the last executed event's time, so a follow-up
        ``run(until=...)`` resumes exactly where this one left off.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        # Hoisted loop constants: the time limit and event cap become plain
        # float comparisons, and the trace hook is read once (attach taps
        # before calling run()).
        limit = float("inf") if until is None else until
        cap = float("inf") if max_events is None else max_events
        tap = self.dispatch_tap
        try:
            while queue:
                if self._stopped:
                    break
                entry = queue[0]
                event = entry[2]
                if event is not None and event.cancelled:
                    heappop(queue)
                    self._cancelled -= 1
                    continue
                if entry[0] > limit:
                    # Leave it queued for a later run() call and finish.
                    break
                heappop(queue)
                self._now = entry[0]
                if event is not None:
                    # Detach the handle: a cancel() issued after dispatch
                    # (e.g. by the event's own callback, or a later cleanup
                    # pass) must not count a tombstone that is no longer in
                    # the heap — that would corrupt pending_events and
                    # trigger spurious compactions.
                    event._sim = None
                if tap is not None:
                    tap(entry[3])
                entry[3](*entry[4])
                executed += 1
                if executed >= cap:
                    break
            if until is not None and until > self._now and not self._stopped:
                # Drop cancelled events so the peek below sees real work.
                while queue:
                    event = queue[0][2]
                    if event is None or not event.cancelled:
                        break
                    heappop(queue)
                    self._cancelled -= 1
                if not queue or queue[0][0] > until:
                    self._now = until
        finally:
            # Flushed once per run rather than once per event; callbacks
            # observing events_processed mid-run see the pre-run value.
            self._processed += executed
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero.

        After a reset the simulator is indistinguishable from a freshly
        constructed one: the event sequence counter restarts (so same-instant
        events order exactly like a new instance — required for deterministic
        results when sweep workers reuse a simulator), and every counter and
        flag (``events_processed``, cancellation bookkeeping, ``stop()``
        requests) is cleared too.
        """
        self._queue.clear()
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._cancelled = 0
        self._running = False
        self._stopped = False
        self.dispatch_tap = Simulator.default_dispatch_tap


class PeriodicTimer:
    """A repeating timer bound to a clock.

    Calls ``callback()`` every ``interval`` seconds until :meth:`stop`.
    The first call fires ``interval`` seconds after :meth:`start` (or after
    ``first_delay`` if given).

    ``clock`` is anything satisfying :class:`repro.runtime.clock.Clock` —
    a :class:`Simulator` for discrete-event runs, or a
    :class:`~repro.runtime.clock.WallClock` when the same timer drives a
    live policer (it only ever calls ``clock.schedule``).
    """

    def __init__(
        self,
        clock: "Clock",
        interval: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.clock = clock
        self.interval = interval
        self.callback = callback
        self.first_delay = interval if first_delay is None else first_delay
        #: the pending handle — an :class:`Event` under the simulator, an
        #: ``asyncio.TimerHandle`` under a wall clock
        self._event: Optional[Any] = None
        self._active = False

    @property
    def sim(self) -> "Clock":
        """Backward-compat alias for :attr:`clock`."""
        return self.clock

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._event = self.clock.schedule(self.first_delay, self._fire)

    def stop(self) -> None:
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._active:
            return
        # Reschedule even when the callback raises: a monitor or detection
        # pass whose callback fails once (and whose caller catches the error
        # around sim.run) must keep ticking instead of silently dying
        # mid-run.  The exception itself still propagates to the caller.
        try:
            self.callback()
        finally:
            if self._active:
                self._event = self.clock.schedule(self.interval, self._fire)
