"""Discrete-event simulation engine.

A small, deterministic event scheduler built on :mod:`heapq`.  Events are
ordered by (time, sequence number) so that events scheduled for the same
instant fire in the order they were scheduled, which keeps simulations
reproducible across runs and platforms.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)``; the payload fields do not participate
    in ordering.  ``cancelled`` events stay in the heap but are skipped when
    popped (lazy deletion), which keeps cancellation O(1).
    """

    time: float
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when due."""
        self.cancelled = True


class Simulator:
    """The simulation clock and event queue.

    Typical usage::

        sim = Simulator()
        sim.schedule(1.0, my_callback, arg1, arg2)
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can later be cancelled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule an event at t={time:.6f}, before now={self._now:.6f}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, args=args)
        heapq.heappush(self._queue, event)
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (no-op for ``None``)."""
        if event is not None:
            event.cancel()

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time.  Events scheduled
                exactly at ``until`` are executed.
            max_events: optional safety valve on the number of events.

        Returns:
            The simulation time when the run stopped.

        Clock contract: the clock advances to ``until`` if and only if every
        event due at or before ``until`` has been executed (whether the
        queue drained, only later events remain, or ``max_events`` tripped
        exactly on the last due event).  When the run stops early — via
        :meth:`stop`, or ``max_events`` tripping with work still pending —
        the clock stays at the last executed event's time, so a follow-up
        ``run(until=...)`` resumes exactly where this one left off.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue:
                if self._stopped:
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                if until is not None and event.time > until:
                    # Put it back for a later run() call and finish.
                    heapq.heappush(self._queue, event)
                    break
                self._now = event.time
                event.callback(*event.args)
                self._processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
            if until is not None and until > self._now and not self._stopped:
                # Drop cancelled events so the peek below sees real work.
                while self._queue and self._queue[0].cancelled:
                    heapq.heappop(self._queue)
                if not self._queue or self._queue[0].time > until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Clear all pending events and rewind the clock to zero.

        The event sequence counter restarts too, so a reset simulator orders
        same-instant events exactly like a freshly constructed one — required
        for deterministic results when sweep workers reuse a simulator.
        """
        self._queue.clear()
        self._seq = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._stopped = False


class PeriodicTimer:
    """A repeating timer bound to a :class:`Simulator`.

    Calls ``callback()`` every ``interval`` seconds until :meth:`stop`.
    The first call fires ``interval`` seconds after :meth:`start` (or after
    ``first_delay`` if given).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.first_delay = interval if first_delay is None else first_delay
        self._event: Optional[Event] = None
        self._active = False

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        if self._active:
            return
        self._active = True
        self._event = self.sim.schedule(self.first_delay, self._fire)

    def stop(self) -> None:
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        if not self._active:
            return
        # Reschedule even when the callback raises: a monitor or detection
        # pass whose callback fails once (and whose caller catches the error
        # around sim.run) must keep ticking instead of silently dying
        # mid-run.  The exception itself still propagates to the caller.
        try:
            self.callback()
        finally:
            if self._active:
                self._event = self.sim.schedule(self.interval, self._fire)
