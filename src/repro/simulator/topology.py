"""Topology construction helpers.

:class:`Topology` wires hosts, routers, and duplex links together, then
computes static routes.  The two shapes used in the paper's evaluation are
provided as convenience builders:

* :func:`dumbbell_layout` — ten source ASes, a transit AS with the bottleneck
  link, and a destination AS (Fig. 8 / Fig. 9 experiments).
* :func:`parking_lot_layout` — two bottleneck links in series with three
  sender groups (Fig. 10 / 13 / 14 experiments).

The builders only describe *structure*; which router class to instantiate
(NetFence, TVA+, StopIt, FQ, or plain) is injected by the caller, so the same
layouts drive every defense system under test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Host, Node, Router
from repro.simulator.queues import PacketQueue
from repro.simulator.routing import build_routes

#: Builds the output queue for a link, given the link capacity in bps.
QueueFactory = Callable[[float], PacketQueue]


class Topology:
    """A collection of nodes and links plus route computation."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.clock = sim or Simulator()
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._finalized = False

    @property
    def sim(self) -> Simulator:
        """Backward-compat alias for :attr:`clock` (see PR 6's clock seam)."""
        return self.clock

    # -- construction -----------------------------------------------------
    def add_host(self, name: str, as_name: Optional[str] = None) -> Host:
        self._check_name(name)
        host = Host(self.clock, name, as_name=as_name)
        self.nodes[name] = host
        return host

    def add_router(
        self,
        name: str,
        as_name: Optional[str] = None,
        router_cls: Type[Router] = Router,
        **kwargs,
    ) -> Router:
        self._check_name(name)
        router = router_cls(self.clock, name, as_name=as_name, **kwargs)
        self.nodes[name] = router
        return router

    def add_node(self, node: Node) -> Node:
        self._check_name(node.name)
        self.nodes[node.name] = node
        return node

    def _check_name(self, name: str) -> None:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name}")

    def add_link(
        self,
        src: str,
        dst: str,
        capacity_bps: float,
        delay_s: float = 0.01,
        queue_factory: Optional[QueueFactory] = None,
        name: Optional[str] = None,
    ) -> Link:
        """Add one unidirectional link."""
        src_node = self.nodes[src]
        dst_node = self.nodes[dst]
        queue = queue_factory(capacity_bps) if queue_factory else None
        link = Link(
            self.clock, src_node, dst_node, capacity_bps, delay_s, queue=queue, name=name
        )
        src_node.attach_link(link)
        self.links.append(link)
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        capacity_bps: float,
        delay_s: float = 0.01,
        queue_factory: Optional[QueueFactory] = None,
    ) -> tuple[Link, Link]:
        """Add a pair of unidirectional links between ``a`` and ``b``."""
        forward = self.add_link(a, b, capacity_bps, delay_s, queue_factory)
        reverse = self.add_link(b, a, capacity_bps, delay_s, queue_factory)
        return forward, reverse

    def finalize(
        self,
        route_builder: Optional[Callable[[Sequence[Node], Sequence[Link]], None]] = None,
    ) -> None:
        """Compute static routes.  Call after all nodes/links are added.

        ``route_builder`` replaces the default shortest-path computation
        with a custom one (same signature as :func:`build_routes`); the
        AS-graph realizer uses it to install valley-free routes instead.
        """
        builder = route_builder or build_routes
        builder(list(self.nodes.values()), self.links)
        self._finalized = True

    # -- lookup -------------------------------------------------------------
    def host(self, name: str) -> Host:
        node = self.nodes[name]
        if not isinstance(node, Host):
            raise TypeError(f"{name} is not a Host")
        return node

    def router(self, name: str) -> Router:
        node = self.nodes[name]
        if not isinstance(node, Router):
            raise TypeError(f"{name} is not a Router")
        return node

    def link_between(self, src: str, dst: str) -> Link:
        for link in self.links:
            if link.src_node.name == src and link.dst_node.name == dst:
                return link
        raise KeyError(f"no link {src}->{dst}")

    @property
    def hosts(self) -> List[Host]:
        return [n for n in self.nodes.values() if isinstance(n, Host)]

    @property
    def routers(self) -> List[Router]:
        return [n for n in self.nodes.values() if isinstance(n, Router)]

    def run(self, until: float) -> float:
        """Convenience wrapper around ``clock.run``."""
        if not self._finalized:
            self.finalize()
        return self.clock.run(until=until)


@dataclass
class DumbbellLayout:
    """Node names produced by :func:`dumbbell_layout`.

    ``senders[i]`` lives in source AS ``source_as_names[i // hosts_per_as]``
    and attaches to ``access_routers[i // hosts_per_as]``.  The bottleneck is
    the ``bottleneck_left -> bottleneck_right`` link.  Receivers (the victim
    and any colluders) attach to ``destination_router``.
    """

    senders: List[str] = field(default_factory=list)
    access_routers: List[str] = field(default_factory=list)
    source_as_names: List[str] = field(default_factory=list)
    bottleneck_left: str = "Rbl"
    bottleneck_right: str = "Rbr"
    destination_router: str = "Rd"
    receivers: List[str] = field(default_factory=list)
    bottleneck_link: Optional[Link] = None


def dumbbell_layout(
    topo: Topology,
    num_source_as: int = 10,
    hosts_per_as: int = 10,
    num_receivers: int = 1,
    bottleneck_bps: float = 10e6,
    access_bps: float = 100e6,
    edge_bps: Optional[float] = None,
    delay_s: float = 0.01,
    access_router_cls: Type[Router] = Router,
    core_router_cls: Type[Router] = Router,
    bottleneck_queue_factory: Optional[QueueFactory] = None,
    access_queue_factory: Optional[QueueFactory] = None,
    access_router_kwargs: Optional[dict] = None,
    core_router_kwargs: Optional[dict] = None,
    access_router_for_as: Optional[
        Callable[[int], tuple[Type[Router], dict]]
    ] = None,
) -> DumbbellLayout:
    """Build the paper's dumbbell evaluation topology (§6.3.1).

    Ten source ASes (each with an access router and ``hosts_per_as`` hosts)
    connect through a transit AS whose ``Rbl -> Rbr`` link is the bottleneck.
    Receivers (victim plus optional colluders, each in its own destination
    AS) hang off a destination router ``Rd`` behind ``Rbr``.

    ``access_router_for_as`` optionally overrides the access router of
    individual source ASes: called with the AS index, it returns the
    ``(router class, ctor kwargs)`` to use — the hook partial-deployment
    scenarios use to mix NetFence and legacy access routers in one
    topology.  The destination router ``Rd`` always uses
    ``access_router_cls``.
    """
    edge_bps = edge_bps if edge_bps is not None else access_bps
    access_router_kwargs = access_router_kwargs or {}
    core_router_kwargs = core_router_kwargs or {}
    layout = DumbbellLayout()

    rbl = topo.add_router("Rbl", as_name="AS-transit", router_cls=core_router_cls,
                          **core_router_kwargs)
    rbr = topo.add_router("Rbr", as_name="AS-transit", router_cls=core_router_cls,
                          **core_router_kwargs)
    # Rd is the *access router* of the destination hosts (victim/colluders):
    # their reverse-direction traffic needs the same stamping/policing services
    # as any other sender's.
    rd = topo.add_router("Rd", as_name="AS-dst", router_cls=access_router_cls,
                         **access_router_kwargs)

    bneck, _ = topo.add_duplex_link(
        "Rbl", "Rbr", bottleneck_bps, delay_s, queue_factory=bottleneck_queue_factory
    )
    layout.bottleneck_link = bneck
    topo.add_duplex_link("Rbr", "Rd", access_bps, delay_s)

    for i in range(num_source_as):
        as_name = f"AS-src-{i}"
        ra_name = f"Ra{i}"
        if access_router_for_as is not None:
            ra_cls, ra_kwargs = access_router_for_as(i)
        else:
            ra_cls, ra_kwargs = access_router_cls, access_router_kwargs
        topo.add_router(ra_name, as_name=as_name, router_cls=ra_cls, **ra_kwargs)
        topo.add_duplex_link(ra_name, "Rbl", access_bps, delay_s,
                             queue_factory=access_queue_factory)
        layout.access_routers.append(ra_name)
        layout.source_as_names.append(as_name)
        for j in range(hosts_per_as):
            host_name = f"s{i}_{j}"
            topo.add_host(host_name, as_name=as_name)
            topo.add_duplex_link(host_name, ra_name, edge_bps, 0.001)
            layout.senders.append(host_name)

    for k in range(num_receivers):
        recv_name = f"d{k}"
        topo.add_host(recv_name, as_name=f"AS-dst-{k}")
        topo.add_duplex_link(recv_name, "Rd", access_bps, 0.001)
        layout.receivers.append(recv_name)

    topo.finalize()
    return layout


@dataclass
class ParkingLotLayout:
    """Node names produced by :func:`parking_lot_layout`.

    Group A traverses both bottlenecks L1 (R1->R2) and L2 (R2->R3);
    Group B only L2; Group C only L1.
    """

    group_a: List[str] = field(default_factory=list)
    group_b: List[str] = field(default_factory=list)
    group_c: List[str] = field(default_factory=list)
    access_routers: Dict[str, str] = field(default_factory=dict)
    receivers_ab: List[str] = field(default_factory=list)
    receivers_c: List[str] = field(default_factory=list)
    bottleneck1: Optional[Link] = None
    bottleneck2: Optional[Link] = None


def parking_lot_layout(
    topo: Topology,
    hosts_per_group: int = 30,
    l1_bps: float = 1.6e6,
    l2_bps: float = 1.6e6,
    access_bps: float = 100e6,
    delay_s: float = 0.01,
    access_router_cls: Type[Router] = Router,
    core_router_cls: Type[Router] = Router,
    bottleneck_queue_factory: Optional[QueueFactory] = None,
    access_router_kwargs: Optional[dict] = None,
    core_router_kwargs: Optional[dict] = None,
) -> ParkingLotLayout:
    """Build the two-bottleneck parking-lot topology of §6.3.2.

    Three sender groups A/B/C attach via per-group access routers RaA/RaB/RaC.
    Group A's traffic crosses both L1 = R1->R2 and L2 = R2->R3; Group C's only
    L1; Group B's only L2.  Group A and B receivers sit behind R3; Group C
    receivers sit behind R2.
    """
    access_router_kwargs = access_router_kwargs or {}
    core_router_kwargs = core_router_kwargs or {}
    layout = ParkingLotLayout()

    for name in ("R1", "R2", "R3"):
        topo.add_router(name, as_name="AS-core", router_cls=core_router_cls,
                        **core_router_kwargs)
    l1, _ = topo.add_duplex_link("R1", "R2", l1_bps, delay_s,
                                 queue_factory=bottleneck_queue_factory)
    l2, _ = topo.add_duplex_link("R2", "R3", l2_bps, delay_s,
                                 queue_factory=bottleneck_queue_factory)
    layout.bottleneck1 = l1
    layout.bottleneck2 = l2

    groups = {
        "A": ("R1", layout.group_a),
        "B": ("R2", layout.group_b),
        "C": ("R1", layout.group_c),
    }
    for group, (attach_router, bucket) in groups.items():
        as_name = f"AS-{group}"
        ra_name = f"Ra{group}"
        topo.add_router(ra_name, as_name=as_name, router_cls=access_router_cls,
                        **access_router_kwargs)
        topo.add_duplex_link(ra_name, attach_router, access_bps, delay_s)
        layout.access_routers[group] = ra_name
        for j in range(hosts_per_group):
            host_name = f"{group.lower()}{j}"
            topo.add_host(host_name, as_name=as_name)
            topo.add_duplex_link(host_name, ra_name, access_bps, 0.001)
            bucket.append(host_name)

    # Receivers: Group A and B receivers behind R3; Group C receivers behind R2.
    # The destination-side routers are access routers for the receivers.
    topo.add_router("RdAB", as_name="AS-dst-ab", router_cls=access_router_cls,
                    **access_router_kwargs)
    topo.add_duplex_link("R3", "RdAB", access_bps, delay_s)
    topo.add_router("RdC", as_name="AS-dst-c", router_cls=access_router_cls,
                    **access_router_kwargs)
    topo.add_duplex_link("R2", "RdC", access_bps, delay_s)

    for idx in range(2):
        name = f"dab{idx}"
        topo.add_host(name, as_name="AS-dst-ab")
        topo.add_duplex_link(name, "RdAB", access_bps, 0.001)
        layout.receivers_ab.append(name)
        name_c = f"dc{idx}"
        topo.add_host(name_c, as_name="AS-dst-c")
        topo.add_duplex_link(name_c, "RdC", access_bps, 0.001)
        layout.receivers_c.append(name_c)

    topo.finalize()
    return layout
