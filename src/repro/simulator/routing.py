"""Static shortest-path routing.

Routes are computed once, after the topology is built, with networkx's
shortest-path algorithm over the node graph (weighted by link propagation
delay).  Every router gets a ``destination host -> next-hop link`` entry for
every host in the topology.  The paper assumes relatively stable paths
(§7, "ECMP"), so static routing is sufficient.
"""

from __future__ import annotations

from typing import Dict, Iterable

import networkx as nx

from repro.simulator.link import Link
from repro.simulator.node import Host, Node, Router


def build_routes(nodes: Iterable[Node], links: Iterable[Link]) -> None:
    """Populate every router's routing table in place.

    Args:
        nodes: all nodes in the topology (hosts and routers).
        links: all unidirectional links.
    """
    nodes = list(nodes)
    links = list(links)
    graph = nx.DiGraph()
    for node in nodes:
        graph.add_node(node.name)
    link_by_pair: Dict[tuple[str, str], Link] = {}
    for link in links:
        graph.add_edge(link.src_node.name, link.dst_node.name, weight=link.delay_s)
        link_by_pair[(link.src_node.name, link.dst_node.name)] = link

    hosts = [n for n in nodes if isinstance(n, Host)]
    routers = [n for n in nodes if isinstance(n, Router)]

    # All-pairs shortest paths from each router to every host.
    for router in routers:
        paths = nx.single_source_dijkstra_path(graph, router.name, weight="weight")
        for host in hosts:
            if host.name == router.name:
                continue
            path = paths.get(host.name)
            if path is None or len(path) < 2:
                continue
            next_hop = path[1]
            link = link_by_pair.get((router.name, next_hop))
            if link is not None:
                router.add_route(host.name, link)

    # Register locally attached hosts so access routers can tell their own
    # senders apart from transit traffic.
    for link in links:
        if isinstance(link.src_node, Host) and isinstance(link.dst_node, Router):
            link.dst_node.register_local_host(link.src_node.name)
