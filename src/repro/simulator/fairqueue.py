"""Fair queuing: Deficit Round Robin and two-level hierarchical DRR.

The paper's baselines rely on fair queuing at congested links:

* **FQ** — per-sender DRR at every link.
* **TVA+** — two-level hierarchical fair queuing (source AS, then source IP)
  on the request channel, and per-destination fair queuing on the regular
  channel.
* **StopIt** — the same hierarchical queuing as a fallback when victims do
  not install filters.

DRR follows Shreedhar & Varghese [38]: each active flow has a deficit
counter; a flow may send packets as long as its deficit covers them, and its
deficit grows by one quantum per round.  This gives O(1) per-packet work.

Like :mod:`repro.simulator.queues`, these schedulers are clock-free pure
state machines — time never enters the DRR algorithm — so they serve both
the simulator and the live runtime (:mod:`repro.runtime.serve`) unchanged.

State lifecycle: per-flow state is held in compact ``__slots__`` records and
is **evicted the moment a flow drains** (its deficit was reset to zero at
that point anyway, so eviction is invisible to scheduling).  Without
eviction, every sender ever seen would occupy a ``max_flows`` slot forever —
under host churn the queue would converge to dropping every packet from new
senders, and a hierarchical queue's memory would grow with every AS ever
seen.  Eager eviction also makes ``active_flows`` /
``active_level1_buckets`` O(1): live state *is* the active set.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional

from repro.simulator.packet import Packet
from repro.simulator.queues import PacketQueue

#: Classifies a packet into a fair-queuing bucket.
FlowKeyFn = Callable[[Packet], str]


def per_sender_key(packet: Packet) -> str:
    """Fair-queue by source host (per-sender fairness)."""
    return packet.src


def per_destination_key(packet: Packet) -> str:
    """Fair-queue by destination host (TVA+'s regular channel)."""
    return packet.dst


def per_source_as_key(packet: Packet) -> str:
    """Fair-queue by source AS (first level of hierarchical queuing)."""
    return packet.src_as or packet.src


class _FlowState:
    """Per-flow DRR state: FIFO, byte count, and deficit counter."""

    __slots__ = ("queue", "bytes", "deficit")

    def __init__(self) -> None:
        self.queue: Deque[Packet] = deque()
        self.bytes = 0
        self.deficit = 0.0


class DRRQueue(PacketQueue):
    """Deficit Round Robin fair queue.

    Args:
        key_fn: maps a packet to its fair-queuing bucket.
        quantum_bytes: deficit added to each active bucket per round.
        per_flow_capacity_bytes: byte capacity of each bucket's FIFO.
        max_flows: upper bound on simultaneously active buckets (safety
            valve; arrivals for new buckets beyond the bound are dropped).
            Only *live* buckets count — drained flows are evicted, so churn
            through many senders never exhausts the bound.
    """

    def __init__(
        self,
        key_fn: FlowKeyFn = per_sender_key,
        quantum_bytes: int = 1500,
        per_flow_capacity_bytes: int = 30 * 1500,
        max_flows: int = 1_000_000,
    ) -> None:
        super().__init__()
        self.key_fn = key_fn
        self.quantum_bytes = quantum_bytes
        self.per_flow_capacity_bytes = per_flow_capacity_bytes
        self.max_flows = max_flows
        #: Live flows only; a drained flow is evicted immediately, so every
        #: entry holds at least one packet (outside a dequeue in progress).
        self._flows: Dict[str, _FlowState] = {}
        self._active: Deque[str] = deque()
        self._bytes = 0
        self._count = 0

    @property
    def active_flows(self) -> int:
        """Number of buckets that currently hold at least one packet (O(1))."""
        return len(self._flows)

    # -- PacketQueue interface ---------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        key = self.key_fn(packet)
        flows = self._flows
        state = flows.get(key)
        size = packet.size_bytes
        if state is None:
            # New flow: reject without leaving ghost state behind when the
            # flow table is full or the packet alone overflows the bucket.
            if len(flows) >= self.max_flows or size > self.per_flow_capacity_bytes:
                self._drop(packet)
                return False
            state = _FlowState()
            flows[key] = state
            state.queue.append(packet)
            state.bytes = size
            self._active.append(key)
        else:
            if state.bytes + size > self.per_flow_capacity_bytes:
                self._drop(packet)
                return False
            if not state.queue:  # pragma: no cover - drained flows are evicted
                self._active.append(key)
            state.queue.append(packet)
            state.bytes += size
        self._bytes += size
        self._count += 1
        self.stats.record_enqueue(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        # Round-robin over active buckets; a bucket sends while its deficit
        # covers the head packet, then moves to the back of the round.  The
        # quantum grants guarantee progress whenever packets are queued.
        if not self._count:
            return None
        active = self._active
        flows = self._flows
        quantum = self.quantum_bytes
        while True:
            key = active[0]
            state = flows.get(key)
            if state is None or not state.queue:  # pragma: no cover - defensive
                active.popleft()
                flows.pop(key, None)
                continue
            head = state.queue[0]
            size = head.size_bytes
            if state.deficit >= size:
                state.queue.popleft()
                state.deficit -= size
                state.bytes -= size
                self._bytes -= size
                self._count -= 1
                self.stats.record_dequeue(head)
                if not state.queue:
                    # Drained: evict the whole record.  The deficit would be
                    # reset to zero here anyway, so eviction cannot change
                    # future scheduling decisions.
                    active.popleft()
                    del flows[key]
                return head
            # Not enough deficit: grant a quantum and rotate.
            state.deficit += quantum
            active.rotate(-1)

    def __len__(self) -> int:
        return self._count

    @property
    def byte_length(self) -> int:
        return self._bytes


class _BucketState:
    """Level-1 bucket state: the inner DRR plus the outer deficit counter."""

    __slots__ = ("queue", "deficit")

    def __init__(self, queue: DRRQueue) -> None:
        self.queue = queue
        self.deficit = 0.0


class HierarchicalFairQueue(PacketQueue):
    """Two-level fair queuing: DRR across level-1 buckets, DRR within each.

    TVA+ and StopIt queue request packets first by source AS and then by
    source IP address (§6.3 of the paper).  This class implements that as a
    DRR of DRRs: the outer round-robin shares the link across level-1 buckets
    (ASes); each bucket's inner DRR shares the bucket's turn across its own
    level-2 flows (hosts).

    Like :class:`DRRQueue`, drained level-1 buckets (and with them their
    inner DRR state) are evicted immediately, so memory tracks the *live*
    AS set instead of every AS ever seen.
    """

    def __init__(
        self,
        level1_key: FlowKeyFn = per_source_as_key,
        level2_key: FlowKeyFn = per_sender_key,
        quantum_bytes: int = 1500,
        per_flow_capacity_bytes: int = 30 * 1500,
    ) -> None:
        super().__init__()
        self.level1_key = level1_key
        self.level2_key = level2_key
        self.quantum_bytes = quantum_bytes
        self.per_flow_capacity_bytes = per_flow_capacity_bytes
        #: Live buckets only (eager eviction, as in :class:`DRRQueue`).
        self._buckets: Dict[str, _BucketState] = {}
        self._active: Deque[str] = deque()
        self._count = 0
        self._bytes = 0

    def enqueue(self, packet: Packet) -> bool:
        key = self.level1_key(packet)
        state = self._buckets.get(key)
        created = state is None
        if created:
            state = _BucketState(
                DRRQueue(
                    key_fn=self.level2_key,
                    quantum_bytes=self.quantum_bytes,
                    per_flow_capacity_bytes=self.per_flow_capacity_bytes,
                )
            )
        was_empty = created or len(state.queue) == 0
        accepted = state.queue.enqueue(packet)
        if not accepted:
            # Never keep an empty bucket created for a rejected packet.
            self._drop(packet)
            return False
        if created:
            self._buckets[key] = state
        self._count += 1
        self._bytes += packet.size_bytes
        self.stats.record_enqueue(packet)
        if was_empty:
            self._active.append(key)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._count:
            return None
        active = self._active
        buckets = self._buckets
        quantum = self.quantum_bytes
        while True:
            key = active[0]
            state = buckets.get(key)
            if state is None or len(state.queue) == 0:  # pragma: no cover - defensive
                active.popleft()
                buckets.pop(key, None)
                continue
            # Peek at the size the inner DRR will release next; approximate
            # with the quantum-driven grant loop used by DRRQueue.
            if state.deficit <= 0:
                state.deficit += quantum
                active.rotate(-1)
                continue
            packet = state.queue.dequeue()
            if packet is None:  # pragma: no cover - defensive
                active.popleft()
                del buckets[key]
                continue
            state.deficit -= packet.size_bytes
            self._count -= 1
            self._bytes -= packet.size_bytes
            self.stats.record_dequeue(packet)
            if len(state.queue) == 0:
                # Drained: evict the bucket and its inner DRR state.
                active.popleft()
                del buckets[key]
            return packet

    def __len__(self) -> int:
        return self._count

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def active_level1_buckets(self) -> int:
        """Number of level-1 buckets holding at least one packet (O(1))."""
        return len(self._buckets)
