"""Fair queuing: Deficit Round Robin and two-level hierarchical DRR.

The paper's baselines rely on fair queuing at congested links:

* **FQ** — per-sender DRR at every link.
* **TVA+** — two-level hierarchical fair queuing (source AS, then source IP)
  on the request channel, and per-destination fair queuing on the regular
  channel.
* **StopIt** — the same hierarchical queuing as a fallback when victims do
  not install filters.

DRR follows Shreedhar & Varghese [38]: each active flow has a deficit
counter; a flow may send packets as long as its deficit covers them, and its
deficit grows by one quantum per round.  This gives O(1) per-packet work.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque, Dict, Optional

from repro.simulator.packet import Packet
from repro.simulator.queues import PacketQueue

#: Classifies a packet into a fair-queuing bucket.
FlowKeyFn = Callable[[Packet], str]


def per_sender_key(packet: Packet) -> str:
    """Fair-queue by source host (per-sender fairness)."""
    return packet.src


def per_destination_key(packet: Packet) -> str:
    """Fair-queue by destination host (TVA+'s regular channel)."""
    return packet.dst


def per_source_as_key(packet: Packet) -> str:
    """Fair-queue by source AS (first level of hierarchical queuing)."""
    return packet.src_as or packet.src


class DRRQueue(PacketQueue):
    """Deficit Round Robin fair queue.

    Args:
        key_fn: maps a packet to its fair-queuing bucket.
        quantum_bytes: deficit added to each active bucket per round.
        per_flow_capacity_bytes: byte capacity of each bucket's FIFO.
        max_flows: upper bound on simultaneously active buckets (safety
            valve; arrivals for new buckets beyond the bound are dropped).
    """

    def __init__(
        self,
        key_fn: FlowKeyFn = per_sender_key,
        quantum_bytes: int = 1500,
        per_flow_capacity_bytes: int = 30 * 1500,
        max_flows: int = 1_000_000,
    ) -> None:
        super().__init__()
        self.key_fn = key_fn
        self.quantum_bytes = quantum_bytes
        self.per_flow_capacity_bytes = per_flow_capacity_bytes
        self.max_flows = max_flows
        self._flows: "OrderedDict[str, Deque[Packet]]" = OrderedDict()
        self._flow_bytes: Dict[str, int] = {}
        self._deficits: Dict[str, float] = {}
        self._active: Deque[str] = deque()
        self._bytes = 0
        self._count = 0

    # -- helpers -----------------------------------------------------------
    def _flow_queue(self, key: str) -> Optional[Deque[Packet]]:
        if key not in self._flows:
            if len(self._flows) >= self.max_flows:
                return None
            self._flows[key] = deque()
            self._flow_bytes[key] = 0
            self._deficits[key] = 0.0
        return self._flows[key]

    @property
    def active_flows(self) -> int:
        """Number of buckets that currently hold at least one packet."""
        return sum(1 for q in self._flows.values() if q)

    # -- PacketQueue interface ---------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        key = self.key_fn(packet)
        queue = self._flow_queue(key)
        if queue is None:
            self._drop(packet)
            return False
        if self._flow_bytes[key] + packet.size_bytes > self.per_flow_capacity_bytes:
            self._drop(packet)
            return False
        was_empty = not queue
        queue.append(packet)
        self._flow_bytes[key] += packet.size_bytes
        self._bytes += packet.size_bytes
        self._count += 1
        self.stats.record_enqueue(packet)
        if was_empty:
            self._active.append(key)
        return True

    def dequeue(self) -> Optional[Packet]:
        # Round-robin over active buckets; a bucket sends while its deficit
        # covers the head packet, then moves to the back of the round.
        rounds_without_progress = 0
        while self._active and rounds_without_progress <= len(self._active):
            key = self._active[0]
            queue = self._flows[key]
            if not queue:
                self._active.popleft()
                self._deficits[key] = 0.0
                continue
            head = queue[0]
            if self._deficits[key] >= head.size_bytes:
                queue.popleft()
                self._deficits[key] -= head.size_bytes
                self._flow_bytes[key] -= head.size_bytes
                self._bytes -= head.size_bytes
                self._count -= 1
                self.stats.record_dequeue(head)
                if not queue:
                    self._active.popleft()
                    self._deficits[key] = 0.0
                return head
            # Not enough deficit: grant a quantum and rotate.
            self._deficits[key] += self.quantum_bytes
            self._active.rotate(-1)
            rounds_without_progress += 1
        # Either empty, or deficits were too small: force-grant until a
        # packet can go (guarantees progress when non-empty).
        if self._count:
            while True:
                key = self._active[0]
                queue = self._flows[key]
                if not queue:
                    self._active.popleft()
                    continue
                head = queue[0]
                if self._deficits[key] < head.size_bytes:
                    self._deficits[key] += self.quantum_bytes
                    self._active.rotate(-1)
                    continue
                queue.popleft()
                self._deficits[key] -= head.size_bytes
                self._flow_bytes[key] -= head.size_bytes
                self._bytes -= head.size_bytes
                self._count -= 1
                self.stats.record_dequeue(head)
                if not queue:
                    self._active.popleft()
                    self._deficits[key] = 0.0
                return head
        return None

    def __len__(self) -> int:
        return self._count

    @property
    def byte_length(self) -> int:
        return self._bytes


class HierarchicalFairQueue(PacketQueue):
    """Two-level fair queuing: DRR across level-1 buckets, DRR within each.

    TVA+ and StopIt queue request packets first by source AS and then by
    source IP address (§6.3 of the paper).  This class implements that as a
    DRR of DRRs: the outer round-robin shares the link across level-1 buckets
    (ASes); each bucket's inner DRR shares the bucket's turn across its own
    level-2 flows (hosts).
    """

    def __init__(
        self,
        level1_key: FlowKeyFn = per_source_as_key,
        level2_key: FlowKeyFn = per_sender_key,
        quantum_bytes: int = 1500,
        per_flow_capacity_bytes: int = 30 * 1500,
    ) -> None:
        super().__init__()
        self.level1_key = level1_key
        self.level2_key = level2_key
        self.quantum_bytes = quantum_bytes
        self.per_flow_capacity_bytes = per_flow_capacity_bytes
        self._buckets: Dict[str, DRRQueue] = {}
        self._deficits: Dict[str, float] = {}
        self._active: Deque[str] = deque()
        self._count = 0
        self._bytes = 0

    def _bucket(self, key: str) -> DRRQueue:
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = DRRQueue(
                key_fn=self.level2_key,
                quantum_bytes=self.quantum_bytes,
                per_flow_capacity_bytes=self.per_flow_capacity_bytes,
            )
            self._buckets[key] = bucket
            self._deficits[key] = 0.0
        return bucket

    def enqueue(self, packet: Packet) -> bool:
        key = self.level1_key(packet)
        bucket = self._bucket(key)
        was_empty = len(bucket) == 0
        accepted = bucket.enqueue(packet)
        if not accepted:
            self._drop(packet)
            return False
        self._count += 1
        self._bytes += packet.size_bytes
        self.stats.record_enqueue(packet)
        if was_empty:
            self._active.append(key)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._count:
            return None
        while True:
            key = self._active[0]
            bucket = self._buckets[key]
            if len(bucket) == 0:
                self._active.popleft()
                self._deficits[key] = 0.0
                continue
            # Peek at the size the inner DRR will release next; approximate
            # with the quantum-driven grant loop used by DRRQueue.
            if self._deficits[key] <= 0:
                self._deficits[key] += self.quantum_bytes
                self._active.rotate(-1)
                continue
            packet = bucket.dequeue()
            if packet is None:  # pragma: no cover - defensive
                self._active.popleft()
                continue
            self._deficits[key] -= packet.size_bytes
            self._count -= 1
            self._bytes -= packet.size_bytes
            self.stats.record_dequeue(packet)
            if len(bucket) == 0:
                self._active.popleft()
                self._deficits[key] = 0.0
            return packet

    def __len__(self) -> int:
        return self._count

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def active_level1_buckets(self) -> int:
        return sum(1 for b in self._buckets.values() if len(b))
