"""Nodes: hosts and routers.

* :class:`Host` — an end system.  Transport agents (TCP/UDP endpoints)
  register with the host by flow id and get packets dispatched to them.
* :class:`Router` — forwards packets using a static routing table.  The
  NetFence and baseline routers subclass it and override the policing hooks
  (:meth:`Router.admit_from_host` and :meth:`Router.before_enqueue`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional, Protocol

from repro.simulator.link import Link
from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.runtime.clock import Clock


class PacketAgent(Protocol):
    """Anything that can receive packets addressed to a host."""

    def on_packet(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class Node:
    """Base class for all network nodes.

    ``clock`` is anything satisfying :class:`repro.runtime.clock.Clock`:
    the discrete-event :class:`~repro.simulator.engine.Simulator` inside
    swept scenarios, or a :class:`~repro.runtime.clock.WallClock` when a
    router subclass polices real datagrams (``runner serve``).
    """

    def __init__(self, clock: "Clock", name: str) -> None:
        self.clock = clock
        self.name = name
        #: Outgoing links keyed by the neighbour node's name.
        self.links: Dict[str, Link] = {}

    @property
    def sim(self) -> "Clock":
        """Backward-compat alias for :attr:`clock`."""
        return self.clock

    def attach_link(self, link: Link) -> None:
        """Register an outgoing link (called by the topology builder)."""
        self.links[link.dst_node.name] = link

    def receive(self, packet: Packet, from_link: Optional[Link]) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end system.

    A host belongs to an AS (``as_name``) and reaches the network through a
    single access link.  Transport agents register per flow id; packets whose
    flow id has no agent go to the ``default_agent`` if one is set, otherwise
    they are counted as orphans and discarded.
    """

    def __init__(self, clock: "Clock", name: str, as_name: Optional[str] = None) -> None:
        super().__init__(clock, name)
        self.as_name = as_name
        self._access_link: Optional[Link] = None
        self.agents: Dict[str, PacketAgent] = {}
        self.default_agent: Optional[PacketAgent] = None
        self.orphan_packets = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.bytes_received = 0
        #: Shim layers between transport and the network (e.g. the NetFence
        #: end-host module, §6.2).  Outbound filters run on every packet the
        #: host sends; inbound filters run on every packet it receives, before
        #: the packet is dispatched to a transport agent.  A filter returning
        #: ``False`` swallows the packet.
        self.outbound_filters: list[Callable[[Packet], Optional[bool]]] = []
        self.inbound_filters: list[Callable[[Packet], Optional[bool]]] = []

    # -- agents --------------------------------------------------------------
    def add_agent(self, flow_id: str, agent: PacketAgent) -> None:
        self.agents[flow_id] = agent

    def remove_agent(self, flow_id: str) -> None:
        self.agents.pop(flow_id, None)

    # -- I/O -----------------------------------------------------------------
    def attach_link(self, link: Link) -> None:
        super().attach_link(link)
        self._access_link = None  # re-validate on next use

    @property
    def access_link(self) -> Link:
        """The host's single uplink to its access router (cached; hosts send
        every packet through it, so the single-uplink check runs once per
        topology change instead of once per packet)."""
        link = self._access_link
        if link is None:
            if len(self.links) != 1:
                raise RuntimeError(
                    f"host {self.name} must have exactly one uplink, has {len(self.links)}"
                )
            link = next(iter(self.links.values()))
            self._access_link = link
        return link

    def send(self, packet: Packet) -> None:
        """Send a packet into the network through the access link."""
        if packet.src_as is None:
            packet.src_as = self.as_name
        packet.created_at = self.clock.now
        for outbound_filter in self.outbound_filters:
            if outbound_filter(packet) is False:
                return
        self.packets_sent += 1
        # Direct slot read with property fallback: one per packet sent.
        link = self._access_link
        if link is None:
            link = self.access_link
        link.send(packet)

    def receive(self, packet: Packet, from_link: Optional[Link]) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size_bytes
        for inbound_filter in self.inbound_filters:
            if inbound_filter(packet) is False:
                return
        agent = self.agents.get(packet.flow_id, self.default_agent)
        if agent is None:
            self.orphan_packets += 1
            return
        agent.on_packet(packet)


class Router(Node):
    """A packet-forwarding router with a static routing table.

    Subclasses implement policing by overriding:

    * :meth:`admit_from_host` — called for packets arriving from a locally
      attached host (i.e. this router is the packet's *access router*).
      Return ``False`` to drop, ``True`` to forward now, or ``None`` when the
      router has taken ownership of the packet (e.g. cached it inside a rate
      limiter for later release).
    * :meth:`before_enqueue` — called just before a packet is placed on an
      output link (both transit and locally originated traffic).  This is
      where NetFence's bottleneck routers stamp congestion policing feedback.
    """

    def __init__(self, clock: "Clock", name: str, as_name: Optional[str] = None) -> None:
        super().__init__(clock, name)
        self.as_name = as_name
        #: destination host name -> outgoing link
        self.routes: Dict[str, Link] = {}
        #: names of hosts directly attached to this router
        self.local_hosts: set[str] = set()
        self.packets_forwarded = 0
        self.packets_dropped = 0
        #: optional tap called for every packet this router forwards
        self.forward_tap: Optional[Callable[[Packet, Link], None]] = None

    # -- routing --------------------------------------------------------------
    def add_route(self, dst_host: str, link: Link) -> None:
        self.routes[dst_host] = link

    def register_local_host(self, host_name: str) -> None:
        self.local_hosts.add(host_name)

    def route_for(self, packet: Packet) -> Optional[Link]:
        return self.routes.get(packet.dst)

    def is_from_my_hosts(self, packet: Packet, from_link: Optional[Link]) -> bool:
        """True when the packet entered the network at this router."""
        # Set-membership first: transit routers have no local hosts, so the
        # common case short-circuits before the isinstance check.
        if packet.src not in self.local_hosts:
            return False
        return from_link is None or isinstance(from_link.src_node, Host)

    # -- hooks ----------------------------------------------------------------
    def admit_from_host(self, packet: Packet, from_link: Optional[Link]) -> Optional[bool]:
        """Access-router policing hook.  Default: admit everything."""
        return True

    def before_enqueue(self, packet: Packet, out_link: Link) -> bool:
        """Per-output-link hook.  Default: pass everything through."""
        return True

    def on_transit(self, packet: Packet, from_link: Optional[Link]) -> bool:
        """Hook for transit packets (not from a local host).  Default: admit."""
        return True

    # -- forwarding -------------------------------------------------------------
    def receive(self, packet: Packet, from_link: Optional[Link]) -> None:
        # is_from_my_hosts() inlined — this dispatch runs for every packet
        # arriving at every router.
        if packet.src in self.local_hosts and (
            from_link is None or isinstance(from_link.src_node, Host)
        ):
            verdict = self.admit_from_host(packet, from_link)
            if verdict is None:
                return  # the policing layer owns the packet now
            if not verdict:
                self.packets_dropped += 1
                return
        else:
            if not self.on_transit(packet, from_link):
                self.packets_dropped += 1
                return
        self.forward(packet)

    def forward(self, packet: Packet) -> None:
        """Push the packet toward its destination (post-policing)."""
        # Inlined route_for(): one dict lookup per forwarded packet.
        out_link = self.routes.get(packet.dst)
        if out_link is None:
            self.packets_dropped += 1
            return
        if not self.before_enqueue(packet, out_link):
            self.packets_dropped += 1
            return
        self.packets_forwarded += 1
        if self.forward_tap is not None:
            self.forward_tap(packet, out_link)
        out_link.send(packet)
