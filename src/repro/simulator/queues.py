"""Output queues: DropTail, RED, and multi-band priority scheduling.

All queues implement the small :class:`PacketQueue` interface that
:class:`repro.simulator.link.Link` drains:

* ``enqueue(packet) -> bool`` — accept or drop the packet.
* ``dequeue() -> Packet | None`` — pop the next packet to transmit.
* ``__len__`` — number of queued packets.

The RED implementation follows Floyd & Jacobson [18] with the parameters the
paper uses (Fig. 3): ``minthresh = 0.5·Qlim``, ``maxthresh = 0.75·Qlim``,
EWMA weight ``wq = 0.1``.  NetFence's bottleneck routers use RED both for
congestion control and as the congestion *detection* signal that drives
``L↓`` stamping.

These queues are pure state machines: they never read a clock or schedule
events, so the same instances run unmodified under the discrete-event
:class:`~repro.simulator.engine.Simulator` and inside the live asyncio
policer (:mod:`repro.runtime.serve`), which drains them against a
:class:`~repro.runtime.clock.WallClock`.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.obs.metrics import get_registry
from repro.obs.trace import QUEUE_DROP_REASONS, active_tracer
from repro.seeding import derive_seed
from repro.simulator.packet import Packet

#: Fallback discriminator for queues constructed without ``rng``/``seed``;
#: guarantees independent instances never share one random stream.
_anonymous_queue_ids = itertools.count()

#: Metric-label discriminator: queues have no names, so an enabled registry
#: labels each queue's gauges by class + construction index.
_queue_metric_ids = itertools.count()


@dataclass(slots=True)
class QueueStats:
    """Counters shared by all queue implementations.

    Drops are recorded *by reason* — ``tail`` (over byte capacity),
    ``early`` (RED early/forced drop), ``evicted`` (priority eviction), and
    ``other`` (e.g. an unroutable channel).  The pre-existing ``dropped``
    total remains available as a derived sum, so row schemas and detection
    deltas (:meth:`~repro.core.bottleneck.NetFenceRouter._detect`) are
    unchanged.
    """

    enqueued: int = 0
    dequeued: int = 0
    dropped_tail: int = 0
    dropped_early: int = 0
    dropped_evicted: int = 0
    dropped_other: int = 0
    enqueued_bytes: int = 0
    dequeued_bytes: int = 0
    dropped_bytes: int = 0

    @property
    def dropped(self) -> int:
        """Total drops across all reasons (the historical flat counter)."""
        return (self.dropped_tail + self.dropped_early
                + self.dropped_evicted + self.dropped_other)

    @property
    def arrivals(self) -> int:
        return self.enqueued + self.dropped

    @property
    def drop_rate(self) -> float:
        """Fraction of arriving packets that were dropped."""
        total = self.arrivals
        return self.dropped / total if total else 0.0

    def drop_reasons(self) -> Dict[str, int]:
        """Reason -> count, for stats payloads and exporters."""
        return {
            "tail": self.dropped_tail,
            "early": self.dropped_early,
            "evicted": self.dropped_evicted,
            "other": self.dropped_other,
        }

    def record_enqueue(self, packet: Packet) -> None:
        self.enqueued += 1
        self.enqueued_bytes += packet.size_bytes

    def record_dequeue(self, packet: Packet) -> None:
        self.dequeued += 1
        self.dequeued_bytes += packet.size_bytes

    def record_drop(self, packet: Packet, reason: str = "tail") -> None:
        if reason == "tail":
            self.dropped_tail += 1
        elif reason == "early":
            self.dropped_early += 1
        elif reason == "evicted":
            self.dropped_evicted += 1
        else:
            self.dropped_other += 1
        self.dropped_bytes += packet.size_bytes


class PacketQueue:
    """Interface for output queues (see module docstring)."""

    def __init__(self) -> None:
        self.stats = QueueStats()
        self.drop_callback: Optional[Callable[[Packet, str], None]] = None
        # Telemetry is captured at construction: tracing costs one ``is not
        # None`` test on the (cold) drop path, and metric registration only
        # happens under an *enabled* registry, so the default-disabled case
        # adds nothing to enqueue/dequeue.
        self._tracer = active_tracer()
        self._trace_point = f"queue:{type(self).__name__}"
        registry = get_registry()
        if registry.enabled:
            label = {"queue": f"{type(self).__name__}-{next(_queue_metric_ids)}"}
            registry.watch("netfence_queue_depth_pkts", lambda: len(self),
                           help="instantaneous queue depth", labels=label)
            registry.watch("netfence_queue_enqueued_total",
                           lambda: self.stats.enqueued,
                           help="packets accepted", labels=label)
            registry.watch("netfence_queue_dropped_total",
                           lambda: self.stats.dropped,
                           help="packets dropped (all reasons)", labels=label)
            for reason in ("tail", "early", "evicted", "other"):
                registry.watch(
                    "netfence_queue_drop_reason_total",
                    lambda r=reason: self.stats.drop_reasons()[r],
                    help="packets dropped by reason",
                    labels={**label, "reason": reason})

    def enqueue(self, packet: Packet) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:  # pragma: no cover - abstract
        raise NotImplementedError

    def __len__(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def byte_length(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _drop(self, packet: Packet, reason: str = "tail") -> None:
        self.stats.record_drop(packet, reason)
        if self._tracer is not None:
            self._tracer.emit(self._trace_point,
                              QUEUE_DROP_REASONS[reason], packet)
        if self.drop_callback is not None:
            self.drop_callback(packet, reason)


class DropTailQueue(PacketQueue):
    """A FIFO queue that drops arrivals once ``capacity_bytes`` is exceeded."""

    def __init__(self, capacity_bytes: int = 64 * 1500) -> None:
        super().__init__()
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._queue: deque[Packet] = deque()
        self._bytes = 0

    def enqueue(self, packet: Packet) -> bool:
        size = packet.size_bytes
        if self._bytes + size > self.capacity_bytes:
            self._drop(packet)
            return False
        self._queue.append(packet)
        self._bytes += size
        # Stats inlined: DropTail queues sit on every link, so these two
        # counters are the hottest accounting in the simulator.
        stats = self.stats
        stats.enqueued += 1
        stats.enqueued_bytes += size
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._bytes -= size
        stats = self.stats
        stats.dequeued += 1
        stats.dequeued_bytes += size
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self._bytes


class REDQueue(PacketQueue):
    """Random Early Detection queue (Floyd & Jacobson [18]).

    The average queue length is an EWMA of the instantaneous queue length,
    sampled at every arrival.  Between ``minthresh`` and ``maxthresh`` the
    drop probability rises linearly to ``max_p``; above ``maxthresh`` every
    arrival is dropped.  Thresholds and lengths are in bytes.
    """

    def __init__(
        self,
        capacity_bytes: int,
        minthresh_fraction: float = 0.5,
        maxthresh_fraction: float = 0.75,
        wq: float = 0.1,
        max_p: float = 0.1,
        rng: Optional[random.Random] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if not 0 < minthresh_fraction < maxthresh_fraction <= 1:
            raise ValueError("need 0 < minthresh < maxthresh <= 1")
        self.capacity_bytes = capacity_bytes
        self.minthresh = minthresh_fraction * capacity_bytes
        self.maxthresh = maxthresh_fraction * capacity_bytes
        self.wq = wq
        self.max_p = max_p
        # Every queue needs its own random stream: a shared default seed
        # would make independent queues draw identical, correlated drop
        # decisions.  Callers pass ``rng`` or a per-instance ``seed``
        # (derived from the scenario seed) for reproducibility; the
        # anonymous fallback is decorrelated but construction-order
        # dependent, so experiments must not rely on it.
        if rng is None:
            if seed is None:
                seed = derive_seed(0, "red-queue-anon", next(_anonymous_queue_ids))
            rng = random.Random(derive_seed(seed, "red-queue"))
        self.rng = rng
        self.avg_queue = 0.0
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self._count_since_drop = 0

    def _update_average(self) -> None:
        self.avg_queue = (1 - self.wq) * self.avg_queue + self.wq * self._bytes

    def _drop_probability(self) -> float:
        if self.avg_queue < self.minthresh:
            return 0.0
        if self.avg_queue >= self.maxthresh:
            return 1.0
        span = self.maxthresh - self.minthresh
        return self.max_p * (self.avg_queue - self.minthresh) / span

    def enqueue(self, packet: Packet) -> bool:
        # ``_update_average`` and ``_drop_probability`` inlined: RED guards
        # the bottleneck's regular channel, so this runs for every arrival.
        avg = (1 - self.wq) * self.avg_queue + self.wq * self._bytes
        self.avg_queue = avg
        size = packet.size_bytes
        if self._bytes + size > self.capacity_bytes:
            self._drop(packet)
            return False
        if avg >= self.minthresh:
            if avg >= self.maxthresh:
                self._drop(packet, "early")
                return False
            p_drop = self.max_p * (avg - self.minthresh) / (self.maxthresh - self.minthresh)
            if p_drop > 0.0:
                # Uniformize drops the way RED does (count since last drop).
                self._count_since_drop += 1
                effective = min(1.0, p_drop * self._count_since_drop)
                if self.rng.random() < effective:
                    self._count_since_drop = 0
                    self._drop(packet, "early")
                    return False
        self._queue.append(packet)
        self._bytes += size
        stats = self.stats
        stats.enqueued += 1
        stats.enqueued_bytes += size
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        size = packet.size_bytes
        self._bytes -= size
        stats = self.stats
        stats.dequeued += 1
        stats.dequeued_bytes += size
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self._bytes

    @property
    def congested(self) -> bool:
        """True when the average queue is above ``minthresh``.

        NetFence's bottleneck router uses this as its instantaneous
        congestion signal while a link is in the ``mon`` state (§4.3.4).
        """
        return self.avg_queue >= self.minthresh


class PriorityChannelQueue(PacketQueue):
    """A strict-priority scheduler over named channels.

    Channels are served in the order given; the first non-empty channel wins.
    Each channel has its own inner :class:`PacketQueue` and an optional
    bandwidth cap expressed as a fraction of the link capacity (enforced by
    the owning link through :meth:`channel_allowed`).

    NetFence routers use three channels (Fig. 2): ``request`` (capped at 5 %
    of the link), ``regular``, and ``legacy`` (lowest priority).  Within the
    request channel, higher level-k packets are served first (§4.2).
    """

    def __init__(self, channels: List[str], queues: Dict[str, PacketQueue]) -> None:
        super().__init__()
        if set(channels) != set(queues):
            raise ValueError("channels and queues must name the same channel set")
        self.channel_order = list(channels)
        self.queues = dict(queues)
        self.classifier: Callable[[Packet], str] = self._default_classifier
        for q in self.queues.values():
            # Bubble inner-queue drops up through this queue's stats.
            q.drop_callback = self._inner_drop

    def _inner_drop(self, packet: Packet, reason: str = "tail") -> None:
        self.stats.record_drop(packet, reason)
        if self.drop_callback is not None:
            self.drop_callback(packet, reason)

    @staticmethod
    def _default_classifier(packet: Packet) -> str:
        return packet.ptype.value

    def enqueue(self, packet: Packet) -> bool:
        channel = self.classifier(packet)
        queue = self.queues.get(channel)
        if queue is None:
            self._drop(packet, "other")
            return False
        accepted = queue.enqueue(packet)
        if accepted:
            self.stats.record_enqueue(packet)
        return accepted

    def dequeue(self) -> Optional[Packet]:
        for channel in self.channel_order:
            packet = self.queues[channel].dequeue()
            if packet is not None:
                self.stats.record_dequeue(packet)
                return packet
        return None

    def dequeue_channel(self, channel: str) -> Optional[Packet]:
        """Pop the next packet of a specific channel (used by rate-capped links)."""
        packet = self.queues[channel].dequeue()
        if packet is not None:
            self.stats.record_dequeue(packet)
        return packet

    def channel_length(self, channel: str) -> int:
        return len(self.queues[channel])

    def __len__(self) -> int:
        return sum(len(q) for q in self.queues.values())

    @property
    def byte_length(self) -> int:
        return sum(q.byte_length for q in self.queues.values())


class LevelPriorityQueue(PacketQueue):
    """A queue that serves higher ``packet.priority`` levels first.

    Used for NetFence's request channel (§4.2): a level-k request packet is
    forwarded with higher priority than lower-level packets.  Within a level,
    packets are FIFO.  The total byte capacity is shared across levels; when
    full, arrivals with priority no higher than the lowest queued level are
    dropped, otherwise the lowest-priority queued packet is evicted.
    """

    def __init__(self, capacity_bytes: int = 64 * 92, max_level: int = 16) -> None:
        super().__init__()
        self.capacity_bytes = capacity_bytes
        self.max_level = max_level
        self._levels: Dict[int, deque[Packet]] = {}
        self._bytes = 0
        self._count = 0

    def enqueue(self, packet: Packet) -> bool:
        level = min(max(packet.priority, 0), self.max_level)
        if self._bytes + packet.size_bytes > self.capacity_bytes:
            victim_level = self._lowest_nonempty_level()
            if victim_level is None or victim_level >= level:
                self._drop(packet)
                return False
            # Evict a lower-priority packet to make room.
            victim = self._levels[victim_level].pop()
            self._bytes -= victim.size_bytes
            self._count -= 1
            self._drop(victim, "evicted")
            if self._bytes + packet.size_bytes > self.capacity_bytes:
                self._drop(packet)
                return False
        self._levels.setdefault(level, deque()).append(packet)
        self._bytes += packet.size_bytes
        self._count += 1
        self.stats.record_enqueue(packet)
        return True

    def _lowest_nonempty_level(self) -> Optional[int]:
        nonempty = [lvl for lvl, q in self._levels.items() if q]
        return min(nonempty) if nonempty else None

    def dequeue(self) -> Optional[Packet]:
        if not self._count:
            return None
        level = max(lvl for lvl, q in self._levels.items() if q)
        packet = self._levels[level].popleft()
        self._bytes -= packet.size_bytes
        self._count -= 1
        self.stats.record_dequeue(packet)
        return packet

    def __len__(self) -> int:
        return self._count

    @property
    def byte_length(self) -> int:
        return self._bytes
