"""``runner dashboard`` — a live HTTP view over stores, queues, and serve logs.

A single stdlib asyncio HTTP service (built on :mod:`repro.runtime.httpd`)
that exposes what an experiment operator wants to watch while a sweep or a
live policer runs:

* ``/api/summary`` — per-experiment totals from a
  :class:`~repro.store.result_store.ResultStore`;
* ``/api/payload`` — :func:`repro.analysis.aggregate.dashboard_payload`
  pivots (``?experiment=…&index=…&column=…&value=…&agg=…``);
* ``/api/queue`` — pending/running/done/failed counts and failures from a
  :class:`~repro.experiments.distrib.WorkQueue` directory (``--queue``);
* ``/api/serve`` — the tail of a ``runner serve --json`` stats stream
  (``--serve-log``), so live-policer counters show up next to sweep results;
* ``/api/fleet`` — per-worker telemetry aggregates
  (:meth:`~repro.store.result_store.ResultStore.fleet_summary`: claim
  latency, heartbeat renewals, RSS) from the ``worker_rows`` table;
* ``/api/bench`` — the perf trajectory trend
  (:func:`repro.analysis.bench_report.perf_report` over
  :meth:`~repro.store.result_store.ResultStore.perf_trajectory`);
* ``/`` — a small single-file HTML view that polls those endpoints.

The store is reopened per request: it is an append-only SQLite database that
other worker processes are committing to, and a fresh connection per poll is
the simplest way to always read the latest committed points.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.aggregate import dashboard_payload
from repro.runtime.httpd import (
    HttpServer,
    Response,
    html_response,
    json_response,
    text_response,
)
from repro.store.result_store import ResultStore

__all__ = ["DashboardService", "cli_main", "DASHBOARD_HTML"]

#: How many trailing serve-log events ``/api/serve`` returns by default.
DEFAULT_SERVE_TAIL = 20

DASHBOARD_HTML = """<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro dashboard</title>
<style>
 body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 1.5rem;
        background: #11151a; color: #d8dee9; }
 h1 { font-size: 1.2rem; } h2 { font-size: 1rem; margin-top: 1.5rem; }
 table { border-collapse: collapse; margin-top: .5rem; }
 th, td { border: 1px solid #3b4252; padding: .25rem .6rem; text-align: right; }
 th { background: #1b222c; }
 td:first-child, th:first-child { text-align: left; }
 .err { color: #bf616a; } .ok { color: #a3be8c; }
 #meta { color: #81a1c1; font-size: .85rem; }
</style>
</head>
<body>
<h1>repro dashboard</h1>
<div id="meta">loading…</div>
<h2>pivot</h2><div id="pivot">–</div>
<h2>work queue</h2><div id="queue">–</div>
<h2>worker fleet</h2><div id="fleet">–</div>
<h2>bench trajectory</h2><div id="bench">–</div>
<h2>live serve</h2><div id="serve">–</div>
<script>
const qs = new URLSearchParams(window.location.search);
function cell(v) { return (typeof v === "number") ? v.toFixed(4) : (v ?? "–"); }
function table(head, rows) {
  let h = "<table><tr>" + head.map(c => `<th>${c}</th>`).join("") + "</tr>";
  for (const r of rows) h += "<tr>" + r.map(c => `<td>${cell(c)}</td>`).join("") + "</tr>";
  return h + "</table>";
}
async function refresh() {
  try {
    const summary = await (await fetch("/api/summary")).json();
    document.getElementById("meta").textContent =
      `store=${summary.store_path} experiments=${summary.experiments.join(", ") || "none"}`;
    const exp = qs.get("experiment") || summary.experiments[0];
    if (exp) {
      const args = new URLSearchParams({
        experiment: exp,
        index: qs.get("index") || "deployment_fraction",
        column: qs.get("column") || "system",
        value: qs.get("value") || "legit_share",
        agg: qs.get("agg") || "mean",
      });
      const p = await (await fetch(`/api/payload?${args}`)).json();
      if (p.error) {
        document.getElementById("pivot").innerHTML = `<span class="err">${p.error}</span>`;
      } else {
        document.getElementById("pivot").innerHTML =
          `<div id="meta">${p.experiment}: ${p.agg}(${p.value}) by ${p.index} × ${p.column}` +
          ` — ${p.rows} rows</div>` +
          table([p.index, ...p.series.map(s => s.name)],
                p.index_values.map((iv, i) => [iv, ...p.series.map(s => s.values[i])]));
      }
    }
    const q = await (await fetch("/api/queue")).json();
    document.getElementById("queue").innerHTML = q.error
      ? `<span>${q.error}</span>`
      : table(Object.keys(q.counts), [Object.values(q.counts)]) +
        (q.failures.length ? `<p class="err">${q.failures.length} failures</p>` : "");
    const f = await (await fetch("/api/fleet")).json();
    document.getElementById("fleet").innerHTML = !f.workers.length
      ? "no worker telemetry yet"
      : table(["worker", "points", "retried", "claim p_avg (s)", "renewals",
               "elapsed (s)", "max rss (kB)"],
              f.workers.map(w => [w.worker_id, w.points, w.retried_points,
                                  w.avg_claim_latency_s, w.heartbeat_renewals,
                                  w.total_elapsed_s, w.max_rss_kb]));
    const b = await (await fetch("/api/bench")).json();
    document.getElementById("bench").innerHTML = !b.trajectory.length
      ? "no executions recorded"
      : table(["experiment", "points", "executions", "repeated",
               "baseline (s)", "latest (s)", "trend (%)"],
              b.trajectory.map(e => [e.experiment, e.points, e.executions,
                                     e.repeated_points, e.baseline_s,
                                     e.latest_s, e.regression_pct]));
    const s = await (await fetch("/api/serve")).json();
    if (s.error || !s.events.length) {
      document.getElementById("serve").textContent = s.error || "no events yet";
    } else {
      const last = s.events[s.events.length - 1];
      document.getElementById("serve").innerHTML =
        table(["event", "now", "rx", "tx", "dropped", "limiters", "unverified"],
              [[last.event, last.now, last.packets_rx, last.packets_tx,
                last.queue ? last.queue.dropped : "–",
                last.active_rate_limiters, last.unverified_admissions]]);
    }
  } catch (err) {
    document.getElementById("meta").innerHTML = `<span class="err">${err}</span>`;
  }
}
refresh();
setInterval(refresh, 2000);
</script>
</body>
</html>
"""


class DashboardService:
    """Route table + data access for the dashboard HTTP server."""

    def __init__(
        self,
        store_path: str,
        queue_dir: Optional[str] = None,
        serve_log: Optional[str] = None,
    ) -> None:
        self.store_path = store_path
        self.queue_dir = queue_dir
        self.serve_log = serve_log

    # -- data access -------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        store = ResultStore(self.store_path)
        return {
            "store_path": store.path,
            "experiments": store.experiments(),
            "summary": store.summary(),
        }

    def payload(self, query: Dict[str, str]) -> Dict[str, Any]:
        experiment = query.get("experiment")
        if not experiment:
            raise ValueError("missing required query parameter: experiment")
        store = ResultStore(self.store_path)
        return dashboard_payload(
            store,
            experiment,
            index=query.get("index", "deployment_fraction"),
            column=query.get("column", "system"),
            value=query.get("value", "legit_share"),
            agg=query.get("agg", "mean"),
        )

    def fleet(self) -> Dict[str, Any]:
        """Per-worker operational aggregates from the worker_rows table."""
        store = ResultStore(self.store_path)
        return {"workers": store.fleet_summary()}

    def bench(self, query: Dict[str, str]) -> Dict[str, Any]:
        """Perf-trajectory trend for the bench panel."""
        from repro.analysis.bench_report import perf_report

        store = ResultStore(self.store_path)
        trajectory = store.perf_trajectory(
            experiment=query.get("experiment"))
        return {"trajectory": perf_report(trajectory)}

    def queue_status(self) -> Dict[str, Any]:
        if self.queue_dir is None:
            return {"error": "no --queue directory configured"}
        if not os.path.isdir(self.queue_dir):
            return {"error": f"queue directory not found: {self.queue_dir}"}
        from repro.experiments.distrib import WorkQueue

        queue = WorkQueue(self.queue_dir)
        return {
            "counts": queue.counts(),
            "failures": [{"key": key, "error": error}
                         for key, error in queue.failures()],
        }

    def serve_tail(self, limit: int = DEFAULT_SERVE_TAIL) -> Dict[str, Any]:
        if self.serve_log is None:
            return {"error": "no --serve-log configured", "events": []}
        if not os.path.exists(self.serve_log):
            return {"error": f"serve log not found: {self.serve_log}",
                    "events": []}
        events: List[Dict[str, Any]] = []
        with open(self.serve_log, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                with contextlib.suppress(json.JSONDecodeError):
                    event = json.loads(line)
                    if isinstance(event, dict):
                        events.append(event)
        return {"path": self.serve_log, "events": events[-limit:]}

    # -- routing -----------------------------------------------------------
    def handle(self, path: str, query: Dict[str, str]) -> Optional[Response]:
        if path in ("/", "/index.html"):
            return html_response(DASHBOARD_HTML)
        if path == "/healthz":
            return text_response("ok\n")
        if path == "/api/summary":
            return json_response(self.summary())
        if path == "/api/payload":
            try:
                return json_response(self.payload(query))
            except (ValueError, KeyError) as exc:
                return json_response({"error": str(exc)}, status=400)
        if path == "/api/queue":
            return json_response(self.queue_status())
        if path == "/api/fleet":
            return json_response(self.fleet())
        if path == "/api/bench":
            return json_response(self.bench(query))
        if path == "/api/serve":
            try:
                limit = int(query.get("limit", str(DEFAULT_SERVE_TAIL)))
            except ValueError:
                return json_response({"error": "limit must be an int"},
                                     status=400)
            return json_response(self.serve_tail(limit=limit))
        return None

    def server(self) -> HttpServer:
        return HttpServer(self.handle)


async def _run(args: argparse.Namespace) -> int:
    service = DashboardService(
        store_path=args.store,
        queue_dir=args.queue,
        serve_log=args.serve_log,
    )
    server = service.server()
    host, port = await server.start(args.host, args.port)
    listening = {"event": "listening", "host": host, "port": port,
                 "store": args.store}
    if args.json:
        print(json.dumps(listening), flush=True)
    else:
        print(f"dashboard: http://{host}:{port}/ (store {args.store})",
              flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix
            pass
    try:
        if args.duration > 0:
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.duration)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
    finally:
        await server.close()
    return 0


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner dashboard",
        description="Serve a live HTML/JSON dashboard over a result store.",
    )
    parser.add_argument("--store", required=True,
                        help="path to the ResultStore SQLite database")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port to bind (default 0 = ephemeral)")
    parser.add_argument("--queue", default=None,
                        help="WorkQueue directory to report on")
    parser.add_argument("--serve-log", default=None,
                        help="JSON-lines stats stream from 'runner serve --json'")
    parser.add_argument("--duration", type=float, default=0.0,
                        help="stop after N seconds (0 = run until SIGINT/SIGTERM)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable listening event")
    args = parser.parse_args(argv)

    if not os.path.exists(args.store):
        print(f"dashboard: store not found: {args.store}", file=sys.stderr)
        return 1
    return asyncio.run(_run(args))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
