"""Deterministic wire format for packets crossing a real socket.

In simulation, :class:`~repro.simulator.packet.Packet` and its NetFence shim
header are in-memory ``__slots__`` objects handed between nodes by
reference.  The live runtime (``runner serve`` / ``runner loadgen``) moves
the same objects through UDP datagrams, which requires a byte serialization
with two properties:

* **Canonical** — every decodable byte string has exactly one in-memory
  form and re-encodes to the same bytes (``encode(decode(b)) == b``), and
  every encodable packet round-trips (``decode(encode(p)) == p``).  The
  hypothesis suite in ``tests/properties/test_codec_roundtrip.py`` holds
  both directions.
* **MAC-transparent** — a :class:`~repro.core.feedback.Feedback` stamped on
  one side of the socket must verify on the other.  The MAC layer hashes
  timestamps quantized to integer microseconds
  (:func:`repro.crypto.mac.quantize_ts`); the codec carries ``ts`` as that
  same signed 64-bit microsecond count, so the float the receiver
  reconstructs hashes identically.

Only the NetFence shim header and the observability trace context cross
the wire.  Other entries in ``Packet.headers`` (transport bookkeeping,
Passport, capability stubs) are simulator-internal object graphs with no
wire representation; a live end host rebuilds its own transport state from
addressing and ``flow_id``.

The trace context (:class:`~repro.obs.spans.SpanContext` under
``headers["trace"]``) is an *optional* trailing field guarded by its own
packet flag bit: frames without it decode exactly as before, so VERSION
stays 1, and the MAC layer never hashes it, so feedback stamped by a
non-tracing sender still verifies at a tracing receiver and vice versa.

Frame layout (all integers big-endian)::

    magic   2B  b"NF"
    version 1B  0x01
    kind    1B  0x01 packet | 0x02 hello
    body    ...

Strings are UTF-8 with a u16 length prefix; byte fields carry a u8 length
prefix.  Malformed input of any sort — truncation, trailing bytes, bad
magic, unknown enum codes, non-UTF-8 — raises :class:`CodecError`.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from repro.core.feedback import Feedback, FeedbackAction, FeedbackMode
from repro.core.header import HEADER_KEY, NetFenceHeader
from repro.crypto.mac import quantize_ts, unquantize_ts
from repro.obs.spans import TRACE_KEY, SpanContext
from repro.simulator.packet import Packet, PacketType

MAGIC = b"NF"
VERSION = 1

KIND_PACKET = 0x01
KIND_HELLO = 0x02

_PTYPE_CODE = {PacketType.REQUEST: 1, PacketType.REGULAR: 2, PacketType.LEGACY: 3}
_CODE_PTYPE = {code: ptype for ptype, code in _PTYPE_CODE.items()}

_MODE_CODE = {FeedbackMode.NOP: 1, FeedbackMode.MON: 2}
_CODE_MODE = {code: mode for mode, code in _MODE_CODE.items()}

_ACTION_CODE = {FeedbackAction.INCR: 1, FeedbackAction.DECR: 2}
_CODE_ACTION = {code: action for action, code in _ACTION_CODE.items()}

# Feedback flag bits.
_FB_HAS_LINK = 0x01
_FB_HAS_TOKEN = 0x02
_FB_HAS_CHAIN = 0x04

# Header flag bits.
_HDR_HAS_FEEDBACK = 0x01
_HDR_HAS_RETURNED = 0x02

# Packet flag bits.
_PKT_HAS_SRC_AS = 0x01
_PKT_HAS_DST_AS = 0x02
_PKT_HAS_HEADER = 0x04
_PKT_HAS_TRACE = 0x08


class CodecError(ValueError):
    """Raised for any malformed frame (truncated, trailing, bad values)."""


# ---------------------------------------------------------------------------
# Primitive writers / readers
# ---------------------------------------------------------------------------

def _w_str(out: list, value: str) -> None:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise CodecError(f"string field too long ({len(raw)} bytes)")
    out.append(struct.pack(">H", len(raw)))
    out.append(raw)


def _w_bytes(out: list, value: bytes) -> None:
    if len(value) > 0xFF:
        raise CodecError(f"bytes field too long ({len(value)} bytes)")
    out.append(struct.pack(">B", len(value)))
    out.append(value)


class _Reader:
    """Cursor over an immutable buffer; every read checks bounds."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise CodecError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack(">q", self.take(8))[0]

    def string(self) -> str:
        raw = self.take(self.u16())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string field: {exc}") from None

    def blob(self) -> bytes:
        return self.take(self.u8())

    def done(self) -> None:
        if self.pos != len(self.buf):
            raise CodecError(
                f"{len(self.buf) - self.pos} trailing bytes after frame body"
            )


def _encode_ts(out: list, ts: float) -> None:
    out.append(struct.pack(">q", quantize_ts(ts)))


# ---------------------------------------------------------------------------
# Feedback
# ---------------------------------------------------------------------------

def _encode_feedback(out: list, fb: Feedback) -> None:
    mode = _MODE_CODE.get(fb.mode)
    action = _ACTION_CODE.get(fb.action)
    if mode is None or action is None:
        raise CodecError(f"unencodable feedback enums: {fb.mode!r}/{fb.action!r}")
    flags = 0
    if fb.link is not None:
        flags |= _FB_HAS_LINK
    if fb.token_nop is not None:
        flags |= _FB_HAS_TOKEN
    if fb.chain is not None:
        flags |= _FB_HAS_CHAIN
    out.append(struct.pack(">BBB", mode, action, flags))
    if fb.link is not None:
        _w_str(out, fb.link)
    _encode_ts(out, fb.ts)
    _w_bytes(out, fb.mac)
    if fb.token_nop is not None:
        _w_bytes(out, fb.token_nop)
    if fb.chain is not None:
        if len(fb.chain) > 0xFF:
            raise CodecError(f"feedback chain too long ({len(fb.chain)} entries)")
        out.append(struct.pack(">B", len(fb.chain)))
        for link, action_str in fb.chain:
            try:
                code = _ACTION_CODE[FeedbackAction(action_str)]
            except (ValueError, KeyError):
                raise CodecError(f"unencodable chain action {action_str!r}") from None
            _w_str(out, link)
            out.append(struct.pack(">B", code))


def _decode_feedback(r: _Reader) -> Feedback:
    mode_code, action_code, flags = struct.unpack(">BBB", r.take(3))
    mode = _CODE_MODE.get(mode_code)
    action = _CODE_ACTION.get(action_code)
    if mode is None:
        raise CodecError(f"unknown feedback mode code {mode_code}")
    if action is None:
        raise CodecError(f"unknown feedback action code {action_code}")
    if flags & ~(_FB_HAS_LINK | _FB_HAS_TOKEN | _FB_HAS_CHAIN):
        raise CodecError(f"unknown feedback flag bits 0x{flags:02x}")
    link = r.string() if flags & _FB_HAS_LINK else None
    ts = unquantize_ts(r.i64())
    mac = r.blob()
    token_nop = r.blob() if flags & _FB_HAS_TOKEN else None
    chain: Optional[Tuple[Tuple[str, str], ...]] = None
    if flags & _FB_HAS_CHAIN:
        entries = []
        for _ in range(r.u8()):
            entry_link = r.string()
            entry_action = _CODE_ACTION.get(r.u8())
            if entry_action is None:
                raise CodecError("unknown chain action code")
            entries.append((entry_link, entry_action.value))
        chain = tuple(entries)
    return Feedback(mode, link, action, ts, mac, token_nop, chain)


# ---------------------------------------------------------------------------
# NetFence header
# ---------------------------------------------------------------------------

def _encode_header(out: list, header: NetFenceHeader) -> None:
    flags = 0
    if header.feedback is not None:
        flags |= _HDR_HAS_FEEDBACK
    if header.returned is not None:
        flags |= _HDR_HAS_RETURNED
    out.append(struct.pack(">BH", flags, header.priority))
    if header.feedback is not None:
        _encode_feedback(out, header.feedback)
    if header.returned is not None:
        _encode_feedback(out, header.returned)


def _decode_header(r: _Reader) -> NetFenceHeader:
    flags, priority = struct.unpack(">BH", r.take(3))
    if flags & ~(_HDR_HAS_FEEDBACK | _HDR_HAS_RETURNED):
        raise CodecError(f"unknown header flag bits 0x{flags:02x}")
    feedback = _decode_feedback(r) if flags & _HDR_HAS_FEEDBACK else None
    returned = _decode_feedback(r) if flags & _HDR_HAS_RETURNED else None
    return NetFenceHeader(feedback=feedback, returned=returned, priority=priority)


# ---------------------------------------------------------------------------
# Packet frames
# ---------------------------------------------------------------------------

def encode_packet(packet: Packet) -> bytes:
    """Serialize a packet (and its NetFence header, if any) to a frame."""
    ptype = _PTYPE_CODE.get(packet.ptype)
    if ptype is None:
        raise CodecError(f"unencodable packet type {packet.ptype!r}")
    flags = 0
    if packet.src_as is not None:
        flags |= _PKT_HAS_SRC_AS
    if packet.dst_as is not None:
        flags |= _PKT_HAS_DST_AS
    header = packet.headers.get(HEADER_KEY)
    if header is not None:
        flags |= _PKT_HAS_HEADER
    trace = packet.headers.get(TRACE_KEY)
    if trace is not None:
        flags |= _PKT_HAS_TRACE
    out: list = [MAGIC, struct.pack(">BBBB", VERSION, KIND_PACKET, ptype, flags)]
    _w_str(out, packet.src)
    _w_str(out, packet.dst)
    _w_str(out, packet.flow_id)
    _w_str(out, packet.protocol)
    out.append(struct.pack(">IH", packet.size_bytes, packet.priority))
    _encode_ts(out, packet.created_at)
    out.append(struct.pack(">Q", packet.uid))
    if packet.src_as is not None:
        _w_str(out, packet.src_as)
    if packet.dst_as is not None:
        _w_str(out, packet.dst_as)
    if header is not None:
        if not isinstance(header, NetFenceHeader):
            raise CodecError(f"netfence header has unexpected type {type(header)!r}")
        _encode_header(out, header)
    if trace is not None:
        if not isinstance(trace, SpanContext):
            raise CodecError(f"trace context has unexpected type {type(trace)!r}")
        for field in (trace.trace_id, trace.span_id, trace.parent_id):
            if not isinstance(field, int) or not 0 <= field < 1 << 64:
                raise CodecError(f"trace context id out of range: {field!r}")
        out.append(struct.pack(">QQQ", trace.trace_id, trace.span_id,
                               trace.parent_id))
    return b"".join(out)


def _decode_packet_body(r: _Reader) -> Packet:
    ptype_code, flags = struct.unpack(">BB", r.take(2))
    ptype = _CODE_PTYPE.get(ptype_code)
    if ptype is None:
        raise CodecError(f"unknown packet type code {ptype_code}")
    if flags & ~(_PKT_HAS_SRC_AS | _PKT_HAS_DST_AS | _PKT_HAS_HEADER
                 | _PKT_HAS_TRACE):
        raise CodecError(f"unknown packet flag bits 0x{flags:02x}")
    src = r.string()
    dst = r.string()
    flow_id = r.string()
    protocol = r.string()
    size_bytes = r.u32()
    priority = r.u16()
    created_at = unquantize_ts(r.i64())
    uid = r.u64()
    src_as = r.string() if flags & _PKT_HAS_SRC_AS else None
    dst_as = r.string() if flags & _PKT_HAS_DST_AS else None
    headers = {}
    if flags & _PKT_HAS_HEADER:
        headers[HEADER_KEY] = _decode_header(r)
    if flags & _PKT_HAS_TRACE:
        headers[TRACE_KEY] = SpanContext(r.u64(), r.u64(), r.u64())
    r.done()
    return Packet(
        src=src,
        dst=dst,
        size_bytes=size_bytes,
        ptype=ptype,
        flow_id=flow_id,
        protocol=protocol,
        headers=headers,
        created_at=created_at,
        priority=priority,
        src_as=src_as,
        dst_as=dst_as,
        uid=uid,
    )


# ---------------------------------------------------------------------------
# Hello frames (loadgen endpoint registration)
# ---------------------------------------------------------------------------

def encode_hello(name: str, as_name: Optional[str] = None) -> bytes:
    """A hello frame: binds a host name (and AS) to the sending address."""
    out: list = [MAGIC, struct.pack(">BBB", VERSION, KIND_HELLO,
                                    1 if as_name is not None else 0)]
    _w_str(out, name)
    if as_name is not None:
        _w_str(out, as_name)
    return b"".join(out)


def _decode_hello_body(r: _Reader) -> Tuple[str, Optional[str]]:
    has_as = r.u8()
    if has_as not in (0, 1):
        raise CodecError(f"bad hello flag byte {has_as}")
    name = r.string()
    as_name = r.string() if has_as else None
    r.done()
    return name, as_name


# ---------------------------------------------------------------------------
# Top-level frame dispatch
# ---------------------------------------------------------------------------

def decode_frame(data: bytes) -> Tuple[str, Any]:
    """Decode one datagram.

    Returns ``("packet", Packet)`` or ``("hello", (name, as_name))``.
    Raises :class:`CodecError` on any malformed input.
    """
    r = _Reader(data)
    if r.take(2) != MAGIC:
        raise CodecError("bad magic (not a NetFence frame)")
    version = r.u8()
    if version != VERSION:
        raise CodecError(f"unsupported frame version {version}")
    kind = r.u8()
    if kind == KIND_PACKET:
        return "packet", _decode_packet_body(r)
    if kind == KIND_HELLO:
        return "hello", _decode_hello_body(r)
    raise CodecError(f"unknown frame kind 0x{kind:02x}")


def decode_packet(data: bytes) -> Packet:
    """Decode a frame that must contain a packet."""
    kind, value = decode_frame(data)
    if kind != "packet":
        raise CodecError(f"expected a packet frame, got {kind!r}")
    return value
