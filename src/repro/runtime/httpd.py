"""A minimal stdlib asyncio HTTP/1.1 GET server for telemetry endpoints.

Both the live policer's ``/metrics`` endpoint (:mod:`repro.runtime.serve`)
and the dashboard service (:mod:`repro.runtime.dashboard`) need the same
thing: serve a handful of GET routes from inside an existing asyncio event
loop with no third-party dependencies.  This module provides exactly that —
request-line + header parsing, a routing callback, and connection-per-request
semantics (``Connection: close``).  It is deliberately not a general web
server: no keep-alive, no chunked bodies, no methods besides GET/HEAD.

Slow or hostile clients cannot wedge the loop: reading the request (line and
headers) is bounded by ``request_timeout`` seconds, after which the client
gets ``408 Request Timeout`` — the slowloris guard a long-lived telemetry
port needs.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "Response",
    "json_response",
    "text_response",
    "html_response",
    "HttpServer",
]

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}

#: A route handler: ``(path, query) -> Response`` (or ``None`` for 404).
Handler = Callable[[str, Dict[str, str]], Optional["Response"]]

_MAX_REQUEST_LINE = 8192
_MAX_HEADER_LINES = 64


@dataclass
class Response:
    """One HTTP response: status, content type, and an encoded body."""

    body: bytes
    status: int = 200
    content_type: str = "text/plain; charset=utf-8"
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        reason = _STATUS_TEXT.get(self.status, "Unknown")
        head = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in self.headers.items())
        return ("\r\n".join(head) + "\r\n\r\n").encode("ascii") + self.body


def json_response(payload: Any, status: int = 200) -> Response:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return Response(body, status=status,
                    content_type="application/json; charset=utf-8")


def text_response(text: str, status: int = 200,
                  content_type: str = "text/plain; charset=utf-8") -> Response:
    return Response(text.encode("utf-8"), status=status,
                    content_type=content_type)


def html_response(html: str, status: int = 200) -> Response:
    return text_response(html, status=status,
                         content_type="text/html; charset=utf-8")


class HttpServer:
    """Serve GET requests from ``handler`` on an asyncio event loop."""

    def __init__(self, handler: Handler,
                 request_timeout: float = 10.0) -> None:
        self.handler = handler
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(self._handle, host, port)
        sockets = self._server.sockets
        if not sockets:
            raise RuntimeError("server started without a listening socket")
        bound_host, bound_port = sockets[0].getsockname()[:2]
        return str(bound_host), int(bound_port)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def serving(self) -> bool:
        return self._server is not None

    # -- request handling --------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                response = await asyncio.wait_for(
                    self._read_and_dispatch(reader), self.request_timeout)
            except asyncio.TimeoutError:
                response = text_response("request timeout", status=408)
            writer.write(response.encode())
            await writer.drain()
        except (ConnectionError, asyncio.LimitOverrunError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_and_dispatch(self, reader: asyncio.StreamReader) -> Response:
        try:
            raw = await reader.readline()
        except ValueError:
            return text_response("request line too long", status=400)
        if len(raw) > _MAX_REQUEST_LINE:
            return text_response("request line too long", status=400)
        parts = raw.decode("latin-1", "replace").split()
        if len(parts) != 3:
            return text_response("malformed request line", status=400)
        method, target = parts[0], parts[1]
        # Drain headers (bounded); this tiny server ignores their content.
        for _ in range(_MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        if method not in ("GET", "HEAD"):
            return text_response("only GET is supported", status=405)
        split = urlsplit(target)
        query = dict(parse_qsl(split.query))
        try:
            response = self.handler(split.path, query)
        except Exception as exc:  # surface handler bugs as 500s, keep serving
            return text_response(f"handler error: {exc!r}", status=500)
        if response is None:
            return text_response("not found", status=404)
        if method == "HEAD":
            response = Response(b"", status=response.status,
                                content_type=response.content_type)
        return response
