"""The clock/scheduler seam between simulation and production.

Every time-dependent component in :mod:`repro.core` and
:mod:`repro.transport` takes a *clock* — an object with ``now``,
``schedule``, ``schedule_at``, and ``cancel``.  Two implementations exist:

* :class:`repro.simulator.engine.Simulator` — discrete-event time.  The
  simulator satisfies the protocol natively (no adapter, no indirection), so
  the tuple-heap fast path of the event loop is untouched by this seam.
* :class:`WallClock` — real time over an :mod:`asyncio` event loop.  The
  same router / rate-limiter / end-host code that runs inside a swept
  scenario polices real datagrams when handed a ``WallClock``
  (see :mod:`repro.runtime.serve`).

The protocol is deliberately the *simulator's* interface: the event loop is
one driver among several, not the substrate everything is welded to.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional, Protocol, runtime_checkable


@runtime_checkable
class ClockHandle(Protocol):
    """A cancellable scheduled callback.

    ``Simulator.schedule`` returns an :class:`~repro.simulator.engine.Event`;
    ``WallClock.schedule`` returns an :class:`asyncio.TimerHandle`.  Both
    expose ``cancel()``, which is all the components ever rely on.
    """

    def cancel(self) -> None:  # pragma: no cover - protocol
        ...


@runtime_checkable
class Clock(Protocol):
    """What the defense logic needs from time.

    ``now`` is seconds as a float; its origin is implementation-defined
    (simulation start for the simulator, the Unix epoch for
    :class:`WallClock` so that epoch secrets agree across processes).
    Components must only ever *difference* clock readings or feed them to
    epoch derivation — never assume the origin.
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol
        ...

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> ClockHandle:  # pragma: no cover - protocol
        ...

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> ClockHandle:  # pragma: no cover - protocol
        ...

    def cancel(self, handle: Optional[ClockHandle]) -> None:  # pragma: no cover
        ...


class WallClock:
    """Real time over an asyncio event loop, presented as a :class:`Clock`.

    Readings are anchored to the Unix epoch by default (``loop.time()`` is
    an arbitrary-origin monotonic clock, so a constant offset is added).
    Anchoring matters: :class:`~repro.crypto.keys.AccessRouterSecret`
    derives per-epoch keys from ``now // rotation_interval``, and sharded
    ``runner serve`` processes must land in the same epoch for feedback
    stamped by one process to verify at another.

    Differences from the simulator's scheduler, by design:

    * ``schedule`` clamps negative delays to zero instead of raising — on a
      wall clock a "late" timer is simply due now, whereas in simulation a
      negative delay is a logic bug worth failing on;
    * there is no ``run()``: the asyncio loop drives dispatch, and callbacks
      fire with real-world jitter.  Wall-clock rows are therefore *not*
      byte-reproducible; the determinism contract applies to simulator rows
      only.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        origin: Optional[float] = None,
    ) -> None:
        if loop is None:
            loop = asyncio.get_event_loop()
        self._loop = loop
        anchor = time.time() if origin is None else origin
        self._offset = anchor - loop.time()

    @property
    def now(self) -> float:
        """Seconds since the Unix epoch (monotonic between readings)."""
        return self._loop.time() + self._offset

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds of real time."""
        return self._loop.call_later(max(delay, 0.0), callback, *args)

    def schedule_fast(
        self, delay: float, callback: Callable[..., Any], args: tuple = ()
    ) -> None:
        """No-handle variant, mirroring ``Simulator.schedule_fast``."""
        self._loop.call_later(max(delay, 0.0), callback, *args)

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> asyncio.TimerHandle:
        """Run ``callback(*args)`` at absolute time ``when`` (epoch seconds)."""
        return self._loop.call_later(max(when - self.now, 0.0), callback, *args)

    def cancel(self, handle: Optional[ClockHandle]) -> None:
        """Cancel a previously scheduled callback (no-op for ``None``)."""
        if handle is not None:
            handle.cancel()
