"""``runner loadgen`` — drive a live policer (``runner serve``) over loopback.

The harness reproduces the paper's core scenario against a *live* policer:
legitimate UDP senders and a set of flooders share one bottleneck, and the
victim withholds feedback from the flooders (the §3.3 capability use of
NetFence feedback).  Every component is the simulator's own: real
:class:`~repro.simulator.node.Host` objects (subclassed to write datagrams
instead of link events), the real
:class:`~repro.core.endhost.NetFenceEndHost` shim, and the real
:class:`~repro.transport.udp.UdpSender` sources — all running over a
:class:`~repro.runtime.clock.WallClock` instead of a Simulator.

Reported metric: the legitimate senders' share of the victim's goodput
after a warmup, plus their share of the bottleneck capacity (the same
``legitimate traffic share`` metric as
:func:`repro.analysis.metrics.traffic_share`).  ``--min-legit-share`` turns
the goodput-share floor into an exit code for CI.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import traffic_share
from repro.core.endhost import NetFenceEndHost, ReturnPolicy
from repro.core.params import NetFenceParams
from repro.obs.log import JsonLinesLogger
from repro.obs.spans import TRACE_KEY, SpanRecorder, active_span_recorder, use_span_recorder
from repro.runtime.clock import WallClock
from repro.runtime.codec import CodecError, decode_packet, encode_hello, encode_packet
from repro.runtime.serve import DEFAULT_CAPACITY_BPS, DEFAULT_HOST, DEFAULT_PORT, SERVE_AS
from repro.simulator.node import Host
from repro.simulator.packet import Packet
from repro.transport.udp import UdpSender, UdpSink

VICTIM = "victim"


class LiveHost(Host):
    """A :class:`Host` whose access link is a UDP socket to the policer."""

    def __init__(self, clock: WallClock, name: str, as_name: str = SERVE_AS) -> None:
        super().__init__(clock, name, as_name=as_name)
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.codec_errors = 0
        self._spans = active_span_recorder()

    def send(self, packet: Packet) -> None:
        if packet.src_as is None:
            packet.src_as = self.as_name
        packet.created_at = self.clock.now
        for outbound_filter in self.outbound_filters:
            if outbound_filter(packet) is False:
                return
        self.packets_sent += 1
        if self._spans is not None:
            # Each send roots its own trace; the context rides the frame so
            # the policer's serve.* events join as children of this span.
            span = self._spans.event(
                "loadgen.send", ts=self.clock.now,
                attrs={"src": self.name, "dst": packet.dst, "uid": packet.uid})
            packet.headers[TRACE_KEY] = span.context
        self.transport.sendto(encode_packet(packet))

    def hello(self) -> None:
        self.transport.sendto(encode_hello(self.name, self.as_name))

    @property
    def transport(self) -> asyncio.DatagramTransport:
        """The connected socket; raises (even under -O) if used too early."""
        if self._transport is None:
            raise RuntimeError(f"host {self.name} has no connected transport")
        return self._transport

    @transport.setter
    def transport(self, transport: asyncio.DatagramTransport) -> None:
        self._transport = transport

    def on_datagram(self, data: bytes) -> None:
        try:
            packet = decode_packet(data)
        except CodecError:
            self.codec_errors += 1
            return
        if self._spans is not None:
            context = packet.headers.get(TRACE_KEY)
            if context is not None:
                self._spans.event("loadgen.recv", parent=context,
                                  ts=self.clock.now,
                                  attrs={"host": self.name})
        self.receive(packet, None)


class _HostEndpoint(asyncio.DatagramProtocol):
    """asyncio glue: one connected UDP socket per host."""

    def __init__(self, host: LiveHost) -> None:
        self.host = host

    def connection_made(self, transport: asyncio.DatagramTransport) -> None:
        self.host.transport = transport

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.host.on_datagram(data)


async def _make_host(
    clock: WallClock, name: str, server: Tuple[str, int]
) -> LiveHost:
    host = LiveHost(clock, name)
    loop = asyncio.get_running_loop()
    await loop.create_datagram_endpoint(
        lambda: _HostEndpoint(host), remote_addr=server
    )
    return host


async def run_scenario(
    server: Tuple[str, int],
    legit: int = 2,
    attackers: int = 2,
    legit_rate_bps: float = 150_000.0,
    attack_rate_bps: float = 600_000.0,
    warmup_s: float = 2.5,
    duration_s: float = 4.0,
    capacity_bps: float = DEFAULT_CAPACITY_BPS,
    params: Optional[NetFenceParams] = None,
) -> Dict[str, object]:
    """Run the attack scenario against a live policer; return the metrics."""
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    params = params or NetFenceParams()

    legit_names = [f"legit{i}" for i in range(legit)]
    attacker_names = [f"atk{i}" for i in range(attackers)]

    # The victim: a sink that tallies goodput per source, an end-host shim
    # that returns feedback via dedicated feedback packets (UDP flows are
    # one-way) — but never to the attackers it has identified (§3.3).
    victim = await _make_host(clock, VICTIM, server)
    victim_shim = NetFenceEndHost(
        clock,
        victim,
        params=params,
        return_policy=ReturnPolicy(blocked=set(attacker_names)),
        send_feedback_packets=True,
    )
    bytes_by_src: Dict[str, int] = {}
    measuring = False

    def tally(packet: Packet) -> None:
        if measuring:
            bytes_by_src[packet.src] = bytes_by_src.get(packet.src, 0) + packet.size_bytes

    UdpSink(clock, victim, on_receive=tally)

    hosts: List[LiveHost] = [victim]
    shims: List[NetFenceEndHost] = [victim_shim]
    senders: List[UdpSender] = []
    for name in legit_names + attacker_names:
        host = await _make_host(clock, name, server)
        hosts.append(host)
        shims.append(NetFenceEndHost(clock, host, params=params))
        rate = legit_rate_bps if name in legit_names else attack_rate_bps
        senders.append(UdpSender(clock, host, VICTIM, rate))

    # Register every host with the policer before any data flies, so the
    # victim's feedback packets (and our data) are deliverable from the start.
    for _ in range(2):  # UDP: a lost hello must not wedge the run
        for host in hosts:
            host.hello()
        await asyncio.sleep(0.1)

    for sender in senders:
        sender.start()
    await asyncio.sleep(warmup_s)
    measuring = True
    await asyncio.sleep(duration_s)
    measuring = False
    for sender in senders:
        sender.stop()
    for shim in shims:
        shim.stop()
    await asyncio.sleep(0.1)  # let in-flight datagrams land
    for host in hosts:
        if host._transport is not None:
            host._transport.close()

    legit_bytes = sum(bytes_by_src.get(name, 0) for name in legit_names)
    attack_bytes = sum(bytes_by_src.get(name, 0) for name in attacker_names)
    total_bytes = sum(bytes_by_src.values())
    legit_bps = [bytes_by_src.get(name, 0) * 8.0 / duration_s for name in legit_names]
    return {
        "event": "result",
        "server": f"{server[0]}:{server[1]}",
        "legit": legit,
        "attackers": attackers,
        "legit_rate_bps": legit_rate_bps,
        "attack_rate_bps": attack_rate_bps,
        "warmup_s": warmup_s,
        "duration_s": duration_s,
        "legit_goodput_bps": round(sum(legit_bps), 1),
        "attack_goodput_bps": round(attack_bytes * 8.0 / duration_s, 1),
        "legit_share": (legit_bytes / total_bytes) if total_bytes else 0.0,
        "legit_share_of_capacity": traffic_share(legit_bps, capacity_bps),
        "bytes_by_src": dict(sorted(bytes_by_src.items())),
        "victim_rx_packets": victim.packets_received,
        "feedback_packets_sent": victim_shim.stats_feedback_packets_sent,
        "codec_errors": sum(host.codec_errors for host in hosts),
    }


def _emit(result: Dict[str, object],
          log: Optional[JsonLinesLogger] = None) -> None:
    if log is not None:
        record = dict(result)
        event = str(record.pop("event", "result"))
        log.emit(event, **record)
        return
    print(
        f"loadgen: legit share {result['legit_share']:.3f} "
        f"({result['legit_goodput_bps']:.0f} bps legit vs "
        f"{result['attack_goodput_bps']:.0f} bps attack), "
        f"capacity share {result['legit_share_of_capacity']:.3f}, "
        f"{result['feedback_packets_sent']} feedback packets",
        flush=True,
    )


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner loadgen",
        description="Drive a live NetFence policer with legitimate + attack traffic.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, help="policer address")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, help="policer port")
    parser.add_argument("--legit", type=int, default=2, metavar="N")
    parser.add_argument("--attackers", type=int, default=2, metavar="N")
    parser.add_argument("--legit-rate", type=float, default=150_000.0, metavar="BPS")
    parser.add_argument("--attack-rate", type=float, default=600_000.0, metavar="BPS")
    parser.add_argument("--warmup", type=float, default=2.5, metavar="S")
    parser.add_argument("--duration", type=float, default=6.0, metavar="S")
    parser.add_argument("--capacity-bps", type=float, default=DEFAULT_CAPACITY_BPS,
                        help="the policer's capacity (for the capacity-share metric)")
    parser.add_argument("--quick", action="store_true",
                        help="short CI preset (overrides warmup/duration)")
    parser.add_argument("--min-legit-share", type=float, default=None, metavar="X",
                        help="exit 1 if the legit goodput share falls below X")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON output")
    parser.add_argument("--spans", action="store_true",
                        help="root a causal trace per sent packet and carry "
                             "its context on the wire (with --json, spans "
                             "are written to the log stream)")
    args = parser.parse_args(argv)
    if args.quick:
        args.warmup = min(args.warmup, 2.0)
        args.duration = min(args.duration, 4.0)

    spans = SpanRecorder(capacity=65536) if args.spans else None
    log = JsonLinesLogger(name="loadgen") if args.json else None

    async def _run() -> Dict[str, object]:
        return await run_scenario(
            (args.host, args.port),
            legit=args.legit,
            attackers=args.attackers,
            legit_rate_bps=args.legit_rate,
            attack_rate_bps=args.attack_rate,
            warmup_s=args.warmup,
            duration_s=args.duration,
            capacity_bps=args.capacity_bps,
        )

    if spans is not None:
        with use_span_recorder(spans):
            result = asyncio.run(_run())
    else:
        result = asyncio.run(_run())

    if spans is not None:
        if log is not None:
            for record in spans.to_dicts():
                log.span_record(record)
        else:
            print(f"loadgen: recorded {spans.finished} spans "
                  f"({len(spans)} buffered)", flush=True)
    _emit(result, log)
    if not result["bytes_by_src"]:
        print("loadgen: no traffic delivered — is the policer running?",
              file=sys.stderr)
        return 2
    if args.min_legit_share is not None and result["legit_share"] < args.min_legit_share:
        print(
            f"loadgen: legit share {result['legit_share']:.3f} "
            f"< floor {args.min_legit_share}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
