"""Production runtime: the sim/production seam.

The defense logic in :mod:`repro.core` is written against a small *clock*
interface (``now`` / ``schedule`` / ``schedule_at`` / ``cancel``) rather
than against the discrete-event :class:`~repro.simulator.engine.Simulator`
directly.  This package supplies the other side of that seam:

* :mod:`repro.runtime.clock` — the :class:`Clock` protocol (which
  ``Simulator`` satisfies natively) and :class:`WallClock`, the same
  interface over a real :mod:`asyncio` event loop;
* :mod:`repro.runtime.codec` — a deterministic wire format for
  :class:`~repro.simulator.packet.Packet` and the NetFence shim header, so
  stamped MACs verify identically on both sides of a UDP socket;
* :mod:`repro.runtime.serve` — ``runner serve``: a long-lived asyncio UDP
  policer built from the *same* access-router / bottleneck-router / channel
  queue classes the simulator uses, driven by :class:`WallClock`;
* :mod:`repro.runtime.loadgen` — ``runner loadgen``: an attacker/listener
  loadgen harness that drives a live policer over loopback and reports the
  legitimate traffic share under attack.
"""

from repro.runtime.clock import Clock, ClockHandle, WallClock
from repro.runtime.codec import (
    CodecError,
    decode_frame,
    decode_packet,
    encode_hello,
    encode_packet,
)

__all__ = [
    "Clock",
    "ClockHandle",
    "WallClock",
    "CodecError",
    "decode_frame",
    "decode_packet",
    "encode_hello",
    "encode_packet",
]
