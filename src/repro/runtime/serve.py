"""``runner serve`` — a live asyncio UDP NetFence policer.

This is the production side of the sim/production seam: the *same*
:class:`~repro.core.access.NetFenceAccessRouter`,
:class:`~repro.core.bottleneck.NetFenceRouter` and
:class:`~repro.core.bottleneck.NetFenceChannelQueue` classes that run inside
swept simulations are composed over a :class:`~repro.runtime.clock.WallClock`
and fed real datagrams:

* every datagram is decoded with :mod:`repro.runtime.codec`;
* ``hello`` frames register a host name at a socket address (the stand-in
  for the access link that binds a host to its access router);
* ``packet`` frames enter :meth:`NetFenceAccessRouter.admit_from_host`
  exactly as simulated packets do — request-channel policing, feedback
  validation, per-(sender, bottleneck) rate limiting and all;
* admitted packets pass the bottleneck router's ``on_transit`` /
  ``before_enqueue`` hooks (L↓ stamping while a monitoring cycle is open),
  sit in the three-channel queue, and drain at the configured link capacity
  before being re-encoded and sent to the destination's registered address.

The epoch secret ``Ka`` rotates on wall-clock time; the rollover eviction in
:class:`~repro.crypto.keys.AccessRouterSecret` keeps a long-running policer's
key caches bounded.  Because :class:`WallClock` anchors ``now`` to the Unix
epoch, two processes on one machine agree on epochs and on per-packet
latency measurements.

The policer asserts its own output: every *regular* packet leaving the
queue must carry feedback that validates against the access router's
secret (the access router re-stamps feedback on every forward, so a nonzero
``unverified_admissions`` counter means policing was bypassed).
"""

from __future__ import annotations

import argparse
import asyncio
import collections
import signal
import sys
from typing import Any, Callable, Deque, Dict, Optional, Sequence, Tuple

from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceChannelQueue, NetFenceRouter
from repro.core.domain import NetFenceDomain
from repro.core.header import HEADER_KEY
from repro.core.params import NetFenceParams
from repro.crypto.keys import AccessRouterSecret
from repro.obs.export import prometheus_text, snapshot
from repro.obs.flight import FlightRecorder
from repro.obs.log import JsonLinesLogger, bridge_stdlib
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import TRACE_KEY, SpanRecorder, active_span_recorder, set_span_recorder
from repro.obs.trace import ReasonCode, active_tracer
from repro.runtime.clock import WallClock
from repro.runtime.codec import CodecError, decode_frame, encode_packet
from repro.runtime.httpd import HttpServer, Response, json_response, text_response
from repro.simulator.packet import Packet, PacketType

#: The AS every live host and both live routers belong to.  The loadgen
#: harness imports it so that the pairwise key ``Kai`` used for ``L↓``
#: stamping resolves identically on both sides of the socket.
SERVE_AS = "AS-edge"

#: Name of the single policed output link.
BOTTLENECK_LINK = "live-bneck"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 9633
DEFAULT_CAPACITY_BPS = 1_000_000.0
DEFAULT_SECRET = "netfence-dev"


def percentiles_ms(samples: Sequence[float]) -> Dict[str, float]:
    """p50/p90/p99/max of a latency sample set, in milliseconds."""
    if not samples:
        return {"n": 0}
    data = sorted(samples)
    n = len(data)

    def pick(q: float) -> float:
        idx = min(int(q * (n - 1) + 0.5), n - 1)
        return round(data[idx] * 1000.0, 3)

    return {
        "n": n,
        "p50": pick(0.50),
        "p90": pick(0.90),
        "p99": pick(0.99),
        "max": round(data[-1] * 1000.0, 3),
    }


class _WireNeighbor:
    """The far end of the egress link: the UDP socket."""

    name = "wire"


class _EgressLink:
    """The slice of the :class:`~repro.simulator.link.Link` surface that
    :class:`NetFenceRouter` needs: a name to register with the domain, a
    queue to watch, a capacity and a delivered-bytes counter for the
    attack-detection loop.  Transmission itself is the drain task's job."""

    def __init__(self, name: str, capacity_bps: float, queue: NetFenceChannelQueue) -> None:
        self.name = name
        self.capacity_bps = capacity_bps
        self.queue = queue
        self.bytes_delivered = 0
        self.dst_node = _WireNeighbor()
        self.src_node: Optional[object] = None


class _LiveAccessRouter(NetFenceAccessRouter):
    """Access router whose :meth:`forward` hands packets to the live egress
    path instead of a routing table.  Rate-limiter releases re-enter through
    here, so cached packets take the same egress path as pass-through ones."""

    def __init__(self, *args: Any, egress: Callable[[Packet], None],
                 **kwargs: Any) -> None:
        self._egress_fn = egress
        super().__init__(*args, **kwargs)

    def forward(self, packet: Packet) -> None:
        self.packets_forwarded += 1
        self._egress_fn(packet)


class LivePolicer(asyncio.DatagramProtocol):
    """A NetFence access + bottleneck router pair over one UDP socket."""

    def __init__(
        self,
        clock: WallClock,
        params: Optional[NetFenceParams] = None,
        master: bytes = DEFAULT_SECRET.encode(),
        capacity_bps: float = DEFAULT_CAPACITY_BPS,
        force_mon: bool = False,
        as_fairness: bool = False,
    ) -> None:
        self.clock = clock
        self.params = params or NetFenceParams()
        self.capacity_bps = capacity_bps
        self.domain = NetFenceDomain(params=self.params, master=master)
        self.secret = AccessRouterSecret("live-Ra", master=master)
        # The live policer always runs with metrics on: its own registry is
        # installed around component construction so the access router,
        # bottleneck router, and every queue register their pull-based
        # watches against it (simulated sweeps, by contrast, keep the
        # process-global registry disabled).
        self.registry = MetricsRegistry(enabled=True, clock=clock)
        self._tracer = active_tracer()
        self._spans = active_span_recorder()
        #: Flight recorder + dump path, attached by ``_serve`` (always on in
        #: the CLI; library users may leave it unattached).
        self.flight: Optional[FlightRecorder] = None
        self.flight_path: Optional[str] = None
        self._on_flight: Optional[Callable[[str, str], None]] = None
        with use_registry(self.registry):
            self.access = _LiveAccessRouter(
                clock,
                "live-Ra",
                as_name=SERVE_AS,
                domain=self.domain,
                secret=self.secret,
                egress=self._egress,
            )
            self.bottleneck = NetFenceRouter(
                clock, "live-Rb", as_name=SERVE_AS, domain=self.domain,
                force_mon=force_mon
            )
            self.queue = NetFenceChannelQueue(
                clock, capacity_bps, params=self.params, as_fairness=as_fairness
            )
        self.egress_link = _EgressLink(BOTTLENECK_LINK, capacity_bps, self.queue)
        self.bottleneck.attach_link(self.egress_link)

        #: host name -> socket address, learned from ``hello`` frames.
        self.addrs: Dict[str, Tuple[str, int]] = {}
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.accepting = True
        self._drain_wake = asyncio.Event()
        self._drain_task: Optional[asyncio.Task] = None
        #: Recent per-packet one-way queueing latencies (created_at → egress).
        self.latencies: Deque[float] = collections.deque(maxlen=4096)
        #: Delivered bytes per source host — the live legit-share SLO input.
        self.tx_bytes_by_src: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "datagrams_rx": 0,
            "codec_errors": 0,
            "hellos": 0,
            "packets_rx": 0,
            "ingress_dropped": 0,
            "egress_dropped": 0,
            "packets_tx": 0,
            "bytes_tx": 0,
            "undeliverable": 0,
            "unverified_admissions": 0,
        }
        # Bridge the policer's own counters and state into the registry so
        # the /metrics endpoint and JSON snapshots see one coherent set.
        for event in self.counters:
            self.registry.watch(
                "netfence_serve_events_total",
                lambda key=event: self.counters[key],
                help="live policer ingress/egress events by outcome",
                labels={"event": event})
        self.registry.watch("netfence_serve_registered_hosts",
                            lambda: len(self.addrs),
                            help="hosts registered via hello frames")
        self.registry.watch("netfence_serve_key_epoch",
                            lambda: float(self.secret.epoch_of(self.clock.now)),
                            help="current Ka rotation epoch")
        self.registry.watch("netfence_serve_in_mon",
                            lambda: float(self.in_mon),
                            help="1 while the egress link is in the mon state")
        self._latency_hist = self.registry.histogram(
            "netfence_serve_latency_seconds",
            help="per-packet queueing latency (created_at to egress)",
            buckets=(0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5))

    # -- asyncio protocol ---------------------------------------------------------
    def connection_made(self, transport: asyncio.DatagramTransport) -> None:  # pragma: no cover - asyncio glue
        self.transport = transport
        self._drain_task = asyncio.get_running_loop().create_task(self._drain())

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        if not self.accepting:
            return
        self.counters["datagrams_rx"] += 1
        try:
            kind, value = decode_frame(data)
        except CodecError:
            self.counters["codec_errors"] += 1
            return
        if kind == "hello":
            name, _as_name = value
            self.addrs[name] = addr
            self.access.register_local_host(name)
            self.counters["hellos"] += 1
            return
        packet: Packet = value
        # Every datagram on this socket entered the network here: the access
        # router, not the sender, decides the packet's source AS.
        packet.src_as = SERVE_AS
        self.counters["packets_rx"] += 1
        verdict = self.access.admit_from_host(packet, None)
        if verdict is True:
            self._span_event("serve.admit", packet)
            self._egress(packet)
        elif verdict is False:
            self.counters["ingress_dropped"] += 1
            self._span_event("serve.admit", packet, status="drop")
        else:
            # verdict None: a rate limiter cached the packet; its release
            # re-enters through _LiveAccessRouter.forward → _egress.
            self._span_event("serve.admit", packet, status="cached")

    def error_received(self, exc: Exception) -> None:  # pragma: no cover - asyncio glue
        pass

    # -- egress path --------------------------------------------------------------
    def _span_event(self, name: str, packet: Packet, status: str = "ok",
                    attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record one instant span for a packet that carries a trace context.

        Each event is a zero-duration child of the context the packet rode
        in with, so a loadgen-rooted trace gains ``serve.*`` children that
        ``runner trace --spans`` can stitch from the merged logs.  Cost when
        span recording is off: nothing (the call sites guard on
        ``self._spans``); cost for untraced packets: one dict lookup.
        """
        spans = self._spans
        if spans is None:
            return
        context = packet.headers.get(TRACE_KEY)
        if context is None:
            return
        spans.event(name, parent=context, ts=self.clock.now,
                    status=status, attrs=attrs)

    def _egress(self, packet: Packet) -> None:
        bneck = self.bottleneck
        if not bneck.on_transit(packet, None):
            self.counters["egress_dropped"] += 1
            self._span_event("serve.egress", packet, status="drop",
                             attrs={"stage": "transit"})
            return
        if not bneck.before_enqueue(packet, self.egress_link):
            self.counters["egress_dropped"] += 1
            self._span_event("serve.egress", packet, status="drop",
                             attrs={"stage": "enqueue"})
            return
        bneck.packets_forwarded += 1
        if self.queue.enqueue(packet):
            self._drain_wake.set()
        elif self._spans is not None:
            # The channel queue dropped it (recorded in queue stats, and —
            # for regular packets — fed back into attack detection).
            self._span_event("serve.egress", packet, status="drop",
                             attrs={"stage": "queue"})

    async def _drain(self) -> None:
        """Dequeue at link speed; re-encode and transmit each packet."""
        queue = self.queue
        while True:
            packet = queue.dequeue()
            if packet is None:
                wait = queue.time_until_ready()
                if wait is not None:
                    # Only budget-capped request traffic remains.
                    await asyncio.sleep(min(wait, 0.05))
                    continue
                if not self.accepting:
                    return  # drained
                self._drain_wake.clear()
                if len(queue):
                    continue  # raced with an enqueue
                try:
                    await asyncio.wait_for(self._drain_wake.wait(), timeout=0.25)
                except asyncio.TimeoutError:
                    pass
                continue
            self._deliver(packet)
            await asyncio.sleep(packet.size_bytes * 8.0 / self.capacity_bps)

    def _deliver(self, packet: Packet) -> None:
        now = self.clock.now
        if packet.ptype is PacketType.REGULAR:
            header = packet.headers.get(HEADER_KEY)
            feedback = header.feedback if header is not None else None
            link_as = (
                self.domain.as_for_link(feedback.link)
                if feedback is not None and feedback.link
                else None
            )
            if feedback is None or not self.access.stamper.validate(
                feedback,
                packet.src,
                packet.dst,
                now,
                self.params.feedback_expiration,
                link_as=link_as,
            ):
                self.counters["unverified_admissions"] += 1
                if self._tracer is not None:
                    self._tracer.emit("serve:deliver",
                                      ReasonCode.UNVERIFIED_FEEDBACK, packet,
                                      ts=now, detail="egress assert failed")
                self._span_event("serve.unverified", packet, status="error")
                self.flight_dump("unverified_admission",
                                 src=packet.src, dst=packet.dst,
                                 uid=packet.uid)
        self.egress_link.bytes_delivered += packet.size_bytes
        latency = now - packet.created_at
        self.latencies.append(latency)
        self._latency_hist.observe(latency)
        addr = self.addrs.get(packet.dst)
        if addr is None:
            self.counters["undeliverable"] += 1
            if self._tracer is not None:
                self._tracer.emit("serve:deliver",
                                  ReasonCode.DROP_UNDELIVERABLE, packet, ts=now)
            self._span_event("serve.deliver", packet, status="drop",
                             attrs={"reason": "undeliverable"})
            return
        self.counters["packets_tx"] += 1
        self.counters["bytes_tx"] += packet.size_bytes
        self.tx_bytes_by_src[packet.src] = (
            self.tx_bytes_by_src.get(packet.src, 0) + packet.size_bytes)
        self._span_event("serve.deliver", packet,
                         attrs={"latency_s": round(latency, 6)})
        if self._tracer is not None:
            self._tracer.emit("serve:deliver", ReasonCode.DELIVERED, packet,
                              ts=now, detail=f"to {addr[0]}:{addr[1]}")
        if self.transport is None:
            # Deliveries only happen after connection_made; a None transport
            # here is a lifecycle bug and must fail loudly even under -O.
            raise RuntimeError("policer transport not connected")
        self.transport.sendto(encode_packet(packet), addr)

    # -- lifecycle ----------------------------------------------------------------
    async def shutdown(self, drain_timeout: float = 2.0) -> None:
        """Stop accepting datagrams, drain the queue, cancel timers."""
        self.accepting = False
        self._drain_wake.set()
        if self._drain_task is not None:
            try:
                await asyncio.wait_for(self._drain_task, timeout=drain_timeout)
            except asyncio.TimeoutError:
                self._drain_task.cancel()
        self.access._adjust_timer.stop()
        self.bottleneck._detect_timer.stop()
        for limiter in self.access.rate_limiters.values():
            limiter.close()
        if self.transport is not None:
            self.transport.close()

    # -- flight recorder ----------------------------------------------------------
    def attach_flight(self, flight: FlightRecorder, path: str,
                      on_dump: Optional[Callable[[str, str], None]] = None) -> None:
        """Arm the flight recorder: dumps go to ``path`` on first trigger."""
        self.flight = flight
        self.flight_path = path
        self._on_flight = on_dump
        if self._spans is not None:
            self._spans.add_sink(flight.record_span)

    def flight_dump(self, trigger: str, **context: Any) -> Optional[str]:
        """Trigger a forensic dump (no-op if unarmed or already dumped)."""
        if self.flight is None or self.flight_path is None:
            return None
        if self.flight.triggered is not None:
            return None
        context.setdefault("stats", self.stats(event="flight_context"))
        path = self.flight.dump(self.flight_path, trigger, context=context)
        if path is not None and self._on_flight is not None:
            self._on_flight(trigger, path)
        return path

    # -- introspection ------------------------------------------------------------
    @property
    def in_mon(self) -> bool:
        return self.bottleneck.link_state(BOTTLENECK_LINK).in_mon

    def legit_share(self, prefix: str) -> Optional[float]:
        """Fraction of delivered bytes from sources named ``prefix*``.

        ``None`` until anything has been delivered — an idle policer is not
        in breach of its SLO.
        """
        total = sum(self.tx_bytes_by_src.values())
        if total <= 0:
            return None
        legit = sum(v for k, v in self.tx_bytes_by_src.items()
                    if k.startswith(prefix))
        return legit / total

    def metrics_snapshot(self) -> Dict[str, object]:
        """Flat ``{metric{labels}: value}`` view of the policer's registry."""
        return snapshot(self.registry)

    def metrics_text(self) -> str:
        """Prometheus exposition text for the policer's registry."""
        return prometheus_text(self.registry)

    def stats(self, event: str = "stats") -> Dict[str, object]:
        """One JSON-lines stats event.

        The flat legacy keys (asserted by the CI serve-smoke job and the
        loadgen harness) are preserved; drop reasons and cache sizes ride
        along as new sub-keys sourced from the same state the registry
        watches read.
        """
        state = self.bottleneck.link_state(BOTTLENECK_LINK)
        return {
            "event": event,
            "now": round(self.clock.now, 3),
            "capacity_bps": self.capacity_bps,
            "registered_hosts": len(self.addrs),
            "key_epoch": self.secret.epoch_of(self.clock.now),
            "access": dict(self.access.counters),
            "active_rate_limiters": self.access.active_rate_limiters,
            "in_mon": state.in_mon,
            "decr_stamped": state.decr_stamped,
            "caches": {
                "secret_epochs": self.secret.cache_size,
                "stamper_memo": self.access.stamper.memo_size,
                "registry_instruments": len(self.registry),
            },
            "queue": {
                "depth_pkts": len(self.queue),
                "depth_bytes": self.queue.byte_length,
                "arrivals": self.queue.stats.arrivals,
                "dropped": self.queue.stats.dropped,
                "drop_reasons": self.queue.stats.drop_reasons(),
                "regular_dropped": self.queue.regular_queue.stats.dropped,
            },
            "latency_ms": percentiles_ms(self.latencies),
            "tx_bytes_by_src": dict(self.tx_bytes_by_src),
            **self.counters,
        }


async def start_policer(
    host: str = DEFAULT_HOST,
    port: int = 0,
    **policer_kwargs: Any,
) -> LivePolicer:
    """Bind a :class:`LivePolicer` to a UDP socket (port 0 → ephemeral)."""
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    _transport, protocol = await loop.create_datagram_endpoint(
        lambda: LivePolicer(clock, **policer_kwargs),
        local_addr=(host, port),
    )
    return protocol


def metrics_endpoint(policer: LivePolicer) -> HttpServer:
    """The policer's HTTP telemetry surface (Prometheus + JSON)."""

    def handler(path: str, query: Dict[str, str]) -> Optional[Response]:
        if path == "/metrics":
            return text_response(policer.metrics_text(),
                                 content_type="text/plain; version=0.0.4")
        if path == "/stats.json":
            return json_response(policer.stats())
        if path == "/healthz":
            return text_response("ok\n")
        return None

    return HttpServer(handler)


async def _serve(args: argparse.Namespace) -> Dict[str, object]:
    spans: Optional[SpanRecorder] = None
    previous_spans: Optional[SpanRecorder] = None
    if args.spans:
        spans = SpanRecorder(capacity=8192)
        previous_spans = set_span_recorder(spans)
    try:
        policer = await start_policer(
            host=args.host,
            port=args.port,
            params=NetFenceParams(),
            master=args.secret.encode(),
            capacity_bps=args.capacity_bps,
            force_mon=args.force_mon,
            as_fairness=args.as_fairness,
        )
    finally:
        if args.spans:
            set_span_recorder(previous_spans)

    log: Optional[JsonLinesLogger] = None
    if args.json:
        log = JsonLinesLogger(clock=policer.clock, name="serve")
        bridge_stdlib(log)
        if spans is not None:
            # Every finished span doubles as a log record, so the stdout
            # stream is also the span export `runner trace --spans` reads.
            spans.add_sink(log.span_record)
    if spans is not None:
        spans.clock = policer.clock

    # The flight recorder is always on: spans ring via attach_flight, log
    # ring via a sink that skips span records (the span ring already has
    # them), metrics ring via the monitor loop below.
    flight = FlightRecorder()
    policer.attach_flight(
        flight, args.flight_dump,
        on_dump=lambda trigger, path: _emit(
            {"event": "flight_dump", "trigger": trigger, "path": path}, log))
    if log is not None:
        log.add_sink(lambda record: None if record.get("event") == "span"
                     else flight.record_log(record))

    metrics_server: Optional[HttpServer] = None
    metrics_port: Optional[int] = None
    if args.metrics_port is not None:
        metrics_server = metrics_endpoint(policer)
        _mhost, metrics_port = await metrics_server.start(
            args.host, args.metrics_port)
    sockname = policer.transport.get_extra_info("sockname")
    listening: Dict[str, object] = {
        "event": "listening", "host": sockname[0], "port": sockname[1],
        "capacity_bps": args.capacity_bps,
    }
    if metrics_port is not None:
        listening["metrics_port"] = metrics_port
    _emit(listening, log)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-Unix
            pass
    try:
        loop.add_signal_handler(
            signal.SIGUSR1, lambda: policer.flight_dump("sigusr1"))
    except (NotImplementedError, AttributeError):  # pragma: no cover - non-Unix
        pass

    def _loop_exception(loop: asyncio.AbstractEventLoop,
                        context: Dict[str, Any]) -> None:
        error = context.get("exception") or context.get("message")
        policer.flight_dump("unhandled_exception", error=repr(error))
        loop.default_exception_handler(context)

    loop.set_exception_handler(_loop_exception)
    if policer._drain_task is not None:
        def _drain_done(task: "asyncio.Task[None]") -> None:
            if not task.cancelled() and task.exception() is not None:
                policer.flight_dump("unhandled_exception",
                                    error=repr(task.exception()))
        policer._drain_task.add_done_callback(_drain_done)

    async def _stats_loop() -> None:
        while True:
            await asyncio.sleep(args.stats_interval)
            _emit(policer.stats(), log)

    async def _monitor_loop() -> None:
        """Feed the flight recorder's metrics ring and police the SLO."""
        while True:
            await asyncio.sleep(args.monitor_interval)
            flight.record_metrics(policer.stats(event="snapshot"))
            if args.slo_min_share is not None:
                share = policer.legit_share(args.slo_legit_prefix)
                if share is not None and share < args.slo_min_share:
                    policer.flight_dump(
                        "slo_breach",
                        legit_share=round(share, 6),
                        slo_min_share=args.slo_min_share,
                        slo_legit_prefix=args.slo_legit_prefix)

    stats_task = (
        loop.create_task(_stats_loop()) if args.stats_interval > 0 else None
    )
    monitor_task = loop.create_task(_monitor_loop())
    try:
        if args.duration > 0:
            try:
                await asyncio.wait_for(stop.wait(), timeout=args.duration)
            except asyncio.TimeoutError:
                pass
        else:
            await stop.wait()
    finally:
        if stats_task is not None:
            stats_task.cancel()
        monitor_task.cancel()
        if metrics_server is not None:
            await metrics_server.close()
        await policer.shutdown()
        if spans is not None and log is not None:
            _emit({"event": "spans_summary", "started": spans.started,
                   "finished": spans.finished, "buffered": len(spans)}, log)
    return policer.stats(event="final")


def _emit(payload: Dict[str, object],
          log: Optional[JsonLinesLogger] = None) -> None:
    if log is not None:
        record = dict(payload)
        event = str(record.pop("event", "stats"))
        log.emit(event, **record)
        return
    event = payload.get("event")
    if event == "listening":
        print(f"serve: listening on {payload['host']}:{payload['port']} "
              f"(capacity {payload['capacity_bps']:.0f} bps)", flush=True)
        return
    if event == "flight_dump":
        print(f"serve: flight dump ({payload['trigger']}) -> {payload['path']}",
              flush=True)
        return
    latency = payload.get("latency_ms", {})
    print(
        f"serve[{event}] t={payload['now']} rx={payload['packets_rx']} "
        f"tx={payload['packets_tx']} dropped={payload['queue']['dropped']} "
        f"mon={payload['in_mon']} limiters={payload['active_rate_limiters']} "
        f"unverified={payload['unverified_admissions']} "
        f"p50={latency.get('p50', '-')}ms p99={latency.get('p99', '-')}ms",
        flush=True,
    )


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="runner serve",
        description="Run a live NetFence policer on a UDP socket.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"UDP port to bind (default {DEFAULT_PORT}; 0 = ephemeral)")
    parser.add_argument("--capacity-bps", type=float, default=DEFAULT_CAPACITY_BPS,
                        help="egress link capacity in bits/s")
    parser.add_argument("--secret", default=DEFAULT_SECRET,
                        help="master secret for Ka/Kai derivation")
    parser.add_argument("--force-mon", action="store_true",
                        help="start with the bottleneck link in the mon state")
    parser.add_argument("--as-fairness", action="store_true",
                        help="per-source-AS DRR on the regular channel (§4.5)")
    parser.add_argument("--stats-interval", type=float, default=0.0,
                        help="print a stats line every N seconds (0 = off)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="serve /metrics (Prometheus text) and /stats.json "
                             "on this TCP port (0 = ephemeral; default off)")
    parser.add_argument("--duration", type=float, default=0.0,
                        help="stop after N seconds (0 = run until SIGINT/SIGTERM)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON-lines output")
    parser.add_argument("--spans", action="store_true",
                        help="record causal spans for packets carrying a "
                             "trace context (with --json, spans are written "
                             "to the log stream)")
    parser.add_argument("--flight-dump", default="netfence-flight.json",
                        help="path for the flight-recorder forensic dump")
    parser.add_argument("--slo-min-share", type=float, default=None,
                        help="trigger a flight dump when the legit share of "
                             "delivered bytes falls below this fraction")
    parser.add_argument("--slo-legit-prefix", default="legit",
                        help="source-host name prefix counted as legitimate "
                             "for the SLO (default 'legit')")
    parser.add_argument("--monitor-interval", type=float, default=0.25,
                        help="flight-recorder snapshot / SLO check period")
    args = parser.parse_args(argv)

    try:
        final = asyncio.run(_serve(args))
    except OSError as exc:
        print(f"serve: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    _emit(final, JsonLinesLogger(name="serve") if args.json else None)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(cli_main())
