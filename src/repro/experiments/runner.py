"""Command-line entry point: run any paper experiment and print its table.

Usage::

    netfence-experiment list
    netfence-experiment fig7
    netfence-experiment fig8 [--quick] [--jobs N] [--points N] [--json]
    netfence-experiment all [--quick] [--jobs N]

Every experiment is a declarative grid of :class:`ScenarioSpec` points
executed by :mod:`repro.experiments.sweep`:

* ``--quick`` shrinks sweeps (fewer scale points, shorter simulated time) so
  a full pass completes in a few minutes on a laptop; the default settings
  match the values recorded in EXPERIMENTS.md.
* ``--jobs N`` runs grid points across N worker processes.  Row order (and
  the formatted table) is byte-identical to a serial run.
* ``--points N`` keeps only the first N grid points — handy for smoke tests.
* ``--json`` emits result rows as JSON instead of the paper-style table.
* ``--cache [DIR]`` caches per-point results on disk keyed on
  (experiment, params, seed), making re-runs instant.
* ``--store PATH`` routes reads and writes through the queryable SQLite
  :class:`~repro.store.ResultStore` instead of the pickle cache.

Distributed execution (see :mod:`repro.experiments.distrib`)::

    netfence-experiment submit fig12 --quick --queue QDIR
    netfence-experiment worker --queue QDIR --store results.sqlite   # xN
    netfence-experiment status --queue QDIR --store results.sqlite
    netfence-experiment export fig12 --quick --store results.sqlite
    netfence-experiment compact --store results.sqlite

Hot-path profiling (see :mod:`repro.perf`)::

    netfence-experiment profile fig12 --quick [--point N] [--top N] [--json]

Static analysis (see :mod:`repro.lint`)::

    netfence-experiment lint [--strict] [--json] [--select/--ignore CODES] [paths...]

Telemetry (see :mod:`repro.obs` and :mod:`repro.runtime.dashboard`)::

    netfence-experiment trace fig12 --quick [--point N] [--follow WHO] [--json]
    netfence-experiment dashboard --store results.sqlite [--queue QDIR] [--serve-log LOG]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from repro.analysis.rows import json_safe, rows_to_dicts
from repro.experiments import (
    fig6_scaling,
    fig7_overhead,
    fig8_unwanted,
    fig9_colluding,
    fig10_parkinglot,
    fig11_onoff,
    fig12_deployment,
    fig13_multifeedback,
    fig14_inference,
    theorem_fairshare,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    run_sweep,
)


@dataclass(frozen=True)
class ExperimentDef:
    """One runnable experiment: a grid builder plus a table formatter."""

    name: str
    build_grid: Callable[[bool], List[ScenarioSpec]]
    format_rows: Callable[[List[Any]], str]


def _fig6_scaling_grid(quick: bool) -> List[ScenarioSpec]:
    if quick:
        return fig6_scaling.grid(
            topology_sizes=(12, 20, 32),
            botnet_sizes=(10_000, 1_000_000),
            placements=("uniform", "stub_concentrated"),
            size_ref=20,
            sim_time=40.0,
            warmup=15.0,
        )
    return fig6_scaling.grid()


def _fig7_grid(quick: bool) -> List[ScenarioSpec]:
    return fig7_overhead.grid(iterations=500 if quick else 2000)


def _fig8_grid(quick: bool) -> List[ScenarioSpec]:
    steps = fig8_unwanted.SCALE_STEPS[:2] if quick else fig8_unwanted.SCALE_STEPS
    return fig8_unwanted.grid(scale_steps=steps, sim_time=40.0 if quick else 60.0)


def _fig9_grid(quick: bool) -> List[ScenarioSpec]:
    steps = fig9_colluding.SCALE_STEPS[:2] if quick else fig9_colluding.SCALE_STEPS
    return fig9_colluding.grid(
        scale_steps=steps,
        sim_time=150.0 if quick else 240.0,
        warmup=75.0 if quick else 120.0,
    )


def _fig10_grid(quick: bool) -> List[ScenarioSpec]:
    return fig10_parkinglot.grid(
        policy="single",
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )


def _fig11_grid(quick: bool) -> List[ScenarioSpec]:
    toffs = fig11_onoff.TOFF_VALUES[:2] if quick else fig11_onoff.TOFF_VALUES
    return fig11_onoff.grid(
        toff_values=toffs,
        sim_time=150.0 if quick else 300.0,
        warmup=60.0 if quick else 100.0,
    )


def _fig12_grid(quick: bool) -> List[ScenarioSpec]:
    return fig12_deployment.grid(
        fractions=(0.0, 0.5, 1.0) if quick else fig12_deployment.FRACTIONS,
        strategies=("constant", "strategic") if quick else fig12_deployment.STRATEGIES,
        sim_time=80.0 if quick else 150.0,
        warmup=30.0 if quick else 50.0,
    )


def _fig13_grid(quick: bool) -> List[ScenarioSpec]:
    return fig13_multifeedback.grid(
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )


def _fig14_grid(quick: bool) -> List[ScenarioSpec]:
    return fig14_inference.grid(
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )


def _theorem_grid(quick: bool) -> List[ScenarioSpec]:
    if quick:
        return theorem_fairshare.grid(intervals=200, sim_time=150.0, warmup=75.0)
    return theorem_fairshare.grid()


EXPERIMENTS: Dict[str, ExperimentDef] = {
    "fig6_scaling": ExperimentDef(
        "fig6_scaling", _fig6_scaling_grid, fig6_scaling.format_table),
    "fig7": ExperimentDef("fig7", _fig7_grid, fig7_overhead.format_table),
    "fig8": ExperimentDef("fig8", _fig8_grid, fig8_unwanted.format_table),
    "fig9": ExperimentDef("fig9", _fig9_grid, fig9_colluding.format_table),
    "fig10": ExperimentDef("fig10", _fig10_grid, fig10_parkinglot.format_table),
    "fig11": ExperimentDef("fig11", _fig11_grid, fig11_onoff.format_table),
    "fig12": ExperimentDef("fig12", _fig12_grid, fig12_deployment.format_table),
    "fig13": ExperimentDef(
        "fig13", _fig13_grid,
        lambda rows: fig10_parkinglot.format_table(
            rows, figure="Fig. 13 (multi-bottleneck feedback)"),
    ),
    "fig14": ExperimentDef(
        "fig14", _fig14_grid,
        lambda rows: fig10_parkinglot.format_table(
            rows, figure="Fig. 14 (rate-limiter inference)"),
    ),
    "theorem": ExperimentDef("theorem", _theorem_grid, theorem_fairshare.format_table),
}

#: Default directory for ``--cache`` when no path is given.
DEFAULT_CACHE_DIR = ".netfence-sweep-cache"

#: Subcommands handled by :mod:`repro.experiments.distrib`.
DISTRIB_COMMANDS = ("submit", "worker", "export", "status", "compact")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in DISTRIB_COMMANDS:
        # Deferred import: the distributed layer pulls in the SQLite store,
        # which plain figure runs do not need.
        from repro.experiments import distrib

        return distrib.cli_main(argv, experiments=EXPERIMENTS)
    if argv and argv[0] == "profile":
        # Deferred import, same reasoning: profiling is not needed by runs.
        from repro import perf

        return perf.cli_main(argv[1:], experiments=EXPERIMENTS)
    if argv and argv[0] == "serve":
        # Deferred import: the live policer pulls in asyncio wiring that
        # simulation sweeps never touch.
        from repro.runtime.serve import cli_main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "loadgen":
        from repro.runtime.loadgen import cli_main as loadgen_main

        return loadgen_main(argv[1:])
    if argv and argv[0] == "lint":
        # Deferred import: the linter is a dev/CI tool; figure runs never
        # need the AST machinery.
        from repro.lint import cli_main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "trace":
        # Deferred import: tracing replays one point with the obs layer on.
        from repro.obs.cli import cli_main as trace_main

        return trace_main(argv[1:], experiments=EXPERIMENTS)
    if argv and argv[0] == "dashboard":
        # Deferred import: the dashboard pulls in the asyncio HTTP server.
        from repro.runtime.dashboard import cli_main as dashboard_main

        return dashboard_main(argv[1:])
    if argv and argv[0] == "flightdump":
        # Deferred import: forensic pretty-printing is an operator tool.
        from repro.obs.flight import cli_main as flight_main

        return flight_main(argv[1:])
    if argv and argv[0] == "bench" and argv[1:2] == ["report"]:
        # Only the `bench report` form dispatches here — a registered
        # experiment may itself be called "bench" (the test fixtures use
        # that name), and plain `runner bench` must keep running it.
        # Deferred import: the perf report reads the store lazily anyway.
        from repro.analysis.bench_report import cli_main as bench_main

        return bench_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="netfence-experiment",
        description="Reproduce a NetFence (SIGCOMM 2010) evaluation figure or table.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="which experiment to run")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps / shorter simulations")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="number of worker processes for sweep points (default 1)")
    parser.add_argument("--points", type=int, default=None, metavar="N",
                        help="run only the first N grid points of each experiment")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit result rows as JSON instead of tables")
    parser.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
                        metavar="DIR",
                        help="cache per-point results on disk (default dir: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="read/write points through the SQLite result store "
                             "(queryable via the export/status subcommands)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.points is not None and args.points < 1:
        parser.error("--points must be >= 1")

    if args.cache and args.store:
        parser.error("--cache and --store are mutually exclusive")
    cache = None
    if args.cache:
        try:
            cache = SweepCache(args.cache)
        except OSError as exc:
            parser.error(f"cannot use cache directory {args.cache!r}: {exc}")
    elif args.store:
        from repro.store import ResultStore

        try:
            cache = ResultStore(args.store)
        except OSError as exc:
            parser.error(f"cannot open result store {args.store!r}: {exc}")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    json_payload: List[Dict[str, Any]] = []
    failed_points = 0
    for name in names:
        experiment = EXPERIMENTS[name]
        specs = experiment.build_grid(args.quick)
        if args.points is not None:
            specs = specs[: args.points]
        started = time.time()
        results = run_sweep(specs, jobs=args.jobs, cache=cache)
        rows = merge_rows(results)
        elapsed = time.time() - started
        cached_points = sum(1 for r in results if r.cached)
        failures = [r for r in results if r.error is not None]
        failed_points += len(failures)
        for failure in failures:
            print(f"[{name} point {failure.spec.describe()} failed]\n{failure.error}",
                  file=sys.stderr)
        if args.as_json:
            json_payload.append({
                "experiment": name,
                "quick": args.quick,
                "jobs": args.jobs,
                "points": len(specs),
                "cached_points": cached_points,
                "failed_points": len(failures),
                "elapsed_s": round(elapsed, 3),
                "rows": rows_to_dicts(rows),
            })
        else:
            print(experiment.format_rows(rows))
            suffix = f", {cached_points}/{len(specs)} points cached" if cache else ""
            if failures:
                suffix += f", {len(failures)} points FAILED"
            print(f"[{name} completed in {elapsed:.1f}s with --jobs {args.jobs}{suffix}]\n")
    if args.as_json:
        json.dump(json_safe(json_payload), sys.stdout, indent=2, sort_keys=True,
                  default=str, allow_nan=False)
        print()
    return 1 if failed_points else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
