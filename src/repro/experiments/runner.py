"""Command-line entry point: run any paper experiment and print its table.

Usage::

    netfence-experiment list
    netfence-experiment fig7
    netfence-experiment fig8 [--quick]
    netfence-experiment all [--quick]

``--quick`` shrinks sweeps (fewer scale points, shorter simulated time) so a
full pass completes in a few minutes on a laptop; the default settings match
the values recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    fig7_overhead,
    fig8_unwanted,
    fig9_colluding,
    fig10_parkinglot,
    fig11_onoff,
    fig13_multifeedback,
    fig14_inference,
    theorem_fairshare,
)


def _run_fig7(quick: bool) -> str:
    rows = fig7_overhead.run(iterations=500 if quick else 2000)
    return fig7_overhead.format_table(rows)


def _run_fig8(quick: bool) -> str:
    steps = fig8_unwanted.SCALE_STEPS[:2] if quick else fig8_unwanted.SCALE_STEPS
    rows = fig8_unwanted.run(scale_steps=steps, sim_time=40.0 if quick else 60.0)
    return fig8_unwanted.format_table(rows)


def _run_fig9(quick: bool) -> str:
    steps = fig9_colluding.SCALE_STEPS[:2] if quick else fig9_colluding.SCALE_STEPS
    rows = fig9_colluding.run(
        scale_steps=steps,
        sim_time=150.0 if quick else 240.0,
        warmup=75.0 if quick else 120.0,
    )
    return fig9_colluding.format_table(rows)


def _run_fig10(quick: bool) -> str:
    rows = fig10_parkinglot.run(
        policy="single",
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )
    return fig10_parkinglot.format_table(rows)


def _run_fig11(quick: bool) -> str:
    toffs = fig11_onoff.TOFF_VALUES[:2] if quick else fig11_onoff.TOFF_VALUES
    rows = fig11_onoff.run(
        toff_values=toffs,
        sim_time=150.0 if quick else 300.0,
        warmup=60.0 if quick else 100.0,
    )
    return fig11_onoff.format_table(rows)


def _run_fig13(quick: bool) -> str:
    rows = fig13_multifeedback.run(
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )
    return fig10_parkinglot.format_table(rows, figure="Fig. 13 (multi-bottleneck feedback)")


def _run_fig14(quick: bool) -> str:
    rows = fig14_inference.run(
        sim_time=120.0 if quick else 200.0,
        warmup=60.0 if quick else 100.0,
    )
    return fig10_parkinglot.format_table(rows, figure="Fig. 14 (rate-limiter inference)")


def _run_theorem(quick: bool) -> str:
    if quick:
        rows = theorem_fairshare.run_fluid(intervals=200)
        rows.append(theorem_fairshare.run_packet(sim_time=150.0, warmup=75.0))
    else:
        rows = theorem_fairshare.run()
    return theorem_fairshare.format_table(rows)


EXPERIMENTS: Dict[str, Callable[[bool], str]] = {
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
    "fig10": _run_fig10,
    "fig11": _run_fig11,
    "fig13": _run_fig13,
    "fig14": _run_fig14,
    "theorem": _run_theorem,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="netfence-experiment",
        description="Reproduce a NetFence (SIGCOMM 2010) evaluation figure or table.",
    )
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="which experiment to run")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweeps / shorter simulations")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        started = time.time()
        table = EXPERIMENTS[name](args.quick)
        elapsed = time.time() - started
        print(table)
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
