"""Fig. 11 — microscopic on-off (shrew-style) attacks.

All legitimate users run long-running TCP; attackers send synchronized
on-off UDP bursts (on-period ``Ton`` at full rate, silent for ``Toff``).
The paper's claim: the *shape* of the attack traffic cannot reduce a
legitimate user's guaranteed share — the average user throughput is at least
the fair share computed as if the attackers were always on, and it grows
toward the full per-user share of the bottleneck as ``Toff`` grows (the
attackers leave capacity idle).

The paper uses 100 K senders with a 100 Kbps always-on fair share and
``Ton ∈ {0.5 s, 4 s}``, ``Toff`` from 1.5 s to 100 s.  We keep the 100 Kbps
always-on fair share with a scaled-down sender count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    run_dumbbell_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

TON_VALUES: Sequence[float] = (0.5, 4.0)
TOFF_VALUES: Sequence[float] = (1.5, 10.0, 50.0, 100.0)


@dataclass
class Fig11Row:
    """One point of Fig. 11."""

    ton_s: float
    toff_s: float
    avg_user_throughput_kbps: float
    always_on_fair_share_kbps: float

    def as_tuple(self) -> tuple:
        return (self.ton_s, self.toff_s,
                round(self.avg_user_throughput_kbps, 1),
                round(self.always_on_fair_share_kbps, 1))


@register_point("fig11")
def run_point(
    ton_s: float,
    toff_s: float,
    num_source_as: int = 4,
    hosts_per_as: int = 3,
    bottleneck_bps: float = 1.2e6,
    sim_time: float = 300.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> Fig11Row:
    """Run one (Ton, Toff) point of the on-off attack sweep."""
    fair_share = bottleneck_bps / (num_source_as * hosts_per_as)
    config = DumbbellScenarioConfig(
        system="netfence",
        num_source_as=num_source_as,
        hosts_per_as=hosts_per_as,
        bottleneck_bps=bottleneck_bps,
        workload="longrun",
        attack_type="regular",
        attack_rate_bps=1.0e6,
        attack_on_off=(ton_s, toff_s),
        victim_blocks_attackers=False,
        num_colluders=9,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )
    result = run_dumbbell_scenario(config)
    return Fig11Row(
        ton_s=ton_s,
        toff_s=toff_s,
        avg_user_throughput_kbps=result.avg_user_throughput_bps / 1e3,
        always_on_fair_share_kbps=fair_share / 1e3,
    )


def grid(
    ton_values: Sequence[float] = TON_VALUES,
    toff_values: Sequence[float] = TOFF_VALUES,
    num_source_as: int = 4,
    hosts_per_as: int = 3,
    bottleneck_bps: float = 1.2e6,
    sim_time: float = 300.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The declarative Fig. 11 grid: one spec per (Ton, Toff) point."""
    return [
        ScenarioSpec.make(
            "fig11", seed=seed, ton_s=ton, toff_s=toff, num_source_as=num_source_as,
            hosts_per_as=hosts_per_as, bottleneck_bps=bottleneck_bps,
            sim_time=sim_time, warmup=warmup,
        )
        for ton in ton_values
        for toff in toff_values
    ]


def run(
    ton_values: Sequence[float] = TON_VALUES,
    toff_values: Sequence[float] = TOFF_VALUES,
    num_source_as: int = 4,
    hosts_per_as: int = 3,
    bottleneck_bps: float = 1.2e6,
    sim_time: float = 300.0,
    warmup: float = 100.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[Fig11Row]:
    """Run the on-off attack sweep under NetFence."""
    specs = grid(ton_values=ton_values, toff_values=toff_values,
                 num_source_as=num_source_as, hosts_per_as=hosts_per_as,
                 bottleneck_bps=bottleneck_bps, sim_time=sim_time,
                 warmup=warmup, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[Fig11Row]) -> str:
    lines = ["Fig. 11 — average user throughput (Kbps) under synchronized on-off attacks"]
    toffs = sorted({row.toff_s for row in rows})
    corner = "Ton / Toff"
    lines.append(f"{corner:>12s}" + "".join(f"{toff:>10.1f}" for toff in toffs))
    for ton in sorted({row.ton_s for row in rows}):
        cells = []
        for toff in toffs:
            match = [r for r in rows if r.ton_s == ton and r.toff_s == toff]
            cells.append(f"{match[0].avg_user_throughput_kbps:10.1f}" if match else f"{'-':>10s}")
        lines.append(f"{ton:12.1f}" + "".join(cells))
    if rows:
        lines.append(f"always-on fair share: {rows[0].always_on_fair_share_kbps:.1f} Kbps")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
