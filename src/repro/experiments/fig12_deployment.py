"""Fig. 12 (§5) — incremental deployment and strategic attackers.

The paper argues NetFence is incrementally deployable: an AS that upgrades
protects its own legitimate senders first, because traffic from legacy ASes
reaches NetFence bottlenecks unstamped and is served on the low-priority
legacy channel.  This experiment sweeps the deployment fraction of the
dumbbell's source ASes from 0 (nobody upgraded) to 1 (the classic full
deployment of Figs. 8–11) and reports the **legitimate-traffic share** of
the bottleneck, split into users inside upgraded ASes and users inside
legacy ASes.

The attacker axis crosses the deployment axis with three strategies at
equal average attack volume per sender:

* ``constant`` — the always-on flood of §6.3.1 (full rate, so its average
  volume is higher; it is the damage ceiling, not an equal-volume point);
* ``onoff`` — a naive on-off flood with the strategic schedule's average
  volume but a period incommensurate with the AIMD control interval;
* ``strategic`` — :class:`~repro.transport.udp.StrategicAttacker`: bursts
  aligned with the AIMD adjustment clock plus an off-phase maintenance
  trickle that farms additive increases, so every burst hits with a
  recovered rate limiter.

Expected shape: under ``fq`` the deployment fraction changes nothing (the
baseline has no deployment concept); under ``netfence`` the legitimate
share rises with the deployment fraction, and at fraction 1.0 matches the
full-deployment dumbbell scenarios used everywhere else.  The strategic
attacker costs legitimate users measurably more than the naive on-off
attacker at the same volume — but the damage stays bounded near the
always-on ceiling, which is the robust-AIMD design goal (§4.3.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    run_dumbbell_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

#: Deployment fractions reported on the x-axis.
FRACTIONS: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Attacker strategies crossed with the deployment axis.
STRATEGIES: Sequence[str] = ("constant", "onoff", "strategic")

#: Systems compared: the deployment-aware design and the FQ baseline.
SYSTEMS: Sequence[str] = ("netfence", "fq")


@dataclass
class Fig12Row:
    """One (system, deployment fraction, attacker strategy) point."""

    system: str
    deployment_fraction: float
    attacker_strategy: str
    legit_share: float
    enabled_user_avg_kbps: float
    legacy_user_avg_kbps: float
    avg_attacker_kbps: float
    bottleneck_utilization: float

    def as_tuple(self) -> tuple:
        return (self.system, self.deployment_fraction, self.attacker_strategy,
                round(self.legit_share, 4),
                round(self.enabled_user_avg_kbps, 1),
                round(self.legacy_user_avg_kbps, 1),
                round(self.avg_attacker_kbps, 1))


@register_point("fig12")
def run_point(
    system: str,
    deployment_fraction: float,
    attacker_strategy: str = "constant",
    num_source_as: int = 4,
    hosts_per_as: int = 3,
    bottleneck_bps: float = 1.2e6,
    attack_rate_bps: float = 1.0e6,
    sim_time: float = 150.0,
    warmup: float = 50.0,
    seed: int = 1,
) -> Fig12Row:
    """Run one point of the deployment × attacker-strategy sweep."""
    config = DumbbellScenarioConfig(
        system=system,
        num_source_as=num_source_as,
        hosts_per_as=hosts_per_as,
        bottleneck_bps=bottleneck_bps,
        workload="longrun",
        attack_type="regular",
        attack_rate_bps=attack_rate_bps,
        attack_strategy=attacker_strategy,
        deployment_fraction=deployment_fraction,
        victim_blocks_attackers=False,
        num_colluders=6,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )
    result = run_dumbbell_scenario(config)
    return Fig12Row(
        system=system,
        deployment_fraction=deployment_fraction,
        attacker_strategy=attacker_strategy,
        legit_share=result.legit_share,
        enabled_user_avg_kbps=result.avg_throughput_bps(
            result.enabled_user_throughputs) / 1e3,
        legacy_user_avg_kbps=result.avg_throughput_bps(
            result.legacy_user_throughputs) / 1e3,
        avg_attacker_kbps=result.avg_attacker_throughput_bps / 1e3,
        bottleneck_utilization=result.bottleneck_utilization,
    )


def grid(
    systems: Sequence[str] = SYSTEMS,
    fractions: Sequence[float] = FRACTIONS,
    strategies: Sequence[str] = STRATEGIES,
    sim_time: float = 150.0,
    warmup: float = 50.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The declarative grid: fraction × strategy × system."""
    return [
        ScenarioSpec.make(
            "fig12", seed=seed, system=system, deployment_fraction=fraction,
            attacker_strategy=strategy, sim_time=sim_time, warmup=warmup,
        )
        for fraction in fractions
        for strategy in strategies
        for system in systems
    ]


def run(
    systems: Sequence[str] = SYSTEMS,
    fractions: Sequence[float] = FRACTIONS,
    strategies: Sequence[str] = STRATEGIES,
    sim_time: float = 150.0,
    warmup: float = 50.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[Fig12Row]:
    """Run the deployment sweep and return one row per grid point."""
    specs = grid(systems=systems, fractions=fractions, strategies=strategies,
                 sim_time=sim_time, warmup=warmup, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[Fig12Row]) -> str:
    lines = ["Fig. 12 — legitimate-traffic share vs. NetFence deployment fraction"]
    fractions = sorted({row.deployment_fraction for row in rows})
    header = f"{'system / attacker':24s}" + "".join(f"{f:>8.2f}" for f in fractions)
    lines.append(header)
    combos = sorted({(row.system, row.attacker_strategy) for row in rows})
    for system, strategy in combos:
        cells = []
        for fraction in fractions:
            match = [r for r in rows
                     if r.system == system and r.attacker_strategy == strategy
                     and r.deployment_fraction == fraction]
            cells.append(f"{match[0].legit_share:8.3f}" if match else f"{'-':>8s}")
        lines.append(f"{system + ' / ' + strategy:24s}" + "".join(cells))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
