"""fig6_scaling — botnet size × topology size × system on generated AS graphs.

The paper's scaling argument (§4.5, §7) is that congestion policing keeps
all per-packet router state at the edge: a bottleneck router stores only
per-channel (and at worst per-source-AS) state, while each access router
stores rate limiters for *its own* senders — so total policing state is
O(#AS) and a multimillion-node botnet cannot exhaust it.  The dumbbell
and parking-lot layouts cannot probe that claim; this sweep runs the
:mod:`repro.topogen` pipeline instead:

1. generate a seeded AS-level graph (core/transit/stub tiers, valley-free
   routing) of ``num_as`` ASes;
2. place a ``botnet_size`` botnet with a placement model, *aggregating*
   bots so one simulated host stands in for thousands;
3. realize it against ``netfence`` or a baseline and measure the
   legitimate traffic share plus the per-router rate-limiter state.

Expected shape: for ``netfence`` the limiter state grows with ``num_as``
and stays flat across three decades of ``botnet_size`` (the aggregation
keeps simulated-host count per AS bounded, exactly like the real design
bounds per-AS policing state), while the legitimate share stays near the
per-sender fair share.  For ``fq`` the per-sender state lives in the
bottleneck's DRR buckets — state the real system would need per *bot*,
which is the comparison the paper's Table 2 makes.

The grid is the union of two axes through a reference point — topology
sizes at a fixed botnet, and botnet sizes at a fixed topology — so the
two scaling curves come out of one sweep without a full cross product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    ASGraphScenarioConfig,
    run_asgraph_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

#: Topology sizes (number of ASes) on the state-scaling axis.
TOPOLOGY_SIZES: Sequence[int] = (16, 32, 64)

#: Botnet sizes (real bots represented, before aggregation).
BOTNET_SIZES: Sequence[int] = (10_000, 100_000, 1_000_000)

#: Placement models crossed with both axes.
PLACEMENTS: Sequence[str] = ("uniform", "stub_concentrated", "clustered")

#: The policed design and the per-sender fair-queuing baseline.
SYSTEMS: Sequence[str] = ("netfence", "fq")


@dataclass
class Fig6ScalingRow:
    """One (system, topology size, botnet size, placement) point."""

    system: str
    num_as: int
    botnet_size: int
    placement: str
    attacker_hosts: int
    represented_bots: int
    legit_share: float
    avg_user_kbps: float
    limiter_state_total: int
    limiter_state_max: int
    state_per_as: float
    bottleneck_queue_state: int
    bottleneck_utilization: float
    graph_fingerprint: str

    def as_tuple(self) -> tuple:
        return (self.system, self.num_as, self.botnet_size, self.placement,
                self.attacker_hosts, round(self.legit_share, 4),
                self.limiter_state_total, self.limiter_state_max)


@register_point("fig6_scaling")
def run_point(
    system: str,
    num_as: int,
    botnet_size: int,
    placement: str,
    sim_time: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> Fig6ScalingRow:
    """Run one point of the botnet-scaling sweep."""
    config = ASGraphScenarioConfig(
        system=system,
        num_as=num_as,
        botnet_size=botnet_size,
        placement_model=placement,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )
    result = run_asgraph_scenario(config)
    return Fig6ScalingRow(
        system=system,
        num_as=num_as,
        botnet_size=botnet_size,
        placement=placement,
        attacker_hosts=result.num_attacker_hosts,
        represented_bots=result.represented_bots,
        legit_share=result.legit_share,
        avg_user_kbps=result.avg_user_throughput_bps / 1e3,
        limiter_state_total=result.limiter_state_total,
        limiter_state_max=result.limiter_state_max,
        state_per_as=result.limiter_state_total / num_as,
        bottleneck_queue_state=result.bottleneck_queue_state,
        bottleneck_utilization=result.bottleneck_utilization,
        graph_fingerprint=result.graph_fingerprint,
    )


def grid(
    systems: Sequence[str] = SYSTEMS,
    topology_sizes: Sequence[int] = TOPOLOGY_SIZES,
    botnet_sizes: Sequence[int] = BOTNET_SIZES,
    placements: Sequence[str] = PLACEMENTS,
    size_ref: Optional[int] = None,
    botnet_ref: Optional[int] = None,
    sim_time: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """Union of the two scaling axes through one reference point.

    Axis 1 sweeps ``topology_sizes`` at ``botnet_ref`` bots; axis 2
    sweeps ``botnet_sizes`` at ``size_ref`` ASes.  The shared reference
    point appears once.  Both axes cross every placement and system.
    """
    size_ref = size_ref if size_ref is not None else topology_sizes[len(topology_sizes) // 2]
    botnet_ref = botnet_ref if botnet_ref is not None else botnet_sizes[0]
    points = []
    for num_as in topology_sizes:
        points.append((num_as, botnet_ref))
    for botnet in botnet_sizes:
        if (size_ref, botnet) not in points:
            points.append((size_ref, botnet))
    return [
        ScenarioSpec.make(
            "fig6_scaling", seed=seed, system=system, num_as=num_as,
            botnet_size=botnet, placement=placement,
            sim_time=sim_time, warmup=warmup,
        )
        for num_as, botnet in points
        for placement in placements
        for system in systems
    ]


def run(
    systems: Sequence[str] = SYSTEMS,
    topology_sizes: Sequence[int] = TOPOLOGY_SIZES,
    botnet_sizes: Sequence[int] = BOTNET_SIZES,
    placements: Sequence[str] = PLACEMENTS,
    sim_time: float = 60.0,
    warmup: float = 20.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[Fig6ScalingRow]:
    """Run the scaling sweep and return one row per grid point."""
    specs = grid(systems=systems, topology_sizes=topology_sizes,
                 botnet_sizes=botnet_sizes, placements=placements,
                 sim_time=sim_time, warmup=warmup, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[Fig6ScalingRow]) -> str:
    lines = ["fig6_scaling — legit share and policing state vs #AS and botnet size",
             f"{'system':10s}{'placement':20s}{'#AS':>6s}{'bots':>10s}"
             f"{'hosts':>7s}{'legit':>8s}{'limiters':>10s}{'per-AS':>8s}{'bneck-q':>9s}"]
    ordered = sorted(rows, key=lambda r: (r.system, r.placement, r.num_as, r.botnet_size))
    for row in ordered:
        lines.append(
            f"{row.system:10s}{row.placement:20s}{row.num_as:>6d}{row.botnet_size:>10d}"
            f"{row.attacker_hosts:>7d}{row.legit_share:>8.3f}"
            f"{row.limiter_state_total:>10d}{row.state_per_as:>8.2f}"
            f"{row.bottleneck_queue_state:>9d}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
