"""Distributed sweep execution: a shared-directory work queue + worker loop.

``run_sweep`` parallelizes one grid inside one process tree.  This module
lets *independent processes on one or many machines* cooperate on the same
grid through two shared artifacts: a queue directory (any filesystem all
workers can reach) and a :class:`~repro.store.ResultStore` database.

The broker needs no server.  Coordination rides entirely on two atomic
filesystem primitives:

* ``open(..., O_CREAT | O_EXCL)`` — creating a lease file succeeds for
  exactly one claimant, however many workers race;
* ``os.replace`` / ``os.rename`` — stealing an *expired* lease renames it
  away first, which likewise succeeds for exactly one stealer.

Queue directory layout::

    tasks/<experiment>-<key>.task   pickled ScenarioSpec (append-only)
    leases/<key>.lease              JSON {worker, nonce, claimed_at, expires_at}
    done/<key>.done                 JSON {worker, elapsed_s, error, attempts, finished_at}
    retries/<key>.retry             JSON {attempts, last_error, recorded_at}

A task is *pending* when it has neither lease nor done marker, *running*
while a live lease exists, and *finished* once a done marker is written
(``error`` non-null once a failure exhausts the worker's ``--retries``
budget; earlier failed attempts are recorded under ``retries/`` and the
task returns to pending).  Workers renew their lease from a heartbeat
thread while a point executes; a worker that dies mid-point leaves a
lease that expires and is reclaimed.

Typical session (the ``netfence-experiment`` CLI fronts all of this)::

    runner submit fig12 --quick --queue Q          # enqueue the grid
    runner worker --queue Q --store S.sqlite &     # on machine A
    runner worker --queue Q --store S.sqlite &     # on machine B
    runner status --queue Q --store S.sqlite
    runner export fig12 --quick --store S.sqlite   # merged rows, grid order
    runner compact --store S.sqlite                # GC superseded executions
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.rows import json_safe, row_to_dict, rows_to_csv, rows_to_dicts
from repro.experiments.sweep import ScenarioSpec, SweepResult, execute_spec
from repro.obs.log import JsonLinesLogger
from repro.obs.spans import SpanRecorder, active_span_recorder, use_span_recorder
from repro.store import ResultStore
from repro.store.result_store import default_worker_id

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-Unix
    _resource = None  # type: ignore[assignment]


def _rss_kb() -> Optional[int]:
    """Peak resident set size of this worker process, in kB (None off-Unix)."""
    if _resource is None:  # pragma: no cover - non-Unix
        return None
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)

__all__ = [
    "Lease",
    "LeaseLost",
    "QueueWorker",
    "WorkQueue",
    "WorkerStats",
    "cli_main",
]


class LeaseLost(RuntimeError):
    """Raised when renewing a lease another worker has stolen (expiry)."""


@dataclass
class Lease:
    """A claimed task: held while executing, renewed by the heartbeat."""

    key: str
    spec: ScenarioSpec
    worker_id: str
    nonce: str
    expires_at: float


class WorkQueue:
    """File-based work queue over a directory all workers share.

    Every mutation is a single atomic filesystem operation, so any number
    of worker processes — across machines, given a shared filesystem — can
    claim, renew, steal, and complete tasks without a broker server.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        self.tasks_dir = os.path.join(self.root, "tasks")
        self.leases_dir = os.path.join(self.root, "leases")
        self.done_dir = os.path.join(self.root, "done")
        self.retries_dir = os.path.join(self.root, "retries")
        for path in (self.tasks_dir, self.leases_dir, self.done_dir,
                     self.retries_dir):
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    @staticmethod
    def task_key(spec: ScenarioSpec) -> str:
        return spec.cache_key()[:24]

    def _task_path(self, spec: ScenarioSpec) -> str:
        return os.path.join(self.tasks_dir, f"{spec.experiment}-{self.task_key(spec)}.task")

    def _lease_path(self, key: str) -> str:
        return os.path.join(self.leases_dir, f"{key}.lease")

    def _done_path(self, key: str) -> str:
        return os.path.join(self.done_dir, f"{key}.done")

    def _retry_path(self, key: str) -> str:
        return os.path.join(self.retries_dir, f"{key}.retry")

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def submit(self, specs: Sequence[ScenarioSpec]) -> int:
        """Enqueue specs; already-enqueued or finished points are skipped.

        Returns the number of newly enqueued tasks.  Task files are written
        atomically (temp file + ``os.replace``) so a concurrently scanning
        worker can never load a truncated spec.
        """
        enqueued = 0
        for spec in specs:
            path = self._task_path(spec)
            if os.path.exists(path) or os.path.exists(self._done_path(self.task_key(spec))):
                continue
            tmp = f"{path}.tmp-{uuid.uuid4().hex}"
            with open(tmp, "wb") as fh:
                pickle.dump(spec, fh)
            os.replace(tmp, path)
            enqueued += 1
        return enqueued

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------

    def _read_json(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    def _write_lease(self, fd: int, lease: Lease) -> None:
        payload = {"worker": lease.worker_id, "nonce": lease.nonce,
                   "claimed_at": time.time(), "expires_at": lease.expires_at}
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)

    def claim(self, worker_id: str, ttl: float = 60.0) -> Optional[Lease]:
        """Claim one pending task, or ``None`` if nothing is claimable.

        Exactly-once claiming rests on ``O_CREAT | O_EXCL``: however many
        workers race on the same key, one lease-file create succeeds.  An
        expired lease is first renamed away (one stealer wins the rename),
        after which the key is claimable again.
        """
        for name in sorted(os.listdir(self.tasks_dir)):
            if not name.endswith(".task"):
                continue
            key = name[:-len(".task")].rsplit("-", 1)[-1]
            if os.path.exists(self._done_path(key)):
                continue
            lease_path = self._lease_path(key)
            existing = self._read_json(lease_path)
            if existing is not None:
                expires_at = existing.get("expires_at", 0.0)
            elif os.path.exists(lease_path):
                # Unparseable lease: its claimer died (or hit disk-full)
                # between the O_EXCL create and the JSON write.  Grant it a
                # full ttl from the file's mtime, then let it be stolen like
                # any expired lease — otherwise the key would wedge forever.
                try:
                    expires_at = os.path.getmtime(lease_path) + ttl
                except OSError:
                    expires_at = 0.0  # vanished mid-look: claimable now
            else:
                expires_at = None
            if expires_at is not None:
                if expires_at > time.time():
                    continue  # live lease held elsewhere
                # Expired: steal by renaming it away; losing the rename race
                # just means another worker is already reclaiming this key.
                stale = f"{lease_path}.stale-{uuid.uuid4().hex}"
                try:
                    os.replace(lease_path, stale)
                except OSError:
                    continue
                try:
                    os.unlink(stale)
                except OSError:
                    pass
            try:
                fd = os.open(lease_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            lease = Lease(key=key, spec=self._load_task(name), worker_id=worker_id,
                          nonce=uuid.uuid4().hex, expires_at=time.time() + ttl)
            self._write_lease(fd, lease)
            return lease
        return None

    def _load_task(self, name: str) -> ScenarioSpec:
        with open(os.path.join(self.tasks_dir, name), "rb") as fh:
            return pickle.load(fh)

    def renew(self, lease: Lease, ttl: float = 60.0) -> None:
        """Extend a held lease; raises :class:`LeaseLost` if it was stolen.

        The nonce check is what detects theft: a stolen-and-reissued lease
        file carries the stealer's nonce.  (Between our read and replace a
        steal could still slip in; the executing stealer will then detect
        the mismatch at *its* next renewal, and the deterministic re-run it
        performs commits identical rows, so the race narrows to duplicated
        work, never divergent results.)
        """
        lease_path = self._lease_path(lease.key)
        current = self._read_json(lease_path)
        if current is None or current.get("nonce") != lease.nonce:
            raise LeaseLost(f"lease on {lease.key} lost to "
                            f"{current.get('worker') if current else 'expiry'}")
        lease.expires_at = time.time() + ttl
        tmp = f"{lease_path}.renew-{uuid.uuid4().hex}"
        with open(tmp, "w") as fh:
            json.dump({"worker": lease.worker_id, "nonce": lease.nonce,
                       "claimed_at": current.get("claimed_at"),
                       "expires_at": lease.expires_at}, fh)
        os.replace(tmp, lease_path)

    def complete(self, lease: Lease, elapsed_s: float = 0.0,
                 error: Optional[str] = None, attempts: int = 1) -> bool:
        """Mark a claimed task finished; returns False if already finished.

        The marker is fully written to a temp file and *then* published with
        ``os.link`` — atomic and first-writer-wins, so a marker can never be
        observed half-written, and even if a lease was stolen mid-execution
        and two workers finish the same point, exactly one completion is
        recorded.
        """
        done_path = self._done_path(lease.key)
        tmp = f"{done_path}.tmp-{uuid.uuid4().hex}"
        with open(tmp, "w") as fh:
            json.dump({"worker": lease.worker_id, "elapsed_s": elapsed_s,
                       "error": error, "attempts": attempts,
                       "finished_at": time.time()}, fh)
        try:
            os.link(tmp, done_path)
            finished = True
        except FileExistsError:
            finished = False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        try:
            os.unlink(self._lease_path(lease.key))
        except OSError:
            pass
        return finished

    def owns(self, lease: Lease) -> bool:
        """Whether the lease file still carries this holder's nonce."""
        current = self._read_json(self._lease_path(lease.key))
        return current is not None and current.get("nonce") == lease.nonce

    def release(self, lease: Lease) -> None:
        """Drop a held lease without finishing it (the task becomes pending).

        A lease that was stolen after expiry is left to the thief —
        unlinking it would reopen a task the thief is still executing.  The
        check is an atomic take: the lease file is renamed aside first (so
        no steal can slip between check and unlink), then inspected, and
        restored if it turns out to carry a thief's nonce.  The restore can
        at worst clobber a brand-new third claimant's lease, which that
        claimant's next heartbeat detects as :class:`LeaseLost` — the
        documented duplicated-work-never-divergent-results envelope.
        """
        lease_path = self._lease_path(lease.key)
        stash = f"{lease_path}.release-{uuid.uuid4().hex}"
        try:
            os.replace(lease_path, stash)
        except OSError:
            return  # already gone (completed or stolen-and-finished)
        current = self._read_json(stash)
        if current is not None and current.get("nonce") != lease.nonce:
            os.replace(stash, lease_path)  # a thief's live lease: put it back
            return
        try:
            os.unlink(stash)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Retry budget
    # ------------------------------------------------------------------

    def failed_attempts(self, key: str) -> int:
        """Failed attempts recorded for a task (0 when it never failed)."""
        marker = self._read_json(self._retry_path(key))
        if marker is None:
            return 0
        return int(marker.get("attempts", 0))

    def record_failed_attempt(self, key: str, error: str) -> int:
        """Record one more failed attempt; returns the new count.

        Only the lease holder calls this (the lease makes it exclusive),
        so a plain atomic replace is race-free.  The marker keeps the last
        error so ``status`` can explain retries even after a later attempt
        succeeds.
        """
        attempts = self.failed_attempts(key) + 1
        path = self._retry_path(key)
        tmp = f"{path}.tmp-{uuid.uuid4().hex}"
        with open(tmp, "w") as fh:
            json.dump({"attempts": attempts, "last_error": error,
                       "recorded_at": time.time()}, fh)
        os.replace(tmp, path)
        return attempts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def _task_keys(self) -> set:
        return {name[:-len(".task")].rsplit("-", 1)[-1]
                for name in os.listdir(self.tasks_dir) if name.endswith(".task")}

    def _done_keys(self) -> set:
        return {name[:-len(".done")]
                for name in os.listdir(self.done_dir) if name.endswith(".done")}

    def counts(self) -> Dict[str, int]:
        """Queue state: pending / running / done / failed task counts."""
        keys = self._task_keys()
        done = failed = 0
        done_keys = self._done_keys() & keys
        for key in done_keys:
            marker = self._read_json(self._done_path(key))
            # An existing-but-unparseable marker still counts as done — it
            # must agree with claim(), which skips any existing marker.
            if marker is not None and marker.get("error"):
                failed += 1
            else:
                done += 1
        now = time.time()
        running = 0
        for key in keys - done_keys:
            lease = self._read_json(self._lease_path(key))
            if lease is not None and lease.get("expires_at", 0.0) > now:
                running += 1
        return {"tasks": len(keys), "pending": len(keys) - len(done_keys) - running,
                "running": running, "done": done, "failed": failed}

    def drained(self) -> bool:
        """True once every enqueued task has a done marker.

        Two directory listings, no file reads — workers poll this in their
        idle loop, so it must stay cheap even on large shared queues.
        """
        return self._task_keys() <= self._done_keys()

    def failures(self) -> List[Tuple[str, str]]:
        """(key, error) for every task that finished with an error."""
        out = []
        for name in sorted(os.listdir(self.done_dir)):
            if not name.endswith(".done"):
                continue
            marker = self._read_json(os.path.join(self.done_dir, name))
            if marker and marker.get("error"):
                out.append((name[:-len(".done")], marker["error"]))
        return out


@dataclass
class WorkerStats:
    """What one worker did over its lifetime."""

    worker_id: str
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    lost_leases: int = 0
    elapsed_s: float = 0.0
    heartbeat_renewals: int = 0
    errors: List[str] = field(default_factory=list)


class QueueWorker:
    """Claim-execute-commit loop over a :class:`WorkQueue` + result store.

    While a point executes, a daemon heartbeat thread renews the lease every
    ``lease_ttl / 3`` seconds; if renewal reports the lease stolen, the
    result is discarded (not committed, not marked done) and the stealer's
    execution stands.  The loop exits when the queue is drained, after
    ``max_points`` terminal points (completions or final failures — retried
    attempts do not count), or after ``idle_timeout`` seconds without
    claimable work.

    ``retries`` is the budget for flaky points: a point that raises is
    re-queued (its failed attempt recorded in the queue's ``retries/``
    markers) up to ``retries`` times before the failure becomes final, and
    the attempt number that finally succeeded is written to the store's
    provenance columns.
    """

    def __init__(
        self,
        queue: WorkQueue,
        store: Optional[ResultStore] = None,
        worker_id: Optional[str] = None,
        lease_ttl: float = 60.0,
        poll_interval: float = 0.2,
        max_points: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        retries: int = 1,
    ) -> None:
        if retries < 0:
            raise ValueError("retries cannot be negative")
        self.queue = queue
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.max_points = max_points
        self.idle_timeout = idle_timeout
        self.retries = retries
        self._spans = active_span_recorder()

    def _execute_leased(self, lease: Lease) -> Tuple[SweepResult, bool, int]:
        """Run the point under heartbeat renewal.

        Returns ``(result, lost, renewals)`` — ``renewals`` being how many
        times the heartbeat extended the lease, a direct read on how close
        the point came to the ``lease_ttl`` steal horizon.
        """
        stop = threading.Event()
        lost = threading.Event()
        renewals = [0]

        def heartbeat() -> None:
            while not stop.wait(self.lease_ttl / 3.0):
                try:
                    self.queue.renew(lease, ttl=self.lease_ttl)
                    renewals[0] += 1
                except LeaseLost:
                    lost.set()
                    return

        thread = threading.Thread(target=heartbeat, daemon=True)
        thread.start()
        try:
            result = execute_spec(lease.spec, capture_errors=True)
        finally:
            stop.set()
            thread.join()
        return result, lost.is_set(), renewals[0]

    def run(self) -> WorkerStats:
        stats = WorkerStats(worker_id=self.worker_id)
        idle_since: Optional[float] = None
        claim_started = time.time()
        while True:
            # max_points bounds *terminal* outcomes (completions and final
            # failures): a retried claim must not consume the budget, or a
            # flaky first point could exhaust it with nothing finished.
            if (self.max_points is not None
                    and stats.completed + stats.failed >= self.max_points):
                break
            lease = self.queue.claim(self.worker_id, ttl=self.lease_ttl)
            if lease is None:
                if self.queue.drained():
                    break
                now = time.time()
                idle_since = idle_since or now
                if self.idle_timeout is not None and now - idle_since >= self.idle_timeout:
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            stats.claimed += 1
            claim_latency = time.time() - claim_started
            spans = self._spans
            point_span = exec_span = None
            if spans is not None:
                point_span = spans.start(
                    "worker.point", ts=time.time(),
                    attrs={"experiment": lease.spec.experiment,
                           "key": lease.key, "worker": self.worker_id})
                exec_span = spans.start("worker.execute", parent=point_span,
                                        ts=time.time())
            attempt = self.queue.failed_attempts(lease.key) + 1
            result, lost, renewals = self._execute_leased(lease)
            stats.heartbeat_renewals += renewals
            if spans is not None and exec_span is not None:
                spans.finish(exec_span, ts=time.time(),
                             status="error" if result.error else "ok")
            outcome = "completed"
            if lost:
                stats.lost_leases += 1
                outcome = "lost_lease"
            elif result.error is not None and attempt <= self.retries:
                stats.elapsed_s += result.elapsed_s
                # The heartbeat may not have observed a steal that happened
                # after its last renewal; re-check ownership so a stolen
                # lease is neither charged a failed attempt nor reopened
                # under the thief's feet.
                if not self.queue.owns(lease):
                    stats.lost_leases += 1
                    outcome = "lost_lease"
                else:
                    # Spend one unit of the retry budget: record the failed
                    # attempt and put the task back in the pending state.
                    self.queue.record_failed_attempt(lease.key, result.error)
                    self.queue.release(lease)
                    stats.retried += 1
                    outcome = "retried"
            else:
                commit_span = None
                if spans is not None:
                    commit_span = spans.start("worker.commit",
                                              parent=point_span, ts=time.time())
                if result.error is None and self.store is not None:
                    self.store.put_result(result, worker_id=self.worker_id,
                                          attempt=attempt)
                if self.queue.complete(lease, elapsed_s=result.elapsed_s,
                                       error=result.error, attempts=attempt):
                    if result.error is None:
                        stats.completed += 1
                    else:
                        stats.failed += 1
                        stats.errors.append(result.error)
                        outcome = "failed"
                else:
                    outcome = "already_done"
                if spans is not None and commit_span is not None:
                    spans.finish(commit_span, ts=time.time())
                stats.elapsed_s += result.elapsed_s
            if spans is not None and point_span is not None:
                spans.finish(
                    point_span, ts=time.time(),
                    status="ok" if outcome in ("completed", "already_done")
                    else outcome)
            if self.store is not None:
                # The operational half of the point's provenance: how long
                # the claim waited, how hard the heartbeat worked, and what
                # the process footprint was when the point finished.
                self.store.put_worker_rows([{
                    "worker_id": self.worker_id,
                    "experiment": lease.spec.experiment,
                    "cache_key": lease.key,
                    "attempt": attempt,
                    "claim_latency_s": round(claim_latency, 6),
                    "heartbeat_renewals": renewals,
                    "elapsed_s": result.elapsed_s,
                    "rss_kb": _rss_kb(),
                    "outcome": outcome,
                    "error": bool(result.error),
                }])
            claim_started = time.time()
        return stats


# ---------------------------------------------------------------------------
# CLI (fronted by ``netfence-experiment submit|worker|export|status``)
# ---------------------------------------------------------------------------

def _build_specs(experiments: Dict[str, Any], name: str, quick: bool,
                 points: Optional[int]) -> Dict[str, List[ScenarioSpec]]:
    names = sorted(experiments) if name == "all" else [name]
    grids = {}
    for exp_name in names:
        specs = experiments[exp_name].build_grid(quick)
        if points is not None:
            specs = specs[:points]
        grids[exp_name] = specs
    return grids


def _cmd_submit(args: argparse.Namespace, experiments: Dict[str, Any]) -> int:
    queue = WorkQueue(args.queue)
    grids = _build_specs(experiments, args.experiment, args.quick, args.points)
    for exp_name, specs in grids.items():
        enqueued = queue.submit(specs)
        print(f"{exp_name}: enqueued {enqueued}/{len(specs)} points "
              f"({len(specs) - enqueued} already queued or done)")
    counts = queue.counts()
    print(f"queue {args.queue}: {counts['pending']} pending, "
          f"{counts['done']} done, {counts['failed']} failed")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    queue = WorkQueue(args.queue)
    store = ResultStore(args.store) if args.store else None
    spans = SpanRecorder(capacity=16384) if args.spans else None
    log = JsonLinesLogger(name="worker") if args.json else None

    def _make_and_run() -> WorkerStats:
        worker = QueueWorker(
            queue, store=store, worker_id=args.worker_id,
            lease_ttl=args.lease_ttl, max_points=args.max_points,
            idle_timeout=args.idle_timeout, retries=args.retries,
        )
        return worker.run()

    if spans is not None:
        with use_span_recorder(spans):
            stats = _make_and_run()
    else:
        stats = _make_and_run()

    if log is not None:
        if spans is not None:
            for record in spans.to_dicts():
                log.span_record(record)
        log.emit("worker_stats", worker_id=stats.worker_id,
                 claimed=stats.claimed, completed=stats.completed,
                 failed=stats.failed, retried=stats.retried,
                 lost_leases=stats.lost_leases,
                 heartbeat_renewals=stats.heartbeat_renewals,
                 elapsed_s=round(stats.elapsed_s, 3))
    else:
        print(f"worker {stats.worker_id}: {stats.completed} completed, "
              f"{stats.failed} failed, {stats.retried} retried, "
              f"{stats.lost_leases} leases lost, "
              f"{stats.elapsed_s:.1f}s simulated-point wall time")
    for error in stats.errors:
        print(error.rstrip(), file=sys.stderr)
    return 1 if stats.failed else 0


def _parse_where(clauses: List[str]) -> Dict[str, Any]:
    predicates: Dict[str, Any] = {}
    for clause in clauses:
        if "=" not in clause:
            raise SystemExit(f"--where expects field=value, got {clause!r}")
        key, _, raw = clause.partition("=")
        try:
            predicates[key] = json.loads(raw)
        except json.JSONDecodeError:
            predicates[key] = raw
    return predicates


def _cmd_export(args: argparse.Namespace, experiments: Dict[str, Any]) -> int:
    store = ResultStore(args.store)
    where = _parse_where(args.where or [])
    grids = _build_specs(experiments, args.experiment, args.quick, args.points)
    payload: List[Dict[str, Any]] = []
    rows_by_experiment: Dict[str, List[Any]] = {}
    failures = 0
    for exp_name, specs in grids.items():
        rows, missing = store.fetch_specs(specs)
        if missing and not args.allow_missing:
            print(f"{exp_name}: store {args.store} is missing "
                  f"{len(missing)}/{len(specs)} grid points, e.g. "
                  f"{missing[0].describe()}", file=sys.stderr)
            failures += 1
            continue
        if where:
            rows = [row for row in rows
                    if all(row_to_dict(row).get(k) == v for k, v in where.items())]
        payload.append({"experiment": exp_name, "points": len(specs),
                        "missing": len(missing), "rows": rows_to_dicts(rows)})
        rows_by_experiment[exp_name] = rows
    if failures:
        return 1
    text = _format_export(args, experiments, payload, rows_by_experiment)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
    else:
        sys.stdout.write(text)
    return 0


def _format_export(args: argparse.Namespace, experiments: Dict[str, Any],
                   payload: List[Dict[str, Any]],
                   rows_by_experiment: Dict[str, List[Any]]) -> str:
    if args.format == "json":
        return json.dumps(json_safe(payload), indent=2, sort_keys=True,
                          default=str, allow_nan=False) + "\n"
    merged = [row for entry in payload
              for row in rows_by_experiment[entry["experiment"]]]
    if args.format == "csv":
        return rows_to_csv(merged)
    # table: reuse each experiment's paper-style formatter
    chunks = [experiments[entry["experiment"]].format_rows(
        rows_by_experiment[entry["experiment"]]) for entry in payload]
    return "\n".join(chunks) + ("\n" if chunks else "")


def _cmd_compact(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    stats = store.compact()
    saved = stats["bytes_before"] - stats["bytes_after"]
    print(f"store {args.store}: removed {stats['removed_executions']} superseded "
          f"execution(s) ({stats['removed_rows']} rows), kept "
          f"{stats['kept_points']} latest point(s), "
          f"{stats['bytes_before']} -> {stats['bytes_after']} bytes "
          f"({saved} reclaimed)")
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    if args.queue:
        counts = WorkQueue(args.queue).counts()
        print(f"queue {args.queue}: {counts['tasks']} tasks — "
              f"{counts['pending']} pending, {counts['running']} running, "
              f"{counts['done']} done, {counts['failed']} failed")
        for key, error in WorkQueue(args.queue).failures():
            print(f"  failed {key}: {error.strip().splitlines()[-1]}")
    if args.store:
        store = ResultStore(args.store)
        summary = store.summary()
        if not summary:
            print(f"store {args.store}: empty")
        for entry in summary:
            print(f"store {entry['experiment']}: {entry['points']} points "
                  f"({entry['executions']} executions), {entry['rows']} rows, "
                  f"{entry['total_elapsed_s']:.1f}s total point wall time, "
                  f"{entry['workers']} worker(s)")
    if not args.queue and not args.store:
        raise SystemExit("status needs --queue and/or --store")
    return 0


def cli_main(argv: List[str], experiments: Dict[str, Any]) -> int:
    """Entry point for the distributed subcommands of ``netfence-experiment``.

    ``experiments`` is the runner's registry (name -> ExperimentDef), passed
    in so this module needs no import of :mod:`repro.experiments.runner`.
    """
    parser = argparse.ArgumentParser(
        prog="netfence-experiment",
        description="Distributed sweep execution over a shared queue + result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    exp_choices = sorted(experiments) + ["all"]

    p_submit = sub.add_parser("submit", help="enqueue an experiment grid")
    p_submit.add_argument("experiment", choices=exp_choices)
    p_submit.add_argument("--quick", action="store_true")
    p_submit.add_argument("--points", type=int, default=None, metavar="N")
    p_submit.add_argument("--queue", required=True, metavar="DIR")

    p_worker = sub.add_parser("worker", help="claim and execute queued points")
    p_worker.add_argument("--queue", required=True, metavar="DIR")
    p_worker.add_argument("--store", required=True, metavar="PATH")
    p_worker.add_argument("--worker-id", default=None)
    p_worker.add_argument("--lease-ttl", type=float, default=60.0, metavar="S")
    p_worker.add_argument("--max-points", type=int, default=None, metavar="N")
    p_worker.add_argument("--idle-timeout", type=float, default=None, metavar="S",
                          help="exit after S seconds with no claimable work "
                               "(default: exit only when the queue drains)")
    p_worker.add_argument("--retries", type=int, default=1, metavar="N",
                          help="re-queue a raising point up to N times before "
                               "its failure becomes final (default 1)")
    p_worker.add_argument("--spans", action="store_true",
                          help="record claim/execute/commit spans per point")
    p_worker.add_argument("--json", action="store_true",
                          help="machine-readable JSON-lines output "
                               "(includes spans with --spans)")

    p_export = sub.add_parser("export", help="export stored rows for a grid")
    p_export.add_argument("experiment", choices=exp_choices)
    p_export.add_argument("--quick", action="store_true")
    p_export.add_argument("--points", type=int, default=None, metavar="N")
    p_export.add_argument("--store", required=True, metavar="PATH")
    p_export.add_argument("--format", choices=("table", "json", "csv"),
                          default="table")
    p_export.add_argument("--where", action="append", metavar="FIELD=VALUE",
                          help="keep only rows whose field equals VALUE "
                               "(JSON literal or bare string; repeatable)")
    p_export.add_argument("--allow-missing", action="store_true",
                          help="export whatever subset the store holds")
    p_export.add_argument("--out", default=None, metavar="FILE")

    p_status = sub.add_parser("status", help="show queue and store state")
    p_status.add_argument("--queue", default=None, metavar="DIR")
    p_status.add_argument("--store", default=None, metavar="PATH")

    p_compact = sub.add_parser(
        "compact", help="drop superseded store executions and VACUUM")
    p_compact.add_argument("--store", required=True, metavar="PATH")

    args = parser.parse_args(argv)
    if args.command == "submit":
        return _cmd_submit(args, experiments)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "export":
        return _cmd_export(args, experiments)
    if args.command == "compact":
        return _cmd_compact(args)
    return _cmd_status(args)
