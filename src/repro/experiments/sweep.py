"""Parallel experiment sweep engine.

Every evaluation figure in the paper is a sweep over scenario scale —
attacker counts, ``Toff`` values, topology sizes, defense systems.  This
module expresses such sweeps declaratively and executes them either serially
or across worker processes:

* :class:`ScenarioSpec` — one grid point: a registered scenario factory name,
  a frozen parameter assignment, and a seed.  Specs are hashable, picklable,
  and carry a stable cache key.
* :func:`register_point` — registers a *point function* under a name.  Point
  functions are plain module-level callables (``fn(seed=..., **params)``)
  that build their own :class:`~repro.simulator.engine.Simulator`, run it,
  and return one row (or a list of rows).  Because every point constructs
  its simulator from scratch inside the worker, no simulator state is ever
  shared between processes.
* :func:`run_sweep` — executes a list of specs with ``jobs`` workers and
  returns one :class:`SweepResult` per spec **in spec order**, so the merged
  rows are byte-identical regardless of parallelism.
* :class:`SweepCache` — an on-disk result cache keyed on
  ``(experiment, params, seed)`` so re-runs are instant.

Determinism notes: per-point randomness must flow exclusively from the
spec's ``seed`` (use :func:`derive_seed` to fan a base seed out across grid
points).  Worker processes are forked where the platform allows it so hash
randomization — and with it ``set``/``dict`` iteration order — matches the
parent process exactly.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import logging
import multiprocessing
import os
import pickle
import socket
import tempfile
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.rows import row_schema
from repro.obs.spans import active_span_recorder
from repro.seeding import derive_seed

logger = logging.getLogger(__name__)

__all__ = [
    "EXPERIMENT_MODULES",
    "ScenarioSpec",
    "SweepCache",
    "SweepError",
    "SweepResult",
    "commit_result",
    "default_worker_id",
    "derive_seed",
    "execute_spec",
    "merge_rows",
    "register_point",
    "resolve_point",
    "run_sweep",
]

#: Modules that register point functions; imported lazily so workers started
#: with the ``spawn`` method (and fresh interpreters generally) can resolve
#: any experiment name without the caller pre-importing its module.
EXPERIMENT_MODULES: Tuple[str, ...] = (
    "repro.experiments.fig6_scaling",
    "repro.experiments.fig7_overhead",
    "repro.experiments.fig8_unwanted",
    "repro.experiments.fig9_colluding",
    "repro.experiments.fig10_parkinglot",
    "repro.experiments.fig11_onoff",
    "repro.experiments.fig12_deployment",
    "repro.experiments.fig13_multifeedback",
    "repro.experiments.fig14_inference",
    "repro.experiments.theorem_fairshare",
)

_POINT_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_point(name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a module-level point function under ``name``.

    The function must accept ``seed`` plus the spec's parameters as keyword
    arguments and return a row dataclass or a list of them.
    """

    def decorator(fn: Callable[..., Any]) -> Callable[..., Any]:
        existing = _POINT_REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(f"point function {name!r} is already registered")
        _POINT_REGISTRY[name] = fn
        return fn

    return decorator


def resolve_point(name: str) -> Callable[..., Any]:
    """Look up a registered point function, importing experiment modules
    on demand so fresh worker interpreters can self-populate the registry."""
    if name not in _POINT_REGISTRY:
        for module in EXPERIMENT_MODULES:
            importlib.import_module(module)
    try:
        return _POINT_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_POINT_REGISTRY)) or "<none>"
        raise KeyError(f"no point function registered as {name!r}; known: {known}") from None


def _freeze(value: Any) -> Any:
    """Recursively convert lists/dicts to tuples so specs stay hashable."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One point of an experiment grid.

    ``experiment`` names a registered point function; ``params`` is a sorted
    tuple of ``(name, value)`` pairs (use :meth:`make`); ``seed`` seeds every
    source of randomness inside the point.
    """

    experiment: str
    params: Tuple[Tuple[str, Any], ...] = ()
    seed: int = 1

    @classmethod
    def make(cls, experiment: str, seed: int = 1, **params: Any) -> "ScenarioSpec":
        return cls(experiment=experiment, seed=seed, params=_freeze(params))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    def cache_key(self) -> str:
        """Stable digest of (experiment, params, seed) for the result cache."""
        payload = json.dumps(
            {"experiment": self.experiment, "params": repr(self.params), "seed": self.seed},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.experiment}({inner}, seed={self.seed})"


@dataclass
class SweepResult:
    """Outcome of one executed (or cache-served) grid point.

    ``error`` carries the formatted traceback when the point raised and the
    caller asked for capture (the default in :func:`run_sweep`): a sweep
    with one bad point still returns — and caches — every good point.
    ``worker_id`` identifies the process that executed the point
    (``host:pid``), recorded by the result store for provenance.
    """

    spec: ScenarioSpec
    rows: List[Any]
    elapsed_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    worker_id: Optional[str] = None


def merge_rows(results: Iterable[SweepResult]) -> List[Any]:
    """Flatten per-point rows in spec order into one result table.

    Failed points (``result.error`` set) contribute no rows; callers that
    must not silently drop points should inspect the results for errors.
    """
    merged: List[Any] = []
    for result in results:
        merged.extend(result.rows)
    return merged


class SweepCache:
    """On-disk result cache keyed on ``(experiment, params, seed)``.

    Entries are pickles of the row list, written atomically so concurrent
    workers and interrupted runs can never leave a truncated entry behind.

    Every entry also records the *row schema* — for dataclass rows, the
    class identity and its field names at ``put`` time.  ``get`` recomputes
    the schema of the unpickled rows against the currently imported classes
    and treats any mismatch as a miss: unpickling bypasses ``__init__``, so
    without this check a row dataclass that gained or lost a field would be
    served from cache as a silently stale object.
    """

    #: Bump to invalidate all existing entries when the cache format changes.
    VERSION = 2

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, spec: ScenarioSpec) -> str:
        return os.path.join(
            self.root, f"{spec.experiment}-v{self.VERSION}-{spec.cache_key()[:24]}.pkl"
        )

    #: Shared with :class:`repro.store.ResultStore`, which applies the same
    #: staleness rule to its records.
    _row_schema = staticmethod(row_schema)

    def get(self, spec: ScenarioSpec) -> Optional[List[Any]]:
        path = self._path(spec)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict) or "rows" not in payload:
            return None
        rows = payload["rows"]
        if payload.get("schema") != self._row_schema(rows):
            return None  # row dataclasses changed since this entry was written
        return rows

    def put(self, spec: ScenarioSpec, rows: List[Any]) -> None:
        path = self._path(spec)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"schema": self._row_schema(rows), "rows": rows}, fh)
            os.replace(tmp_path, path)
        except (OSError, pickle.PicklingError):
            # The cache is best-effort: a failed write must never fail a sweep.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def default_worker_id() -> str:
    """``host:pid`` of the executing process, for result-store provenance."""
    return f"{socket.gethostname()}:{os.getpid()}"


class SweepError(RuntimeError):
    """Raised by ``run_sweep(strict=True)`` when any grid point failed.

    Completed points were already committed to the cache/store before this
    is raised; ``results`` holds every per-point outcome and ``failures``
    the failed subset.
    """

    def __init__(self, results: List["SweepResult"]) -> None:
        self.results = results
        self.failures = [r for r in results if r.error is not None]
        detail = "\n\n".join(f"{r.spec.describe()}:\n{r.error}"
                             for r in self.failures)
        super().__init__(f"{len(self.failures)} sweep point(s) failed:\n{detail}")


def execute_spec(spec: ScenarioSpec, capture_errors: bool = False) -> SweepResult:
    """Run one grid point in the current process.

    With ``capture_errors`` a raising point (or an unknown experiment name)
    yields a rowless :class:`SweepResult` whose ``error`` holds the
    formatted traceback instead of propagating — the mode :func:`run_sweep`
    and the distributed worker use so one bad point cannot sink a sweep.
    """
    recorder = active_span_recorder()
    span = None
    if recorder is not None:
        span = recorder.start(
            "sweep.point", ts=time.perf_counter(),
            attrs={"experiment": spec.experiment, "seed": spec.seed})
    started = time.perf_counter()
    try:
        fn = resolve_point(spec.experiment)
        out = fn(seed=spec.seed, **spec.kwargs)
    except Exception:
        if recorder is not None and span is not None:
            recorder.finish(span, ts=time.perf_counter(), status="error")
        if not capture_errors:
            raise
        return SweepResult(spec=spec, rows=[], elapsed_s=time.perf_counter() - started,
                           error=traceback.format_exc(), worker_id=default_worker_id())
    elapsed = time.perf_counter() - started
    rows = list(out) if isinstance(out, (list, tuple)) else [out]
    if recorder is not None and span is not None:
        span.set_attr("rows", len(rows))
        recorder.finish(span, ts=time.perf_counter())
    return SweepResult(spec=spec, rows=rows, elapsed_s=elapsed,
                       worker_id=default_worker_id())


def _execute_in_worker(payload: Tuple[int, ScenarioSpec, str]) -> Tuple[int, SweepResult]:
    """Pool entry point: import the point's registering module first.

    Fork workers inherit the parent's registry, but spawn workers (macOS /
    Windows) start with an empty one; importing the module that called
    :func:`register_point` repopulates it even for points registered outside
    :data:`EXPERIMENT_MODULES` (e.g. user extensions or test fixtures).
    Results come back tagged with the spec's index because the pool consumes
    them out of order (``imap_unordered``).
    """
    index, spec, module = payload
    try:
        importlib.import_module(module)
    except ImportError:
        # A spawn-mode worker that cannot re-import the registering module
        # would otherwise fail with a bare "no point function registered"
        # KeyError; name the module so the registry miss is diagnosable.
        logger.warning(
            "could not import %r (registering module of point %r); "
            "falling back to the EXPERIMENT_MODULES scan",
            module, spec.experiment)
    return index, execute_spec(spec, capture_errors=True)


def _pool_context() -> multiprocessing.context.BaseContext:
    # Prefer fork: workers then share the parent's hash seed (identical
    # set/dict iteration order) and its already-populated point registry.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def commit_result(cache: Any, result: SweepResult) -> None:
    """Commit one finished point to a cache or store (errors are not cached).

    Accepts anything with the ``SweepCache`` ``put(spec, rows)`` protocol;
    objects that also expose ``put_result(result)`` — the
    :class:`repro.store.ResultStore` — additionally receive the point's wall
    time and worker id.
    """
    if cache is None or result.error is not None:
        return
    put_result = getattr(cache, "put_result", None)
    if put_result is not None:
        put_result(result)
    else:
        cache.put(result.spec, result.rows)


def _registering_module(spec: ScenarioSpec) -> str:
    """Module whose import re-registers the spec's point, for pool workers."""
    try:
        return resolve_point(spec.experiment).__module__
    except KeyError:
        # Unknown experiment: let the worker re-resolve and capture the
        # failure as that point's error instead of sinking the whole sweep.
        return __name__


def run_sweep(
    specs: Sequence[ScenarioSpec],
    jobs: int = 1,
    cache: Optional[Any] = None,
    strict: bool = False,
) -> List[SweepResult]:
    """Execute every spec and return results in spec order.

    ``jobs <= 1`` runs serially in-process; ``jobs > 1`` fans the uncached
    points out over a :class:`multiprocessing.Pool`.  The returned row order
    — and therefore any formatted table — is identical either way.

    A raising point no longer aborts the sweep mid-flight: its result
    carries the traceback in ``error`` and contributes no rows, while every
    other point completes normally.  Finished points are committed to
    ``cache`` (a :class:`SweepCache` or :class:`repro.store.ResultStore`)
    **as they finish** — ``imap_unordered`` under the hood — so an
    interrupted or partially failing parallel sweep keeps all completed
    work.  With ``strict=True`` a :class:`SweepError` is raised at the end
    when any point failed (after the commits), for callers that consume the
    merged rows without inspecting per-point errors — e.g. the figure
    modules' ``run()`` helpers.
    """
    results: List[Optional[SweepResult]] = [None] * len(specs)
    pending: List[Tuple[int, ScenarioSpec]] = []
    for index, spec in enumerate(specs):
        rows = cache.get(spec) if cache is not None else None
        if rows is not None:
            results[index] = SweepResult(spec=spec, rows=rows, cached=True)
        else:
            pending.append((index, spec))

    if pending:
        if jobs > 1 and len(pending) > 1:
            ctx = _pool_context()
            workers = min(jobs, len(pending))
            payloads = [(index, spec, _registering_module(spec))
                        for index, spec in pending]
            with ctx.Pool(processes=workers) as pool:
                for index, result in pool.imap_unordered(_execute_in_worker, payloads):
                    results[index] = result
                    commit_result(cache, result)
        else:
            for index, spec in pending:
                result = execute_spec(spec, capture_errors=True)
                results[index] = result
                commit_result(cache, result)

    final = [result for result in results if result is not None]
    if strict and any(result.error is not None for result in final):
        raise SweepError(final)
    return final


# ---------------------------------------------------------------------------
# Synthetic benchmark point
# ---------------------------------------------------------------------------

@register_point("bench_sleep")
def _bench_sleep_point(seed: int = 1, duration: float = 0.1, payload: int = 0) -> dict:
    """A latency-bound synthetic point used by the sweep speedup benchmark.

    Sleeping models a point whose wall-clock cost dominates its CPU cost, so
    the benchmark measures the engine's dispatch overhead and parallel
    scaling even on single-core CI runners.
    """
    time.sleep(duration)
    return {"seed": seed, "duration": duration, "payload": payload}
