"""Fig. 13 — Appendix B.1: multi-bottleneck feedback in one packet.

Identical workload and topology to Fig. 10, but each packet carries the
congestion policing feedback of *every* on-path bottleneck (the chained
token of Eqs. 4–5) and the access router polices the packet through all the
corresponding rate limiters.  The paper shows Group-A senders then obtain
roughly their fair share in all three capacity cases, including the
``C_L1 < C_L2`` case that hurts the core design.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.fig10_parkinglot import (
    CAPACITY_CASES,
    ParkingLotRow,
    format_table,
    grid as grid_parkinglot,
    run as run_parkinglot,
)
from repro.experiments.sweep import ScenarioSpec, SweepCache


def grid(
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    return grid_parkinglot(
        policy="multi",
        capacity_cases=capacity_cases,
        hosts_per_group=hosts_per_group,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )


def run(
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[ParkingLotRow]:
    return run_parkinglot(
        policy="multi",
        capacity_cases=capacity_cases,
        hosts_per_group=hosts_per_group,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run(), figure="Fig. 13 (Appendix B.1, multi-bottleneck feedback)"))


if __name__ == "__main__":  # pragma: no cover
    main()
