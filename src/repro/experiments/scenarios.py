"""Shared attack scenarios for the evaluation experiments (§6.3).

Two scenario families cover every simulation figure in the paper:

* **Dumbbell** (Figs. 8, 9, 11): ten source ASes behind one bottleneck link,
  a victim destination, and optionally colluding destinations.  Each sender
  is either a legitimate user (TCP: repeated 20 KB files, web-like traffic,
  or one long-running transfer) or an attacker (UDP floods of request or
  regular packets, optionally on-off).
* **Parking lot** (Figs. 10, 13, 14): two bottleneck links in series and
  three sender groups, used to study flows that cross multiple ``mon``-state
  bottlenecks.

The same builders instantiate any of the four defense systems (``netfence``,
``tva``, ``stopit``, ``fq``) so that the comparison figures run the identical
workload against each.  The topologies are scaled down relative to the paper
(the paper itself scales the bottleneck instead of the sender count, §6.3.1);
what is preserved is the per-sender fair share, which stays in NetFence's
50–400 Kbps operating region.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import jain_fairness_index, throughput_ratio
from repro.baselines.fq import fq_queue_factory
from repro.baselines.stopit import FilterRegistry, StopItAccessRouter, stopit_queue_factory
from repro.baselines.tva import CapabilityEndHost, TvaRouter, tva_queue_factory
from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.core.endhost import NetFenceEndHost, ReturnPolicy
from repro.core.multibottleneck import (
    InferencePolicy,
    MultiFeedbackPolicy,
    SingleBottleneckPolicy,
)
from repro.core.params import NetFenceParams
from repro.simulator.node import Router
from repro.simulator.packet import PacketType, REQUEST_PACKET_SIZE
from repro.simulator.topology import (
    Topology,
    dumbbell_layout,
    parking_lot_layout,
)
from repro.simulator.trace import LinkMonitor, ThroughputMonitor
from repro.transport.traffic import (
    FileTransferApp,
    LongRunningTcpApp,
    TransferLog,
    WebTrafficApp,
)
from repro.transport.udp import OnOffPattern, UdpSender, UdpSink

SYSTEMS = ("netfence", "tva", "stopit", "fq")
WORKLOADS = ("files", "longrun", "web")


# ---------------------------------------------------------------------------
# Dumbbell scenarios (Figs. 8, 9, 11)
# ---------------------------------------------------------------------------

@dataclass
class DumbbellScenarioConfig:
    """Configuration of one dumbbell attack simulation."""

    system: str = "netfence"
    # Topology scale.
    num_source_as: int = 10
    hosts_per_as: int = 4
    legit_per_as: Optional[int] = None       # default: 25 % of hosts_per_as
    bottleneck_bps: float = 3.0e6
    access_bps: float = 100e6
    delay_s: float = 0.01
    num_colluders: int = 9
    # Workload.
    workload: str = "longrun"                # files | longrun | web
    file_bytes: int = 20_000
    # Attack.
    attack_type: str = "regular"             # regular | request
    attack_rate_bps: float = 1.0e6
    attack_on_off: Optional[Tuple[float, float]] = None   # (Ton, Toff)
    victim_blocks_attackers: bool = False
    # Timing.
    sim_time: float = 150.0
    warmup: float = 60.0
    time_factor: float = 1.0                 # scales NetFence time constants
    seed: int = 1
    # NetFence specifics.
    netfence_policy: str = "single"          # single | multi | inference
    as_fairness: bool = False

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {SYSTEMS}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.attack_type not in ("regular", "request"):
            raise ValueError("attack_type must be 'regular' or 'request'")

    @property
    def legit_count_per_as(self) -> int:
        if self.legit_per_as is not None:
            return max(0, min(self.legit_per_as, self.hosts_per_as))
        return max(1, round(0.25 * self.hosts_per_as))

    @property
    def num_senders(self) -> int:
        return self.num_source_as * self.hosts_per_as

    @property
    def fair_share_bps(self) -> float:
        return self.bottleneck_bps / self.num_senders


@dataclass
class DumbbellScenarioResult:
    """Measurements from one dumbbell simulation."""

    config: DumbbellScenarioConfig
    user_throughputs: Dict[str, float] = field(default_factory=dict)
    attacker_throughputs: Dict[str, float] = field(default_factory=dict)
    transfer_logs: Dict[str, TransferLog] = field(default_factory=dict)
    bottleneck_utilization: float = 0.0
    bottleneck_loss_rate: float = 0.0

    @property
    def avg_user_throughput_bps(self) -> float:
        values = list(self.user_throughputs.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def avg_attacker_throughput_bps(self) -> float:
        values = list(self.attacker_throughputs.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def throughput_ratio(self) -> float:
        return throughput_ratio(
            list(self.user_throughputs.values()),
            list(self.attacker_throughputs.values()),
        )

    @property
    def user_fairness_index(self) -> float:
        return jain_fairness_index(list(self.user_throughputs.values()))

    @property
    def average_transfer_time(self) -> float:
        durations: List[float] = []
        for log in self.transfer_logs.values():
            durations.extend(log.completed_durations)
        return sum(durations) / len(durations) if durations else float("nan")

    @property
    def completion_ratio(self) -> float:
        attempted = sum(log.attempted for log in self.transfer_logs.values())
        completed = sum(log.completed for log in self.transfer_logs.values())
        return completed / attempted if attempted else 0.0


def _best_request_flood_priority(config: DumbbellScenarioConfig,
                                 params: NetFenceParams,
                                 num_attackers: int) -> int:
    """The attackers' optimal request-flood priority (§6.3.1).

    Attackers pick the highest level at which their aggregate rate — bounded
    by the per-sender token rate divided by the level cost — still saturates
    the 5 % request channel.
    """
    request_capacity_bps = params.request_channel_fraction * config.bottleneck_bps
    best = 0
    for level in range(1, params.max_priority_level + 1):
        per_sender_pps = params.request_token_rate / (2 ** (level - 1))
        aggregate_bps = num_attackers * per_sender_pps * REQUEST_PACKET_SIZE * 8
        if aggregate_bps >= request_capacity_bps:
            best = level
        else:
            break
    return best


def _netfence_components(config: DumbbellScenarioConfig):
    params = NetFenceParams().scaled(config.time_factor)
    domain = NetFenceDomain(params=params, master=b"netfence-experiments")
    policy_cls = {
        "single": SingleBottleneckPolicy,
        "multi": MultiFeedbackPolicy,
        "inference": InferencePolicy,
    }[config.netfence_policy]
    return params, domain, policy_cls


def run_dumbbell_scenario(config: DumbbellScenarioConfig) -> DumbbellScenarioResult:
    """Build, run, and measure one dumbbell attack simulation."""
    rng = random.Random(config.seed)
    topo = Topology()
    sim = topo.sim

    # ---- per-system router classes and bottleneck queue -----------------------
    registry: Optional[FilterRegistry] = None
    params: Optional[NetFenceParams] = None
    domain: Optional[NetFenceDomain] = None
    if config.system == "netfence":
        params, domain, policy_cls = _netfence_components(config)
        access_cls: type = NetFenceAccessRouter
        core_cls: type = NetFenceRouter
        access_kwargs = {"domain": domain, "policy_factory": policy_cls}
        core_kwargs = {"domain": domain}
        queue_factory = netfence_queue_factory(sim, params, as_fairness=config.as_fairness)
    elif config.system == "tva":
        access_cls = TvaRouter
        core_cls = TvaRouter
        access_kwargs = {}
        core_kwargs = {}
        queue_factory = tva_queue_factory(sim)
    elif config.system == "stopit":
        registry = FilterRegistry(sim)
        access_cls = StopItAccessRouter
        core_cls = Router
        access_kwargs = {"registry": registry}
        core_kwargs = {}
        queue_factory = stopit_queue_factory(sim)
    else:  # fq
        access_cls = Router
        core_cls = Router
        access_kwargs = {}
        core_kwargs = {}
        queue_factory = fq_queue_factory()

    layout = dumbbell_layout(
        topo,
        num_source_as=config.num_source_as,
        hosts_per_as=config.hosts_per_as,
        num_receivers=1 + config.num_colluders,
        bottleneck_bps=config.bottleneck_bps,
        access_bps=config.access_bps,
        delay_s=config.delay_s,
        access_router_cls=access_cls,
        core_router_cls=core_cls,
        bottleneck_queue_factory=queue_factory,
        access_router_kwargs=access_kwargs,
        core_router_kwargs=core_kwargs,
    )
    victim = topo.host(layout.receivers[0])
    colluders = [topo.host(name) for name in layout.receivers[1:]]

    # ---- sender roles ----------------------------------------------------------
    users: List[str] = []
    attackers: List[str] = []
    for as_index in range(config.num_source_as):
        hosts = [
            f"s{as_index}_{j}" for j in range(config.hosts_per_as)
        ]
        legit = hosts[: config.legit_count_per_as]
        users.extend(legit)
        attackers.extend(hosts[config.legit_count_per_as:])

    if registry is not None:
        for as_index in range(config.num_source_as):
            for j in range(config.hosts_per_as):
                registry.register_host(f"s{as_index}_{j}", f"Ra{as_index}")

    monitor = ThroughputMonitor(sim)
    link_monitor = LinkMonitor(sim, layout.bottleneck_link, interval=1.0)

    # ---- end-host shims ----------------------------------------------------------
    attacker_set = set(attackers)
    netfence_endhosts: Dict[str, NetFenceEndHost] = {}
    if config.system == "netfence":
        assert params is not None
        victim_policy = ReturnPolicy(blocked=attacker_set if config.victim_blocks_attackers else None)
        # In the repeated-file-transfer workload each transfer is a separate
        # connection that bootstraps its own feedback (Fig. 8's level-0
        # request + back-off behaviour); long-running/web senders keep the
        # per-destination feedback loop.
        per_flow = config.workload == "files"
        for host_name in users + attackers:
            netfence_endhosts[host_name] = NetFenceEndHost(
                sim, topo.host(host_name), params=params,
                per_flow_feedback=per_flow and host_name in set(users),
            )
        NetFenceEndHost(sim, victim, params=params, return_policy=victim_policy,
                        send_feedback_packets=True)
        for colluder in colluders:
            NetFenceEndHost(sim, colluder, params=params, send_feedback_packets=True)
    elif config.system == "tva":
        for host_name in users + attackers:
            CapabilityEndHost(sim, topo.host(host_name))
        victim_grant = (
            (lambda peer: peer not in attacker_set)
            if config.victim_blocks_attackers
            else (lambda peer: True)
        )
        CapabilityEndHost(sim, victim, grant_policy=victim_grant, send_grant_packets=True)
        for colluder in colluders:
            CapabilityEndHost(sim, colluder, send_grant_packets=True)
    elif config.system == "stopit" and config.victim_blocks_attackers:
        assert registry is not None
        # The victim identifies the attack sources and asks their access
        # routers to install filters shortly after the attack starts.
        def install_filters() -> None:
            for attacker in attackers:
                registry.install_filter(attacker, victim.name)
        sim.schedule(1.0, install_filters)

    # ---- legitimate workloads ------------------------------------------------------
    transfer_logs: Dict[str, TransferLog] = {}
    for user in users:
        src_host = topo.host(user)
        if config.workload == "files":
            app = FileTransferApp(
                sim, src_host, victim, file_bytes=config.file_bytes, monitor=monitor
            )
            transfer_logs[user] = app.log
        elif config.workload == "web":
            app = WebTrafficApp(
                sim, src_host, victim, rng=random.Random(rng.randint(0, 2**31)),
                monitor=monitor,
            )
            transfer_logs[user] = app.log
        else:
            app = LongRunningTcpApp(sim, src_host, victim, monitor=monitor)
        app.start(at=rng.uniform(0.0, 1.0))

    # ---- attackers --------------------------------------------------------------------
    pattern = None
    if config.attack_on_off is not None:
        pattern = OnOffPattern(on_s=config.attack_on_off[0], off_s=config.attack_on_off[1])
    if config.attack_type == "request":
        priority = 0
        if config.system == "netfence":
            assert params is not None
            priority = _best_request_flood_priority(config, params, len(attackers))
    for sink_host in [victim] + colluders:
        UdpSink(sim, sink_host, monitor=monitor)
    for index, attacker in enumerate(attackers):
        src_host = topo.host(attacker)
        if config.attack_type == "request":
            target = victim
            sender = UdpSender(
                sim, src_host, target.name,
                rate_bps=config.attack_rate_bps,
                packet_size=REQUEST_PACKET_SIZE,
                ptype=PacketType.REQUEST,
                priority=priority,
                pattern=pattern,
            )
            # Request floods pick their own fixed priority; disable the
            # end-host shim's waiting-time escalation for these sources.
            if attacker in netfence_endhosts:
                netfence_endhosts[attacker].auto_priority = False
        else:
            target = colluders[index % len(colluders)] if colluders else victim
            sender = UdpSender(
                sim, src_host, target.name,
                rate_bps=config.attack_rate_bps,
                ptype=PacketType.REGULAR,
                pattern=pattern,
            )
        sender.start(at=rng.uniform(0.0, 0.5))

    # ---- run ---------------------------------------------------------------------------
    link_monitor.start()
    monitor.start_at(config.warmup)
    topo.run(until=config.sim_time)
    monitor.stop()
    link_monitor.stop()

    # ---- collect results -----------------------------------------------------------------
    result = DumbbellScenarioResult(config=config)
    result.transfer_logs = transfer_logs
    for user in users:
        result.user_throughputs[user] = monitor.throughput_bps(user)
    for attacker in attackers:
        result.attacker_throughputs[attacker] = monitor.throughput_bps(attacker)
    result.bottleneck_utilization = link_monitor.mean_utilization
    result.bottleneck_loss_rate = link_monitor.mean_loss_rate
    return result


# ---------------------------------------------------------------------------
# Parking-lot scenarios (Figs. 10, 13, 14)
# ---------------------------------------------------------------------------

@dataclass
class ParkingLotScenarioConfig:
    """Configuration of one two-bottleneck (parking lot) simulation."""

    l1_bps: float = 1.6e6
    l2_bps: float = 1.6e6
    hosts_per_group: int = 20
    legit_fraction: float = 0.25
    attack_rate_bps: float = 1.0e6
    access_bps: float = 100e6
    delay_s: float = 0.01
    sim_time: float = 150.0
    warmup: float = 60.0
    time_factor: float = 1.0
    seed: int = 1
    netfence_policy: str = "single"    # single | multi | inference

    @property
    def fair_share_bps(self) -> float:
        """Group-A max-min fair share when both groups share each link."""
        return min(self.l1_bps, self.l2_bps) / (2 * self.hosts_per_group)


@dataclass
class ParkingLotScenarioResult:
    """Per-group throughput measurements from a parking-lot simulation."""

    config: ParkingLotScenarioConfig
    group_user_throughputs: Dict[str, List[float]] = field(default_factory=dict)
    group_attacker_throughputs: Dict[str, List[float]] = field(default_factory=dict)

    def avg_user(self, group: str) -> float:
        values = self.group_user_throughputs.get(group, [])
        return sum(values) / len(values) if values else 0.0

    def avg_attacker(self, group: str) -> float:
        values = self.group_attacker_throughputs.get(group, [])
        return sum(values) / len(values) if values else 0.0


def run_parking_lot_scenario(config: ParkingLotScenarioConfig) -> ParkingLotScenarioResult:
    """Run the §6.3.2 multi-bottleneck colluding attack under NetFence."""
    rng = random.Random(config.seed)
    params = NetFenceParams().scaled(config.time_factor)
    domain = NetFenceDomain(params=params, master=b"netfence-parkinglot")
    policy_cls = {
        "single": SingleBottleneckPolicy,
        "multi": MultiFeedbackPolicy,
        "inference": InferencePolicy,
    }[config.netfence_policy]

    topo = Topology()
    sim = topo.sim
    layout = parking_lot_layout(
        topo,
        hosts_per_group=config.hosts_per_group,
        l1_bps=config.l1_bps,
        l2_bps=config.l2_bps,
        access_bps=config.access_bps,
        delay_s=config.delay_s,
        access_router_cls=NetFenceAccessRouter,
        core_router_cls=NetFenceRouter,
        bottleneck_queue_factory=netfence_queue_factory(sim, params),
        access_router_kwargs={"domain": domain, "policy_factory": policy_cls},
        core_router_kwargs={"domain": domain},
    )

    monitor = ThroughputMonitor(sim)
    victims = {"A": topo.host(layout.receivers_ab[0]),
               "B": topo.host(layout.receivers_ab[0]),
               "C": topo.host(layout.receivers_c[0])}
    colluders = {"A": topo.host(layout.receivers_ab[1]),
                 "B": topo.host(layout.receivers_ab[1]),
                 "C": topo.host(layout.receivers_c[1])}

    for receiver in set(list(victims.values()) + list(colluders.values())):
        NetFenceEndHost(sim, receiver, params=params, send_feedback_packets=True)
        UdpSink(sim, receiver, monitor=monitor)

    result = ParkingLotScenarioResult(config=config)
    groups = {"A": layout.group_a, "B": layout.group_b, "C": layout.group_c}
    legit_per_group = max(1, round(config.legit_fraction * config.hosts_per_group))
    group_roles: Dict[str, Tuple[List[str], List[str]]] = {}
    for group, hosts in groups.items():
        users = hosts[:legit_per_group]
        attackers = hosts[legit_per_group:]
        group_roles[group] = (users, attackers)
        for host_name in hosts:
            NetFenceEndHost(sim, topo.host(host_name), params=params)
        for user in users:
            app = LongRunningTcpApp(sim, topo.host(user), victims[group], monitor=monitor)
            app.start(at=rng.uniform(0.0, 1.0))
        for attacker in attackers:
            sender = UdpSender(
                sim, topo.host(attacker), colluders[group].name,
                rate_bps=config.attack_rate_bps, ptype=PacketType.REGULAR,
            )
            sender.start(at=rng.uniform(0.0, 0.5))

    monitor.start_at(config.warmup)
    topo.run(until=config.sim_time)
    monitor.stop()

    for group, (users, attackers) in group_roles.items():
        result.group_user_throughputs[group] = [monitor.throughput_bps(u) for u in users]
        result.group_attacker_throughputs[group] = [monitor.throughput_bps(a) for a in attackers]
    return result
