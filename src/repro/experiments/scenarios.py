"""Shared attack scenarios for the evaluation experiments (§6.3).

Three scenario families drive the simulation figures — the paper's two
hand-built layouts plus a generated Internet-scale family:

* **Dumbbell** (Figs. 8, 9, 11): ten source ASes behind one bottleneck link,
  a victim destination, and optionally colluding destinations.  Each sender
  is either a legitimate user (TCP: repeated 20 KB files, web-like traffic,
  or one long-running transfer) or an attacker (UDP floods of request or
  regular packets, optionally on-off).
* **Parking lot** (Figs. 10, 13, 14): two bottleneck links in series and
  three sender groups, used to study flows that cross multiple ``mon``-state
  bottlenecks.
* **AS graph** (fig6_scaling): a :mod:`repro.topogen` generated AS-level
  topology (core/transit/stub tiers, valley-free routing) with an
  aggregated botnet placed by a :mod:`~repro.topogen.placement` model —
  the family that scales to 10^4–10^6 represented bots and measures the
  O(#AS) router-state claim.

The same builders instantiate any of the four defense systems (``netfence``,
``tva``, ``stopit``, ``fq``) so that the comparison figures run the identical
workload against each.  The topologies are scaled down relative to the paper
(the paper itself scales the bottleneck instead of the sender count, §6.3.1);
what is preserved is the per-sender fair share, which stays in NetFence's
50–400 Kbps operating region.

Dumbbell scenarios additionally support the §5 partial-deployment axis
(``deployment_fraction`` / ``bottleneck_deployed`` select which source ASes
run NetFence access routers versus legacy ones), per-AS workload mixes
(``as_workloads``), and an ``attack_strategy`` axis — ``constant``,
equal-volume naive ``onoff``, or the AIMD-aware ``strategic`` attacker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.metrics import jain_fairness_index, throughput_ratio, traffic_share
from repro.baselines import BaselineWiring, baseline_wiring
from repro.baselines.stopit import FilterRegistry
from repro.baselines.tva import CapabilityEndHost
from repro.core.access import LegacyAccessRouter, NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.deployment import DeploymentPlan
from repro.core.domain import NetFenceDomain
from repro.core.endhost import NetFenceEndHost, ReturnPolicy
from repro.core.multibottleneck import (
    InferencePolicy,
    MultiFeedbackPolicy,
    SingleBottleneckPolicy,
)
from repro.core.params import NetFenceParams
from repro.simulator.node import Router
from repro.simulator.packet import PacketType, REQUEST_PACKET_SIZE
from repro.simulator.topology import (
    Topology,
    dumbbell_layout,
    parking_lot_layout,
)
from repro.simulator.trace import LinkMonitor, ThroughputMonitor
from repro.transport.traffic import (
    FileTransferApp,
    LongRunningTcpApp,
    TransferLog,
    WebTrafficApp,
)
from repro.transport.udp import OnOffPattern, StrategicAttacker, UdpSender, UdpSink

SYSTEMS = ("netfence", "tva", "stopit", "fq")
WORKLOADS = ("files", "longrun", "web")
ATTACK_STRATEGIES = ("constant", "onoff", "strategic")


# ---------------------------------------------------------------------------
# Dumbbell scenarios (Figs. 8, 9, 11)
# ---------------------------------------------------------------------------

@dataclass
class DumbbellScenarioConfig:
    """Configuration of one dumbbell attack simulation."""

    system: str = "netfence"
    # Topology scale.
    num_source_as: int = 10
    hosts_per_as: int = 4
    legit_per_as: Optional[int] = None       # default: 25 % of hosts_per_as
    bottleneck_bps: float = 3.0e6
    access_bps: float = 100e6
    delay_s: float = 0.01
    num_colluders: int = 9
    # Workload.
    workload: str = "longrun"                # files | longrun | web
    #: Optional per-AS workload mix: source AS ``i`` runs workload
    #: ``as_workloads[i % len(as_workloads)]``; ``None`` uses ``workload``
    #: everywhere.
    as_workloads: Optional[Tuple[str, ...]] = None
    file_bytes: int = 20_000
    # Attack.
    attack_type: str = "regular"             # regular | request
    attack_rate_bps: float = 1.0e6
    attack_strategy: str = "constant"        # constant | onoff | strategic
    attack_on_off: Optional[Tuple[float, float]] = None   # (Ton, Toff)
    victim_blocks_attackers: bool = False
    # Partial deployment (§5); only meaningful for system == "netfence".
    deployment_fraction: float = 1.0
    bottleneck_deployed: bool = True
    # Timing.
    sim_time: float = 150.0
    warmup: float = 60.0
    time_factor: float = 1.0                 # scales NetFence time constants
    seed: int = 1
    # NetFence specifics.
    netfence_policy: str = "single"          # single | multi | inference
    as_fairness: bool = False

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {SYSTEMS}")
        if self.workload not in WORKLOADS:
            raise ValueError(f"unknown workload {self.workload!r}")
        for workload in self.as_workloads or ():
            if workload not in WORKLOADS:
                raise ValueError(f"unknown per-AS workload {workload!r}")
        if self.attack_type not in ("regular", "request"):
            raise ValueError("attack_type must be 'regular' or 'request'")
        if self.attack_strategy not in ATTACK_STRATEGIES:
            raise ValueError(
                f"unknown attack_strategy {self.attack_strategy!r}; "
                f"expected one of {ATTACK_STRATEGIES}")
        if self.attack_strategy == "strategic" and self.attack_on_off is not None:
            raise ValueError(
                "attack_on_off cannot be combined with the strategic attacker: "
                "its burst timing is derived from the defense's AIMD constants")
        if not 0.0 <= self.deployment_fraction <= 1.0:
            raise ValueError("deployment_fraction must be within [0, 1]")

    @property
    def legit_count_per_as(self) -> int:
        if self.legit_per_as is not None:
            return max(0, min(self.legit_per_as, self.hosts_per_as))
        return max(1, round(0.25 * self.hosts_per_as))

    @property
    def num_senders(self) -> int:
        return self.num_source_as * self.hosts_per_as

    @property
    def fair_share_bps(self) -> float:
        return self.bottleneck_bps / self.num_senders

    @property
    def deployment_plan(self) -> DeploymentPlan:
        """The §5 deployment state this scenario runs under."""
        if self.deployment_fraction >= 1.0:
            plan = DeploymentPlan.full(self.num_source_as)
            if not self.bottleneck_deployed:
                plan = DeploymentPlan(
                    num_source_as=self.num_source_as,
                    enabled_as=plan.enabled_as,
                    bottleneck_enabled=False,
                )
            return plan
        return DeploymentPlan.from_fraction(
            self.num_source_as,
            self.deployment_fraction,
            seed=self.seed,
            bottleneck_enabled=self.bottleneck_deployed,
        )

    def workload_for_as(self, as_index: int) -> str:
        """The legitimate workload run by source AS ``as_index``."""
        if self.as_workloads:
            return self.as_workloads[as_index % len(self.as_workloads)]
        return self.workload


@dataclass
class DumbbellScenarioResult:
    """Measurements from one dumbbell simulation."""

    config: DumbbellScenarioConfig
    user_throughputs: Dict[str, float] = field(default_factory=dict)
    attacker_throughputs: Dict[str, float] = field(default_factory=dict)
    transfer_logs: Dict[str, TransferLog] = field(default_factory=dict)
    bottleneck_utilization: float = 0.0
    bottleneck_loss_rate: float = 0.0
    #: Source-AS index of every sender (users and attackers).
    sender_as: Dict[str, int] = field(default_factory=dict)
    #: Indices of the NetFence-enabled source ASes this run used.
    enabled_as: Tuple[int, ...] = ()

    @property
    def avg_user_throughput_bps(self) -> float:
        values = list(self.user_throughputs.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def avg_attacker_throughput_bps(self) -> float:
        values = list(self.attacker_throughputs.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def throughput_ratio(self) -> float:
        return throughput_ratio(
            list(self.user_throughputs.values()),
            list(self.attacker_throughputs.values()),
        )

    @property
    def user_fairness_index(self) -> float:
        return jain_fairness_index(list(self.user_throughputs.values()))

    @property
    def average_transfer_time(self) -> float:
        durations: List[float] = []
        for log in self.transfer_logs.values():
            durations.extend(log.completed_durations)
        return sum(durations) / len(durations) if durations else float("nan")

    @property
    def completion_ratio(self) -> float:
        attempted = sum(log.attempted for log in self.transfer_logs.values())
        completed = sum(log.completed for log in self.transfer_logs.values())
        return completed / attempted if attempted else 0.0

    # -- partial-deployment views (§5) ---------------------------------------
    @property
    def legit_share(self) -> float:
        """Legitimate senders' share of the bottleneck capacity."""
        return traffic_share(list(self.user_throughputs.values()),
                             self.config.bottleneck_bps)

    @property
    def attack_share(self) -> float:
        """Attack traffic's share of the bottleneck capacity."""
        return traffic_share(list(self.attacker_throughputs.values()),
                             self.config.bottleneck_bps)

    def _split_users(self, enabled: bool) -> Dict[str, float]:
        chosen = set(self.enabled_as)
        return {
            user: bps for user, bps in self.user_throughputs.items()
            if (self.sender_as.get(user) in chosen) == enabled
        }

    @property
    def enabled_user_throughputs(self) -> Dict[str, float]:
        """Throughputs of legitimate users inside NetFence-enabled ASes."""
        return self._split_users(True)

    @property
    def legacy_user_throughputs(self) -> Dict[str, float]:
        """Throughputs of legitimate users inside legacy (non-upgraded) ASes."""
        return self._split_users(False)

    def avg_throughput_bps(self, throughputs: Dict[str, float]) -> float:
        values = list(throughputs.values())
        return sum(values) / len(values) if values else 0.0


def _best_request_flood_priority(config: DumbbellScenarioConfig,
                                 params: NetFenceParams,
                                 num_attackers: int) -> int:
    """The attackers' optimal request-flood priority (§6.3.1).

    Attackers pick the highest level at which their aggregate rate — bounded
    by the per-sender token rate divided by the level cost — still saturates
    the 5 % request channel.
    """
    request_capacity_bps = params.request_channel_fraction * config.bottleneck_bps
    best = 0
    for level in range(1, params.max_priority_level + 1):
        per_sender_pps = params.request_token_rate / (2 ** (level - 1))
        aggregate_bps = num_attackers * per_sender_pps * REQUEST_PACKET_SIZE * 8
        if aggregate_bps >= request_capacity_bps:
            best = level
        else:
            break
    return best


def _netfence_components(time_factor: float, policy: str,
                         master: bytes = b"netfence-experiments",
                         plan: Optional[DeploymentPlan] = None):
    """Params, domain, and policing-policy class shared by every NetFence
    scenario family (the counterpart of :func:`repro.baselines.baseline_wiring`)."""
    params = NetFenceParams().scaled(time_factor)
    domain = NetFenceDomain(params=params, master=master, deployment=plan)
    policy_cls = {
        "single": SingleBottleneckPolicy,
        "multi": MultiFeedbackPolicy,
        "inference": InferencePolicy,
    }[policy]
    return params, domain, policy_cls


def _netfence_wiring(sim, time_factor: float, policy: str,
                     master: bytes = b"netfence-experiments",
                     seed: Optional[int] = None,
                     plan: Optional[DeploymentPlan] = None,
                     as_fairness: bool = False):
    """Router classes and queue factory for a (full) NetFence deployment.

    Returns ``(params, domain, wiring)`` with the same
    :class:`~repro.baselines.BaselineWiring` record shape the baselines
    use; scenario families with partial-deployment axes override the
    record's core/queue entries for the legacy-bottleneck case.
    """
    params, domain, policy_cls = _netfence_components(time_factor, policy,
                                                      master=master, plan=plan)
    wiring = BaselineWiring(
        access_cls=NetFenceAccessRouter,
        access_kwargs={"domain": domain, "policy_factory": policy_cls},
        core_cls=NetFenceRouter,
        core_kwargs={"domain": domain},
        queue_factory=netfence_queue_factory(sim, params,
                                             as_fairness=as_fairness, seed=seed),
    )
    return params, domain, wiring


def _attack_pattern(config: DumbbellScenarioConfig,
                    params: NetFenceParams) -> Optional[OnOffPattern]:
    """The on-off pattern of non-strategic attackers, or ``None`` (always on).

    ``constant`` honours an explicit ``attack_on_off`` tuple (the Fig. 11
    sweep drives Ton/Toff directly); ``onoff`` is the naive equal-volume
    counterpart of the strategic attacker — same duty cycle, period
    incommensurate with the AIMD clock.
    """
    if config.attack_strategy == "onoff":
        if config.attack_on_off is not None:
            return OnOffPattern(on_s=config.attack_on_off[0],
                                off_s=config.attack_on_off[1])
        return StrategicAttacker.naive_pattern(params, rate_bps=config.attack_rate_bps)
    if config.attack_on_off is not None:
        return OnOffPattern(on_s=config.attack_on_off[0],
                            off_s=config.attack_on_off[1])
    return None


def run_dumbbell_scenario(config: DumbbellScenarioConfig) -> DumbbellScenarioResult:
    """Build, run, and measure one dumbbell attack simulation."""
    rng = random.Random(config.seed)
    topo = Topology()
    sim = topo.clock

    # ---- per-system router classes and bottleneck queue -----------------------
    registry: Optional[FilterRegistry] = None
    params: Optional[NetFenceParams] = None
    domain: Optional[NetFenceDomain] = None
    plan: Optional[DeploymentPlan] = None
    access_router_for_as = None
    if config.system == "netfence":
        plan = config.deployment_plan
        params, domain, wiring = _netfence_wiring(
            sim, config.time_factor, config.netfence_policy, plan=plan,
            seed=config.seed, as_fairness=config.as_fairness)
        access_cls: type = wiring.access_cls
        access_kwargs = wiring.access_kwargs
        if plan.bottleneck_enabled:
            core_cls: type = wiring.core_cls
            core_kwargs = wiring.core_kwargs
            queue_factory = wiring.queue_factory
        else:
            # A legacy bottleneck AS: plain FIFO forwarding, no channels, no
            # feedback stamping — NetFence deployed only at the edge.
            core_cls = Router
            core_kwargs = {}
            queue_factory = None
        if not all(plan.is_enabled(i) for i in range(config.num_source_as)):
            nf_kwargs = dict(access_kwargs)

            def access_router_for_as(as_index: int, _kwargs=nf_kwargs):
                if plan.is_enabled(as_index):
                    return NetFenceAccessRouter, _kwargs
                return LegacyAccessRouter, {}
    else:  # tva | stopit | fq share the BaselineWiring table
        wiring = baseline_wiring(config.system, sim)
        access_cls = wiring.access_cls
        core_cls = wiring.core_cls
        access_kwargs = wiring.access_kwargs
        core_kwargs = wiring.core_kwargs
        queue_factory = wiring.queue_factory
        registry = wiring.registry

    layout = dumbbell_layout(
        topo,
        num_source_as=config.num_source_as,
        hosts_per_as=config.hosts_per_as,
        num_receivers=1 + config.num_colluders,
        bottleneck_bps=config.bottleneck_bps,
        access_bps=config.access_bps,
        delay_s=config.delay_s,
        access_router_cls=access_cls,
        core_router_cls=core_cls,
        bottleneck_queue_factory=queue_factory,
        access_router_kwargs=access_kwargs,
        core_router_kwargs=core_kwargs,
        access_router_for_as=access_router_for_as,
    )
    victim = topo.host(layout.receivers[0])
    colluders = [topo.host(name) for name in layout.receivers[1:]]

    # ---- sender roles ----------------------------------------------------------
    users: List[str] = []
    attackers: List[str] = []
    sender_as: Dict[str, int] = {}
    for as_index in range(config.num_source_as):
        hosts = [
            f"s{as_index}_{j}" for j in range(config.hosts_per_as)
        ]
        for host_name in hosts:
            sender_as[host_name] = as_index
        legit = hosts[: config.legit_count_per_as]
        users.extend(legit)
        attackers.extend(hosts[config.legit_count_per_as:])

    def host_deployed(host_name: str) -> bool:
        """Whether a sender's AS runs NetFence (always true outside §5 runs)."""
        return plan is None or plan.is_enabled(sender_as[host_name])

    if registry is not None:
        for as_index in range(config.num_source_as):
            for j in range(config.hosts_per_as):
                registry.register_host(f"s{as_index}_{j}", f"Ra{as_index}")

    monitor = ThroughputMonitor(sim)
    link_monitor = LinkMonitor(sim, layout.bottleneck_link, interval=1.0)

    # ---- end-host shims ----------------------------------------------------------
    attacker_set = set(attackers)
    netfence_endhosts: Dict[str, NetFenceEndHost] = {}
    if config.system == "netfence":
        assert params is not None
        victim_policy = ReturnPolicy(blocked=attacker_set if config.victim_blocks_attackers else None)
        user_set = set(users)
        for host_name in users + attackers:
            # Hosts in legacy (non-upgraded) ASes do not speak NetFence:
            # their packets leave unstamped and travel the legacy channel.
            if not host_deployed(host_name):
                continue
            # In the repeated-file-transfer workload each transfer is a
            # separate connection that bootstraps its own feedback (Fig. 8's
            # level-0 request + back-off behaviour); long-running/web senders
            # keep the per-destination feedback loop.
            per_flow = config.workload_for_as(sender_as[host_name]) == "files"
            netfence_endhosts[host_name] = NetFenceEndHost(
                sim, topo.host(host_name), params=params,
                per_flow_feedback=per_flow and host_name in user_set,
            )
        NetFenceEndHost(sim, victim, params=params, return_policy=victim_policy,
                        send_feedback_packets=True)
        for colluder in colluders:
            NetFenceEndHost(sim, colluder, params=params, send_feedback_packets=True)
    elif config.system == "tva":
        for host_name in users + attackers:
            CapabilityEndHost(sim, topo.host(host_name))
        victim_grant = (
            (lambda peer: peer not in attacker_set)
            if config.victim_blocks_attackers
            else (lambda peer: True)
        )
        CapabilityEndHost(sim, victim, grant_policy=victim_grant, send_grant_packets=True)
        for colluder in colluders:
            CapabilityEndHost(sim, colluder, send_grant_packets=True)
    elif config.system == "stopit" and config.victim_blocks_attackers:
        assert registry is not None
        # The victim identifies the attack sources and asks their access
        # routers to install filters shortly after the attack starts.
        def install_filters() -> None:
            for attacker in attackers:
                registry.install_filter(attacker, victim.name)
        sim.schedule(1.0, install_filters)

    # ---- legitimate workloads ------------------------------------------------------
    transfer_logs: Dict[str, TransferLog] = {}
    for user in users:
        src_host = topo.host(user)
        workload = config.workload_for_as(sender_as[user])
        if workload == "files":
            app = FileTransferApp(
                sim, src_host, victim, file_bytes=config.file_bytes, monitor=monitor
            )
            transfer_logs[user] = app.log
        elif workload == "web":
            app = WebTrafficApp(
                sim, src_host, victim, rng=random.Random(rng.randint(0, 2**31)),
                monitor=monitor,
            )
            transfer_logs[user] = app.log
        else:
            app = LongRunningTcpApp(sim, src_host, victim, monitor=monitor)
        app.start(at=rng.uniform(0.0, 1.0))

    # ---- attackers --------------------------------------------------------------------
    # The strategic attacker adapts its timing to the defense's constants;
    # against baselines it attacks the same constants it would expect a
    # NetFence deployment to use (scaled the same way).
    attack_params = params if params is not None else NetFenceParams().scaled(config.time_factor)
    strategic = config.attack_strategy == "strategic"
    pattern = _attack_pattern(config, attack_params)
    if config.attack_type == "request":
        priority = 0
        if config.system == "netfence":
            assert params is not None
            priority = _best_request_flood_priority(config, params, len(attackers))
    for sink_host in [victim] + colluders:
        UdpSink(sim, sink_host, monitor=monitor)
    for index, attacker in enumerate(attackers):
        src_host = topo.host(attacker)
        if config.attack_type == "request":
            target = victim
            attack_ptype = PacketType.REQUEST
            attack_size = REQUEST_PACKET_SIZE
            attack_priority = priority
            # Request floods pick their own fixed priority; disable the
            # end-host shim's waiting-time escalation for these sources.
            if attacker in netfence_endhosts:
                netfence_endhosts[attacker].auto_priority = False
        else:
            target = colluders[index % len(colluders)] if colluders else victim
            attack_ptype = PacketType.REGULAR
            attack_size = None
            attack_priority = 0
        size_kwargs = {} if attack_size is None else {"packet_size": attack_size}
        if strategic:
            sender = StrategicAttacker(
                sim, src_host, target.name,
                rate_bps=config.attack_rate_bps,
                params=attack_params,
                ptype=attack_ptype,
                priority=attack_priority,
                **size_kwargs,
            )
            # Synchronized bursts aligned with the AIMD adjustment clock.
            sender.start_aligned()
        else:
            sender = UdpSender(
                sim, src_host, target.name,
                rate_bps=config.attack_rate_bps,
                ptype=attack_ptype,
                priority=attack_priority,
                pattern=pattern,
                **size_kwargs,
            )
            sender.start(at=rng.uniform(0.0, 0.5))

    # ---- run ---------------------------------------------------------------------------
    link_monitor.start()
    monitor.start_at(config.warmup)
    topo.run(until=config.sim_time)
    monitor.stop()
    link_monitor.stop()

    # ---- collect results -----------------------------------------------------------------
    result = DumbbellScenarioResult(config=config)
    result.transfer_logs = transfer_logs
    result.sender_as = sender_as
    result.enabled_as = (
        plan.enabled_as if plan is not None else tuple(range(config.num_source_as))
    )
    for user in users:
        result.user_throughputs[user] = monitor.throughput_bps(user)
    for attacker in attackers:
        result.attacker_throughputs[attacker] = monitor.throughput_bps(attacker)
    result.bottleneck_utilization = link_monitor.mean_utilization
    result.bottleneck_loss_rate = link_monitor.mean_loss_rate
    return result


# ---------------------------------------------------------------------------
# Parking-lot scenarios (Figs. 10, 13, 14)
# ---------------------------------------------------------------------------

@dataclass
class ParkingLotScenarioConfig:
    """Configuration of one two-bottleneck (parking lot) simulation."""

    l1_bps: float = 1.6e6
    l2_bps: float = 1.6e6
    hosts_per_group: int = 20
    legit_fraction: float = 0.25
    attack_rate_bps: float = 1.0e6
    access_bps: float = 100e6
    delay_s: float = 0.01
    sim_time: float = 150.0
    warmup: float = 60.0
    time_factor: float = 1.0
    seed: int = 1
    netfence_policy: str = "single"    # single | multi | inference

    @property
    def fair_share_bps(self) -> float:
        """Group-A max-min fair share when both groups share each link."""
        return min(self.l1_bps, self.l2_bps) / (2 * self.hosts_per_group)


@dataclass
class ParkingLotScenarioResult:
    """Per-group throughput measurements from a parking-lot simulation."""

    config: ParkingLotScenarioConfig
    group_user_throughputs: Dict[str, List[float]] = field(default_factory=dict)
    group_attacker_throughputs: Dict[str, List[float]] = field(default_factory=dict)

    def avg_user(self, group: str) -> float:
        values = self.group_user_throughputs.get(group, [])
        return sum(values) / len(values) if values else 0.0

    def avg_attacker(self, group: str) -> float:
        values = self.group_attacker_throughputs.get(group, [])
        return sum(values) / len(values) if values else 0.0


def run_parking_lot_scenario(config: ParkingLotScenarioConfig) -> ParkingLotScenarioResult:
    """Run the §6.3.2 multi-bottleneck colluding attack under NetFence."""
    rng = random.Random(config.seed)
    params, domain, policy_cls = _netfence_components(
        config.time_factor, config.netfence_policy, master=b"netfence-parkinglot")

    topo = Topology()
    sim = topo.clock
    layout = parking_lot_layout(
        topo,
        hosts_per_group=config.hosts_per_group,
        l1_bps=config.l1_bps,
        l2_bps=config.l2_bps,
        access_bps=config.access_bps,
        delay_s=config.delay_s,
        access_router_cls=NetFenceAccessRouter,
        core_router_cls=NetFenceRouter,
        bottleneck_queue_factory=netfence_queue_factory(sim, params, seed=config.seed),
        access_router_kwargs={"domain": domain, "policy_factory": policy_cls},
        core_router_kwargs={"domain": domain},
    )

    monitor = ThroughputMonitor(sim)
    victims = {"A": topo.host(layout.receivers_ab[0]),
               "B": topo.host(layout.receivers_ab[0]),
               "C": topo.host(layout.receivers_c[0])}
    colluders = {"A": topo.host(layout.receivers_ab[1]),
                 "B": topo.host(layout.receivers_ab[1]),
                 "C": topo.host(layout.receivers_c[1])}

    for receiver in set(list(victims.values()) + list(colluders.values())):
        NetFenceEndHost(sim, receiver, params=params, send_feedback_packets=True)
        UdpSink(sim, receiver, monitor=monitor)

    result = ParkingLotScenarioResult(config=config)
    groups = {"A": layout.group_a, "B": layout.group_b, "C": layout.group_c}
    legit_per_group = max(1, round(config.legit_fraction * config.hosts_per_group))
    group_roles: Dict[str, Tuple[List[str], List[str]]] = {}
    for group, hosts in groups.items():
        users = hosts[:legit_per_group]
        attackers = hosts[legit_per_group:]
        group_roles[group] = (users, attackers)
        for host_name in hosts:
            NetFenceEndHost(sim, topo.host(host_name), params=params)
        for user in users:
            app = LongRunningTcpApp(sim, topo.host(user), victims[group], monitor=monitor)
            app.start(at=rng.uniform(0.0, 1.0))
        for attacker in attackers:
            sender = UdpSender(
                sim, topo.host(attacker), colluders[group].name,
                rate_bps=config.attack_rate_bps, ptype=PacketType.REGULAR,
            )
            sender.start(at=rng.uniform(0.0, 0.5))

    monitor.start_at(config.warmup)
    topo.run(until=config.sim_time)
    monitor.stop()

    for group, (users, attackers) in group_roles.items():
        result.group_user_throughputs[group] = [monitor.throughput_bps(u) for u in users]
        result.group_attacker_throughputs[group] = [monitor.throughput_bps(a) for a in attackers]
    return result


# ---------------------------------------------------------------------------
# AS-graph scenarios (fig6_scaling: Internet-scale botnets over repro.topogen)
# ---------------------------------------------------------------------------

@dataclass
class ASGraphScenarioConfig:
    """One botnet-scaling simulation on a generated AS-level topology.

    The botnet is **aggregated**: :mod:`repro.topogen.placement` collapses
    ``botnet_size`` bots into at most a couple of simulated hosts per AS,
    each standing in for ``multiplicity`` real bots, and each host's flood
    rate is scaled by its multiplicity.  ``attack_cap_multiple`` bounds the
    *aggregate* attack volume (relative to the bottleneck) so a 10^6-bot
    point stays simulable — past ~3x the bottleneck, extra volume only adds
    drops at the congested queue, not new behaviour.

    The attack is a Fig.-9-style **colluding flood**: bots send regular
    traffic to colluding receivers in the victim's AS, so no receiver ever
    withholds authorization.  Under ``stopit`` this means *no filters are
    installed* by design — the colluders requested the traffic — and the
    defense under test is StopIt's hierarchical-fair-queuing fallback at
    the congested link, exactly as in the dumbbell colluder scenarios.
    """

    system: str = "netfence"
    # Topology (generated by repro.topogen.asgraph from this seed).
    num_as: int = 24
    bottleneck_bps: float = 2.4e6
    interas_bps: float = 200e6
    edge_bps: float = 1e9
    delay_s: float = 0.005
    # Botnet and placement.
    botnet_size: int = 10_000
    placement_model: str = "uniform"
    max_attacker_hosts_per_as: int = 2
    per_bot_rate_bps: float = 5_000.0
    attack_cap_multiple: float = 3.0
    # Legitimate side.
    num_users: int = 6
    num_colluders: int = 4
    # Timing.
    sim_time: float = 60.0
    warmup: float = 20.0
    time_factor: float = 1.0
    seed: int = 1
    # NetFence specifics.
    netfence_policy: str = "single"          # single | multi | inference

    def __post_init__(self) -> None:
        from repro.topogen.placement import PLACEMENT_MODELS

        if self.system not in SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {SYSTEMS}")
        if self.placement_model not in PLACEMENT_MODELS:
            raise ValueError(
                f"unknown placement model {self.placement_model!r}; "
                f"expected one of {PLACEMENT_MODELS}")
        if self.botnet_size < 1:
            raise ValueError("botnet_size must be positive")
        if self.num_as < 4:
            raise ValueError("num_as must be at least 4")

    @property
    def attack_total_bps(self) -> float:
        """Aggregate botnet volume entering the network (capped, see above)."""
        return min(self.botnet_size * self.per_bot_rate_bps,
                   self.attack_cap_multiple * self.bottleneck_bps)


@dataclass
class ASGraphScenarioResult:
    """Measurements from one AS-graph botnet simulation."""

    config: ASGraphScenarioConfig
    graph_fingerprint: str = ""
    victim_as: str = ""
    bottleneck_as: str = ""
    num_attacker_hosts: int = 0
    represented_bots: int = 0
    user_throughputs: Dict[str, float] = field(default_factory=dict)
    attacker_throughputs: Dict[str, float] = field(default_factory=dict)
    #: Active rate-limiter count per access router at the end of the run —
    #: the per-AS policing state the paper bounds by O(#AS).
    limiter_counts: Dict[str, int] = field(default_factory=dict)
    #: Flow-state entries held by the bottleneck link's queue (per-sender
    #: DRR/HFQ buckets for the baselines; channel queues for NetFence).
    bottleneck_queue_state: int = 0
    bottleneck_utilization: float = 0.0
    bottleneck_loss_rate: float = 0.0

    @property
    def legit_share(self) -> float:
        """Legitimate users' share of the bottleneck capacity."""
        return traffic_share(list(self.user_throughputs.values()),
                             self.config.bottleneck_bps)

    @property
    def attack_share(self) -> float:
        return traffic_share(list(self.attacker_throughputs.values()),
                             self.config.bottleneck_bps)

    @property
    def avg_user_throughput_bps(self) -> float:
        values = list(self.user_throughputs.values())
        return sum(values) / len(values) if values else 0.0

    @property
    def limiter_state_total(self) -> int:
        """Rate limiters across all access routers — the O(#AS) claim's
        numerator: grows with the AS count, never with ``botnet_size``."""
        return sum(self.limiter_counts.values())

    @property
    def limiter_state_max(self) -> int:
        """Largest single-router limiter table (per-router state bound)."""
        return max(self.limiter_counts.values(), default=0)


def _queue_state_size(queue) -> int:
    """Duck-typed count of per-flow state entries held by a link queue."""
    count = len(getattr(queue, "_flows", ()))
    for attr in ("request_queue", "regular_queue", "legacy_queue"):
        inner = getattr(queue, attr, None)
        if inner is not None:
            count += len(getattr(inner, "_flows", ()))
    return count


def run_asgraph_scenario(config: ASGraphScenarioConfig) -> ASGraphScenarioResult:
    """Generate, place, realize, and run one botnet-scaling simulation."""
    from repro.topogen import generate_as_graph, place, realize

    rng = random.Random(config.seed)
    graph = generate_as_graph(config.num_as, seed=config.seed)
    placement = place(
        graph,
        config.placement_model,
        num_bots=config.botnet_size,
        num_users=config.num_users,
        num_colluders=config.num_colluders,
        max_attacker_hosts_per_as=config.max_attacker_hosts_per_as,
        seed=config.seed,
    )

    topo = Topology()
    sim = topo.clock
    registry: Optional[FilterRegistry] = None
    params: Optional[NetFenceParams] = None
    if config.system == "netfence":
        params, domain, wiring = _netfence_wiring(
            sim, config.time_factor, config.netfence_policy,
            master=b"netfence-topogen", seed=config.seed)
    else:
        wiring = baseline_wiring(config.system, sim)
        registry = wiring.registry
    access_cls = wiring.access_cls
    core_cls = wiring.core_cls
    access_kwargs = wiring.access_kwargs
    core_kwargs = wiring.core_kwargs
    queue_factory = wiring.queue_factory

    realized = realize(
        graph,
        placement,
        topo=topo,
        access_router_cls=access_cls,
        access_router_kwargs=access_kwargs,
        core_router_cls=core_cls,
        core_router_kwargs=core_kwargs,
        bottleneck_queue_factory=queue_factory,
        bottleneck_bps=config.bottleneck_bps,
        interas_bps=config.interas_bps,
        edge_bps=config.edge_bps,
        delay_s=config.delay_s,
    )
    victim = topo.host(realized.victim)
    colluders = [topo.host(name) for name in realized.colluders]
    senders = list(realized.users) + list(realized.attackers)

    if registry is not None:
        for placed in senders:
            registry.register_host(placed.name, realized.as_router[placed.as_name])

    monitor = ThroughputMonitor(sim)
    link_monitor = LinkMonitor(sim, realized.bottleneck_link, interval=1.0)

    # -- end-host shims -------------------------------------------------------
    if config.system == "netfence":
        assert params is not None
        for placed in senders:
            NetFenceEndHost(sim, topo.host(placed.name), params=params)
        NetFenceEndHost(sim, victim, params=params, send_feedback_packets=True)
        for colluder in colluders:
            NetFenceEndHost(sim, colluder, params=params, send_feedback_packets=True)
    elif config.system == "tva":
        for placed in senders:
            CapabilityEndHost(sim, topo.host(placed.name))
        CapabilityEndHost(sim, victim, send_grant_packets=True)
        for colluder in colluders:
            CapabilityEndHost(sim, colluder, send_grant_packets=True)

    # -- workloads ------------------------------------------------------------
    for placed in realized.users:
        app = LongRunningTcpApp(sim, topo.host(placed.name), victim, monitor=monitor)
        app.start(at=rng.uniform(0.0, 1.0))
    for sink_host in [victim] + colluders:
        UdpSink(sim, sink_host, monitor=monitor)
    total_bots = max(placement.represented_bots, 1)
    for index, placed in enumerate(realized.attackers):
        target = colluders[index % len(colluders)] if colluders else victim
        rate = config.attack_total_bps * placed.multiplicity / total_bots
        sender = UdpSender(sim, topo.host(placed.name), target.name,
                           rate_bps=max(rate, 1.0), ptype=PacketType.REGULAR)
        sender.start(at=rng.uniform(0.0, 0.5))

    # -- run ------------------------------------------------------------------
    link_monitor.start()
    monitor.start_at(config.warmup)
    topo.run(until=config.sim_time)
    monitor.stop()
    link_monitor.stop()

    # -- collect --------------------------------------------------------------
    result = ASGraphScenarioResult(
        config=config,
        graph_fingerprint=graph.fingerprint(),
        victim_as=placement.victim_as,
        bottleneck_as=realized.bottleneck_as,
        num_attacker_hosts=len(realized.attackers),
        represented_bots=placement.represented_bots,
    )
    for placed in realized.users:
        result.user_throughputs[placed.name] = monitor.throughput_bps(placed.name)
    for placed in realized.attackers:
        result.attacker_throughputs[placed.name] = monitor.throughput_bps(placed.name)
    for as_name, router_name in realized.access_routers.items():
        router = topo.router(router_name)
        result.limiter_counts[router_name] = getattr(router, "active_rate_limiters", 0)
    result.bottleneck_queue_state = _queue_state_size(realized.bottleneck_link.queue)
    result.bottleneck_utilization = link_monitor.mean_utilization
    result.bottleneck_loss_rate = link_monitor.mean_loss_rate
    return result
