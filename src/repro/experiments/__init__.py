"""Experiment harness: one module per table / figure of the paper's evaluation.

* :mod:`repro.experiments.scenarios` — shared scenario builders (dumbbell and
  parking-lot attack scenarios for NetFence, TVA+, StopIt, and FQ).
* :mod:`repro.experiments.fig7_overhead` — per-packet processing overhead
  micro-benchmark (Fig. 7).
* :mod:`repro.experiments.fig8_unwanted` — unwanted-traffic flooding attacks
  (Fig. 8).
* :mod:`repro.experiments.fig9_colluding` — colluding regular-traffic floods,
  long-running TCP and web-like workloads (Fig. 9).
* :mod:`repro.experiments.fig10_parkinglot` — multiple bottlenecks (Fig. 10).
* :mod:`repro.experiments.fig11_onoff` — microscopic on-off attacks (Fig. 11).
* :mod:`repro.experiments.fig12_deployment` — §5 partial deployment ×
  strategic attackers (deployment-fraction sweep).
* :mod:`repro.experiments.fig13_multifeedback` — Appendix B.1 multi-bottleneck
  feedback (Fig. 13).
* :mod:`repro.experiments.fig14_inference` — Appendix B.2 rate-limiter
  inference (Fig. 14).
* :mod:`repro.experiments.sweep` — the parallel sweep engine: declarative
  ``ScenarioSpec`` grids, multiprocessing execution, on-disk result cache.
* :mod:`repro.experiments.runner` — CLI entry point that runs any experiment
  grid (``--jobs``, ``--points``, ``--json``, ``--cache``) and prints the
  paper-style table.
"""

from repro.experiments.scenarios import (
    ASGraphScenarioConfig,
    ASGraphScenarioResult,
    DumbbellScenarioConfig,
    DumbbellScenarioResult,
    ParkingLotScenarioConfig,
    ParkingLotScenarioResult,
    run_asgraph_scenario,
    run_dumbbell_scenario,
    run_parking_lot_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    SweepResult,
    derive_seed,
    merge_rows,
    register_point,
    run_sweep,
)

__all__ = [
    "ASGraphScenarioConfig",
    "ASGraphScenarioResult",
    "DumbbellScenarioConfig",
    "DumbbellScenarioResult",
    "ParkingLotScenarioConfig",
    "ParkingLotScenarioResult",
    "run_asgraph_scenario",
    "run_dumbbell_scenario",
    "run_parking_lot_scenario",
    "ScenarioSpec",
    "SweepCache",
    "SweepResult",
    "derive_seed",
    "merge_rows",
    "register_point",
    "run_sweep",
]
