"""Theorem (§3.4 / Appendix A) — the guaranteed fair-share lower bound.

NetFence guarantees any legitimate sender with sufficient demand at least
``ν·ρ·C/(G+B)`` of a bottleneck of capacity ``C`` shared by ``G`` legitimate
and ``B`` malicious senders, where ``ρ = (1-δ)³``.

This experiment checks the bound two ways:

1. with the Appendix-A fluid model (:class:`repro.analysis.AimdFluidModel`),
   pitting always-on legitimate senders against several attack strategies
   (always-on, on-off, slow-start);
2. with the packet-level simulator, reusing the Fig. 9a colluding-attack
   scenario and comparing each user's measured throughput against the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.convergence import AimdFluidModel, FluidSender, fair_share_lower_bound
from repro.experiments.scenarios import DumbbellScenarioConfig, run_dumbbell_scenario
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)


@dataclass
class TheoremRow:
    """One strategy's outcome vs. the theoretical bound."""

    model: str             # "fluid" | "packet"
    attack_strategy: str
    num_legitimate: int
    num_malicious: int
    capacity_bps: float
    bound_bps: float
    min_user_rate_bps: float
    satisfied: bool

    def as_tuple(self) -> tuple:
        return (self.model, self.attack_strategy, self.num_legitimate,
                self.num_malicious, round(self.bound_bps), round(self.min_user_rate_bps),
                self.satisfied)


def _fluid_case(strategy: str, capacity_bps: float, num_legit: int, num_bad: int,
                intervals: int) -> TheoremRow:
    def attacker_demand(strategy: str):
        if strategy == "always-on":
            return None
        if strategy == "on-off":
            return lambda i: capacity_bps if (i // 5) % 2 == 0 else 0.0
        if strategy == "slow-ramp":
            return lambda i: 1_000.0 * i
        raise ValueError(strategy)

    senders: List[FluidSender] = []
    for g in range(num_legit):
        senders.append(FluidSender(name=f"user{g}", is_legitimate=True))
    for b in range(num_bad):
        senders.append(
            FluidSender(name=f"attacker{b}", is_legitimate=False,
                        demand_fn=attacker_demand(strategy))
        )
    model = AimdFluidModel(capacity_bps, senders)
    model.run(intervals)
    # Measure over the second half (steady state), using the user's sending
    # rate which equals min(demand, rate limit) = rate limit for ν = 1.
    bound = fair_share_lower_bound(capacity_bps, num_legit, num_bad, delta=0.1, nu=1.0)
    window = intervals // 2
    min_user = min(model.average_rate(s, last_intervals=window)
                   for s in model.legitimate_senders())
    return TheoremRow(
        model="fluid",
        attack_strategy=strategy,
        num_legitimate=num_legit,
        num_malicious=num_bad,
        capacity_bps=capacity_bps,
        bound_bps=bound,
        min_user_rate_bps=min_user,
        satisfied=min_user >= bound * 0.999,
    )


@register_point("theorem_fluid")
def run_fluid_point(
    strategy: str,
    capacity_bps: float = 10e6,
    num_legitimate: int = 25,
    num_malicious: int = 75,
    intervals: int = 400,
    seed: int = 1,
) -> TheoremRow:
    """One fluid-model check; the model is deterministic so ``seed`` is unused."""
    return _fluid_case(strategy, capacity_bps, num_legitimate, num_malicious, intervals)


def run_fluid(
    capacity_bps: float = 10e6,
    num_legitimate: int = 25,
    num_malicious: int = 75,
    intervals: int = 400,
    strategies: Sequence[str] = ("always-on", "on-off", "slow-ramp"),
) -> List[TheoremRow]:
    """Check the bound in the Appendix-A fluid model for several strategies."""
    return [_fluid_case(strategy, capacity_bps, num_legitimate, num_malicious, intervals)
            for strategy in strategies]


def run_packet(
    bottleneck_bps: float = 1.2e6,
    num_source_as: int = 3,
    hosts_per_as: int = 4,
    sim_time: float = 300.0,
    warmup: float = 150.0,
    seed: int = 1,
) -> TheoremRow:
    """Check the bound in the packet-level simulator (Fig. 9a setup).

    The packet-level check uses the paper's TCP efficiency factor ν: TCP
    senders do not perfectly fill their rate limits, so the bound is scaled
    by a conservative ν = 0.5.
    """
    config = DumbbellScenarioConfig(
        system="netfence",
        num_source_as=num_source_as,
        hosts_per_as=hosts_per_as,
        bottleneck_bps=bottleneck_bps,
        workload="longrun",
        attack_type="regular",
        attack_rate_bps=1.0e6,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )
    result = run_dumbbell_scenario(config)
    num_users = len(result.user_throughputs)
    num_attackers = len(result.attacker_throughputs)
    bound = fair_share_lower_bound(bottleneck_bps, num_users, num_attackers,
                                   delta=0.1, nu=0.5)
    min_user = min(result.user_throughputs.values()) if result.user_throughputs else 0.0
    return TheoremRow(
        model="packet",
        attack_strategy="colluding-flood",
        num_legitimate=num_users,
        num_malicious=num_attackers,
        capacity_bps=bottleneck_bps,
        bound_bps=bound,
        min_user_rate_bps=min_user,
        satisfied=min_user >= bound,
    )


#: Registered under a distinct name so the grid can mix fluid and packet points.
run_packet_point = register_point("theorem_packet")(run_packet)


def grid(
    strategies: Sequence[str] = ("always-on", "on-off", "slow-ramp"),
    intervals: int = 400,
    sim_time: float = 300.0,
    warmup: float = 150.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The theorem grid: one fluid spec per strategy plus the packet check."""
    specs = [
        ScenarioSpec.make("theorem_fluid", seed=seed, strategy=strategy,
                          intervals=intervals)
        for strategy in strategies
    ]
    specs.append(ScenarioSpec.make("theorem_packet", seed=seed,
                                   sim_time=sim_time, warmup=warmup))
    return specs


def run(jobs: int = 1, cache: Optional[SweepCache] = None) -> List[TheoremRow]:
    return merge_rows(run_sweep(grid(), jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[TheoremRow]) -> str:
    lines = ["Theorem §3.4 — guaranteed fair share ν·ρ·C/(G+B)"]
    lines.append(f"{'model':8s} {'strategy':16s} {'G':>4s} {'B':>4s} "
                 f"{'bound (Kbps)':>14s} {'min user (Kbps)':>16s} {'ok':>4s}")
    for row in rows:
        lines.append(
            f"{row.model:8s} {row.attack_strategy:16s} {row.num_legitimate:4d} "
            f"{row.num_malicious:4d} {row.bound_bps / 1e3:14.1f} "
            f"{row.min_user_rate_bps / 1e3:16.1f} {'yes' if row.satisfied else 'NO':>4s}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
