"""Fig. 9 — colluding attacks (regular-packet floods to colluding receivers).

Malicious sender–receiver pairs flood the bottleneck with *authorized*
regular traffic: colluding receivers return NetFence feedback / grant TVA+
capabilities / never install StopIt filters.  Each source AS has 25 %
legitimate users and 75 % attackers; legitimate users send TCP to the victim
(long-running transfers for Fig. 9a, the web-like workload for Fig. 9b).

Metrics: the throughput ratio between the average legitimate user and the
average attacker, and Jain's fairness index across legitimate users (close
to 1 for every system).  Expected shape (paper):

* NetFence, FQ, StopIt — ratio near 1 (per-sender fairness).
* TVA+ — the lowest ratio: per-destination fair queuing gives the victim
  only ``1/(N_c+1)`` of the link, so each attacker outperforms each user by
  roughly ``G·N_c / B``.
* NetFence's bottleneck utilization stays a bit above 90 % (the 2·Ilim
  stamping hysteresis), while the others run at ~100 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    run_dumbbell_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

#: (paper x-axis label, #source ASes, hosts per AS, bottleneck bps) — the
#: per-sender fair share spans the paper's 400 Kbps → 50 Kbps range.
SCALE_STEPS: Sequence[tuple] = (
    ("25K", 5, 2, 4.0e6),
    ("50K", 5, 4, 4.0e6),
    ("100K", 10, 4, 4.0e6),
    ("200K", 10, 8, 4.0e6),
)

SYSTEMS = ("netfence", "fq", "stopit", "tva")
WORKLOADS = ("longrun", "web")


@dataclass
class Fig9Row:
    """One point of Fig. 9: a (workload, system, scale) triple."""

    workload: str
    system: str
    scale_label: str
    num_senders: int
    throughput_ratio: float
    fairness_index: float
    bottleneck_utilization: float

    def as_tuple(self) -> tuple:
        return (self.workload, self.system, self.scale_label,
                round(self.throughput_ratio, 3), round(self.fairness_index, 3),
                round(self.bottleneck_utilization, 3))


def _config_for(system: str, workload: str, num_as: int, hosts_per_as: int,
                bottleneck_bps: float, sim_time: float, warmup: float,
                seed: int) -> DumbbellScenarioConfig:
    return DumbbellScenarioConfig(
        system=system,
        num_source_as=num_as,
        hosts_per_as=hosts_per_as,
        bottleneck_bps=bottleneck_bps,
        workload=workload,
        attack_type="regular",
        attack_rate_bps=1.0e6,
        victim_blocks_attackers=False,
        num_colluders=9,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )


@register_point("fig9")
def run_point(
    system: str,
    workload: str,
    scale_label: str,
    num_as: int,
    hosts_per_as: int,
    bottleneck_bps: float,
    sim_time: float = 240.0,
    warmup: float = 120.0,
    seed: int = 1,
) -> Fig9Row:
    """Run one (workload, system, scale) point of the Fig. 9 sweep."""
    config = _config_for(system, workload, num_as, hosts_per_as, bottleneck_bps,
                         sim_time, warmup, seed)
    result = run_dumbbell_scenario(config)
    return Fig9Row(
        workload=workload,
        system=system,
        scale_label=scale_label,
        num_senders=config.num_senders,
        throughput_ratio=result.throughput_ratio,
        fairness_index=result.user_fairness_index,
        bottleneck_utilization=result.bottleneck_utilization,
    )


def grid(
    systems: Sequence[str] = SYSTEMS,
    workloads: Sequence[str] = WORKLOADS,
    scale_steps: Sequence[tuple] = SCALE_STEPS,
    sim_time: float = 240.0,
    warmup: float = 120.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The declarative Fig. 9 grid (9a: longrun, 9b: web)."""
    return [
        ScenarioSpec.make(
            "fig9", seed=seed, system=system, workload=workload, scale_label=label,
            num_as=num_as, hosts_per_as=hosts_per_as, bottleneck_bps=bottleneck,
            sim_time=sim_time, warmup=warmup,
        )
        for workload in workloads
        for label, num_as, hosts_per_as, bottleneck in scale_steps
        for system in systems
    ]


def run(
    systems: Sequence[str] = SYSTEMS,
    workloads: Sequence[str] = WORKLOADS,
    scale_steps: Sequence[tuple] = SCALE_STEPS,
    sim_time: float = 240.0,
    warmup: float = 120.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[Fig9Row]:
    """Run the Fig. 9 sweep (9a: longrun, 9b: web)."""
    specs = grid(systems=systems, workloads=workloads, scale_steps=scale_steps,
                 sim_time=sim_time, warmup=warmup, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[Fig9Row]) -> str:
    lines = ["Fig. 9 — throughput ratio (legitimate user / attacker) under colluding attacks"]
    for workload in sorted({r.workload for r in rows}):
        subset = [r for r in rows if r.workload == workload]
        scales = sorted({r.scale_label for r in subset},
                        key=lambda label: [r.num_senders for r in subset
                                           if r.scale_label == label][0])
        lines.append(f"\n({'a' if workload == 'longrun' else 'b'}) workload = {workload}")
        lines.append(f"{'system':10s}" + "".join(f"{s:>10s}" for s in scales))
        for system in sorted({r.system for r in subset}):
            cells = []
            for scale in scales:
                match = [r for r in subset if r.system == system and r.scale_label == scale]
                cells.append(f"{match[0].throughput_ratio:10.2f}" if match else f"{'-':>10s}")
            lines.append(f"{system:10s}" + "".join(cells))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
