"""Fig. 7 — per-packet processing overhead micro-benchmark.

The paper benchmarks its Linux/Click prototype on Deterlab and reports
nanoseconds per packet for request/regular packets at access and bottleneck
routers, with and without an attack, for NetFence and TVA+.  A Python
reimplementation cannot reproduce the absolute numbers; what this experiment
preserves is the *structure* of the table:

* which operations are free (bottleneck routers do nothing per packet when no
  attack is present),
* which operations cost more (access routers must validate and re-stamp
  feedback on every regular packet; attack time adds rate-limiter work),
* and that NetFence's per-packet cost is on par with TVA+'s.

Each row of the returned table measures one (packet type, router type,
attack state, system) combination by pushing synthetic packets through the
same code path the simulations use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

from repro.baselines.tva import Capability, TvaRouter, tva_queue_factory
from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.core.endhost import NetFenceEndHost
from repro.core.header import NetFenceHeader
from repro.core.params import NetFenceParams
from repro.crypto.mac import compute_mac
from repro.simulator.packet import Packet, PacketType, REQUEST_PACKET_SIZE
from repro.simulator.topology import Topology


@dataclass
class OverheadRow:
    """One row of the Fig. 7 table."""

    system: str          # "netfence" | "tva+"
    packet_type: str     # "request" | "regular"
    router_type: str     # "access" | "bottleneck"
    attack: bool
    ns_per_packet: float

    def as_tuple(self) -> tuple:
        return (self.system, self.packet_type, self.router_type, self.attack,
                round(self.ns_per_packet, 1))


class _NetFenceOverheadRig:
    """A two-router NetFence deployment driven directly (no event loop)."""

    def __init__(self, attack: bool) -> None:
        self.params = NetFenceParams()
        self.domain = NetFenceDomain(params=self.params, master=b"fig7")
        self.topo = Topology()
        sim = self.topo.clock
        self.topo.add_host("src", as_name="AS-src")
        self.topo.add_host("dst", as_name="AS-dst")
        self.access = self.topo.add_router(
            "Ra", as_name="AS-src", router_cls=NetFenceAccessRouter, domain=self.domain
        )
        self.bottleneck = self.topo.add_router(
            "Rb", as_name="AS-core", router_cls=NetFenceRouter, domain=self.domain,
            force_mon=attack,
        )
        queue_factory = netfence_queue_factory(sim, self.params)
        self.topo.add_duplex_link("src", "Ra", 1e9, 0.001)
        self.topo.add_duplex_link("Ra", "Rb", 1e9, 0.001, queue_factory=queue_factory)
        self.topo.add_duplex_link("Rb", "dst", 1e9, 0.001, queue_factory=queue_factory)
        self.topo.finalize()
        self.attack = attack
        self.out_link = self.topo.link_between("Rb", "dst")
        self.bneck_link = self.topo.link_between("Ra", "Rb")
        if attack:
            self.bottleneck.mark_overloaded(self.out_link.name)
        self.src_link = self.topo.link_between("src", "Ra")
        self.endhost = NetFenceEndHost(sim, self.topo.host("src"), params=self.params)

    # -- packet factories ---------------------------------------------------------
    def request_packet(self) -> Packet:
        packet = Packet(src="src", dst="dst", size_bytes=REQUEST_PACKET_SIZE,
                        ptype=PacketType.REQUEST, flow_id="bench", src_as="AS-src")
        packet.set_header("netfence", NetFenceHeader(priority=1))
        packet.priority = 1
        return packet

    def regular_packet(self) -> Packet:
        packet = Packet(src="src", dst="dst", size_bytes=1500,
                        ptype=PacketType.REGULAR, flow_id="bench", src_as="AS-src")
        now = self.topo.clock.now
        if self.attack:
            feedback = self.access.stamper.stamp_incr("src", "dst", self.out_link.name, now)
        else:
            feedback = self.access.stamper.stamp_nop("src", "dst", now)
        packet.set_header("netfence", NetFenceHeader(feedback=feedback))
        return packet

    # -- per-packet operations under test ----------------------------------------------
    def access_op(self, packet: Packet) -> None:
        self.access.admit_from_host(packet, self.src_link)

    def bottleneck_op(self, packet: Packet) -> None:
        self.bottleneck.before_enqueue(packet, self.out_link)


class _TvaOverheadRig:
    """The equivalent rig for the TVA+ baseline."""

    def __init__(self, attack: bool) -> None:
        self.topo = Topology()
        sim = self.topo.clock
        self.topo.add_host("src", as_name="AS-src")
        self.topo.add_host("dst", as_name="AS-dst")
        self.access = self.topo.add_router("Ra", as_name="AS-src", router_cls=TvaRouter)
        self.core = self.topo.add_router("Rb", as_name="AS-core", router_cls=TvaRouter)
        self.topo.add_duplex_link("src", "Ra", 1e9, 0.001)
        self.topo.add_duplex_link("Ra", "Rb", 1e9, 0.001,
                                  queue_factory=tva_queue_factory(sim))
        self.topo.add_duplex_link("Rb", "dst", 1e9, 0.001)
        self.topo.finalize()
        self.attack = attack
        self.src_link = self.topo.link_between("src", "Ra")
        self.out_link = self.topo.link_between("Rb", "dst")
        secret = b"tva-bench"
        self.capability = Capability(
            sender="src", receiver="dst", token=compute_mac(secret, "src", "dst")
        )

    def request_packet(self) -> Packet:
        return Packet(src="src", dst="dst", size_bytes=REQUEST_PACKET_SIZE,
                      ptype=PacketType.REQUEST, flow_id="bench", src_as="AS-src")

    def regular_packet(self) -> Packet:
        packet = Packet(src="src", dst="dst", size_bytes=1500,
                        ptype=PacketType.REGULAR, flow_id="bench", src_as="AS-src")
        packet.set_header("tva", self.capability)
        return packet

    def access_op(self, packet: Packet) -> None:
        self.access.admit_from_host(packet, self.src_link)
        # TVA+ access routers also validate the capability MAC per packet.
        cap = packet.get_header("tva")
        if cap is not None:
            compute_mac(b"tva-bench", cap.sender, cap.receiver)

    def bottleneck_op(self, packet: Packet) -> None:
        self.core.on_transit(packet, None)
        self.core.before_enqueue(packet, self.out_link)


def _time_operation(make_packet: Callable[[], Packet],
                    operation: Callable[[Packet], None],
                    iterations: int) -> float:
    """Average wall-clock nanoseconds per operation."""
    packets = [make_packet() for _ in range(iterations)]
    # Fig. 7 *measures* real per-operation wall time (header/MAC processing
    # cost, §6.2) — the one experiment where wall-clock reads are the point.
    start = time.perf_counter()  # nf: disable=NF002
    for packet in packets:
        operation(packet)
    elapsed = time.perf_counter() - start  # nf: disable=NF002
    return elapsed / iterations * 1e9


@register_point("fig7")
def run_point(attack: bool, iterations: int = 2000, seed: int = 1) -> List[OverheadRow]:
    """Measure every (system, packet, router) combination for one attack state.

    The micro-benchmark is deterministic apart from wall-clock noise; ``seed``
    is accepted for sweep-engine uniformity but unused.  Because the rows are
    wall-clock *measurements*, run them serially (``--jobs 1``) and uncached
    when the absolute ns/pkt numbers matter: concurrent simulation workers
    inflate them and a cache replays numbers from a different machine/load.
    """
    rows: List[OverheadRow] = []
    nf = _NetFenceOverheadRig(attack)
    rows.append(OverheadRow("netfence", "request", "bottleneck", attack,
                            _time_operation(nf.request_packet, nf.bottleneck_op, iterations)))
    rows.append(OverheadRow("netfence", "request", "access", attack,
                            _time_operation(nf.request_packet, nf.access_op, iterations)))
    rows.append(OverheadRow("netfence", "regular", "bottleneck", attack,
                            _time_operation(nf.regular_packet, nf.bottleneck_op, iterations)))
    rows.append(OverheadRow("netfence", "regular", "access", attack,
                            _time_operation(nf.regular_packet, nf.access_op, iterations)))
    tva = _TvaOverheadRig(attack)
    rows.append(OverheadRow("tva+", "request", "bottleneck", attack,
                            _time_operation(tva.request_packet, tva.bottleneck_op, iterations)))
    rows.append(OverheadRow("tva+", "regular", "access", attack,
                            _time_operation(tva.regular_packet, tva.access_op, iterations)))
    return rows


def grid(iterations: int = 2000, seed: int = 1) -> List[ScenarioSpec]:
    """The Fig. 7 grid: one spec per attack state."""
    return [ScenarioSpec.make("fig7", seed=seed, attack=attack, iterations=iterations)
            for attack in (False, True)]


def run(
    iterations: int = 2000,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[OverheadRow]:
    """Produce the Fig. 7 table (one row per combination)."""
    return merge_rows(run_sweep(grid(iterations=iterations, seed=seed),
                                jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[OverheadRow]) -> str:
    lines = ["Fig. 7 — router processing overhead (ns/pkt, Python reimplementation)"]
    lines.append(f"{'system':10s} {'packet':8s} {'router':11s} {'attack':7s} {'ns/pkt':>10s}")
    for row in rows:
        lines.append(
            f"{row.system:10s} {row.packet_type:8s} {row.router_type:11s} "
            f"{'yes' if row.attack else 'no':7s} {row.ns_per_packet:10.1f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
