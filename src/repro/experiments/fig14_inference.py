"""Fig. 14 — Appendix B.2: inferring on-path rate limiters.

Identical workload and topology to Fig. 10, but the access router keeps a
per-destination cache of previously seen bottleneck links and polices each
packet through all of them, inferring the state of the links whose feedback
the packet does not carry (``hasIncr*`` / ``isActive*``).  The paper shows
this narrows the user/attacker gap of Fig. 10's ``C_L1 < C_L2`` case, but
Group-A senders can still end up below their fair share — the single
feedback in the packet simply cannot carry enough information (the
fundamental limitation discussed at the end of Appendix B.2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.fig10_parkinglot import (
    CAPACITY_CASES,
    ParkingLotRow,
    format_table,
    grid as grid_parkinglot,
    run as run_parkinglot,
)
from repro.experiments.sweep import ScenarioSpec, SweepCache


def grid(
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    return grid_parkinglot(
        policy="inference",
        capacity_cases=capacity_cases,
        hosts_per_group=hosts_per_group,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
    )


def run(
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[ParkingLotRow]:
    return run_parkinglot(
        policy="inference",
        capacity_cases=capacity_cases,
        hosts_per_group=hosts_per_group,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
        jobs=jobs,
        cache=cache,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run(), figure="Fig. 14 (Appendix B.2, rate-limiter inference)"))


if __name__ == "__main__":  # pragma: no cover
    main()
