"""Fig. 10 — colluding attacks across multiple bottlenecks (parking lot).

Three sender groups share two bottleneck links in series: Group A crosses
both L1 and L2, Group B only L2, Group C only L1.  Every group is 75 %
attackers / 25 % long-running TCP users.  The paper reports the average
throughput of Group-A users and Group-A attackers for three capacity pairs:

* (160M, 160M) and (240M, 160M): Group-A senders obtain roughly their
  80 Kbps max-min fair share;
* (160M, 240M) — i.e. ``C_L1 < C_L2``: Group-A senders fall well below their
  fair share and the TCP users fall below the UDP attackers, because a flow's
  single rate limiter keeps switching between the two bottlenecks (§4.3.5).

The same module powers Fig. 13 (Appendix B.1 multi-bottleneck feedback) and
Fig. 14 (Appendix B.2 rate-limiter inference) by selecting a different
policing policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    ParkingLotScenarioConfig,
    run_parking_lot_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

#: (paper label, L1 bps, L2 bps) — scaled from the paper's 160/240 Mbps so
#: that a Group-A sender's max-min fair share stays at 80 Kbps.
CAPACITY_CASES: Sequence[tuple] = (
    ("160M-160M", 1.6e6, 1.6e6),
    ("240M-160M", 2.4e6, 1.6e6),
    ("160M-240M", 1.6e6, 2.4e6),
)


@dataclass
class ParkingLotRow:
    """One bar pair of Fig. 10/13/14."""

    policy: str
    case_label: str
    group_a_user_kbps: float
    group_a_attacker_kbps: float
    fair_share_kbps: float

    def as_tuple(self) -> tuple:
        return (self.policy, self.case_label,
                round(self.group_a_user_kbps, 1),
                round(self.group_a_attacker_kbps, 1),
                round(self.fair_share_kbps, 1))


@register_point("fig10")
def run_point(
    policy: str,
    case_label: str,
    l1_bps: float,
    l2_bps: float,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> ParkingLotRow:
    """Run one (policy, capacity case) point of the parking-lot sweep."""
    config = ParkingLotScenarioConfig(
        l1_bps=l1_bps,
        l2_bps=l2_bps,
        hosts_per_group=hosts_per_group,
        sim_time=sim_time,
        warmup=warmup,
        seed=seed,
        netfence_policy=policy,
        attack_rate_bps=400e3,
    )
    result = run_parking_lot_scenario(config)
    return ParkingLotRow(
        policy=policy,
        case_label=case_label,
        group_a_user_kbps=result.avg_user("A") / 1e3,
        group_a_attacker_kbps=result.avg_attacker("A") / 1e3,
        fair_share_kbps=config.fair_share_bps / 1e3,
    )


def grid(
    policy: str = "single",
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The declarative parking-lot grid: one spec per capacity case."""
    return [
        ScenarioSpec.make(
            "fig10", seed=seed, policy=policy, case_label=label, l1_bps=l1, l2_bps=l2,
            hosts_per_group=hosts_per_group, sim_time=sim_time, warmup=warmup,
        )
        for label, l1, l2 in capacity_cases
    ]


def run(
    policy: str = "single",
    capacity_cases: Sequence[tuple] = CAPACITY_CASES,
    hosts_per_group: int = 10,
    sim_time: float = 200.0,
    warmup: float = 100.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[ParkingLotRow]:
    """Run the parking-lot sweep for one policing policy."""
    specs = grid(policy=policy, capacity_cases=capacity_cases,
                 hosts_per_group=hosts_per_group, sim_time=sim_time,
                 warmup=warmup, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[ParkingLotRow], figure: str = "Fig. 10") -> str:
    lines = [f"{figure} — Group-A average throughput (Kbps) in the parking-lot topology"]
    lines.append(f"{'case':12s} {'A user':>10s} {'A attacker':>12s} {'fair share':>12s}")
    for row in rows:
        lines.append(
            f"{row.case_label:12s} {row.group_a_user_kbps:10.1f} "
            f"{row.group_a_attacker_kbps:12.1f} {row.fair_share_kbps:12.1f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run(policy="single")))


if __name__ == "__main__":  # pragma: no cover
    main()
