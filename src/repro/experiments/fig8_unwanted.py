"""Fig. 8 — unwanted traffic flooding attacks.

Attackers flood the victim directly; the victim can identify the attack
traffic and uses each system's own mechanism to suppress it (feedback
withholding in NetFence, capability denial in TVA+, filters in StopIt,
nothing in FQ).  Legitimate users repeatedly transfer a 20 KB file to the
victim; the metric is the average transfer completion time (and the
completion ratio, which is 100 % for all protected systems).

The paper's most-effective attack is the request-packet flood for NetFence
and TVA+, and a plain regular-packet flood for StopIt (filtered near the
source) and FQ (no defense).

The paper sweeps 25 K–200 K senders over a 10 Gbps bottleneck by shrinking
the bottleneck; we shrink both, keeping the per-sender fair share in the
same 50–400 Kbps range.  ``SCALE_STEPS`` lists the (label, #senders,
bottleneck) points reported, mirroring the paper's x-axis labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.experiments.scenarios import (
    DumbbellScenarioConfig,
    DumbbellScenarioResult,
    run_dumbbell_scenario,
)
from repro.experiments.sweep import (
    ScenarioSpec,
    SweepCache,
    merge_rows,
    register_point,
    run_sweep,
)

#: (paper x-axis label, number of source ASes, hosts per AS, bottleneck bps).
#: The per-sender fair share halves from step to step exactly as in the
#: paper's 25K -> 200K sweep (400 Kbps down to 50 Kbps).
SCALE_STEPS: Sequence[tuple] = (
    ("25K", 5, 2, 4.0e6),
    ("50K", 5, 4, 4.0e6),
    ("100K", 10, 4, 4.0e6),
    ("200K", 10, 8, 4.0e6),
)

SYSTEMS = ("fq", "netfence", "tva", "stopit")


@dataclass
class Fig8Row:
    """One point of Fig. 8: a (system, scale) pair."""

    system: str
    scale_label: str
    num_senders: int
    fair_share_bps: float
    avg_transfer_time_s: float
    completion_ratio: float

    def as_tuple(self) -> tuple:
        return (self.system, self.scale_label, self.num_senders,
                round(self.avg_transfer_time_s, 3), round(self.completion_ratio, 3))


def _config_for(system: str, label: str, num_as: int, hosts_per_as: int,
                bottleneck_bps: float, sim_time: float, seed: int) -> DumbbellScenarioConfig:
    attack_type = "request" if system in ("netfence", "tva") else "regular"
    return DumbbellScenarioConfig(
        system=system,
        num_source_as=num_as,
        hosts_per_as=hosts_per_as,
        legit_per_as=1,
        bottleneck_bps=bottleneck_bps,
        workload="files",
        file_bytes=20_000,
        attack_type=attack_type,
        attack_rate_bps=400e3,
        victim_blocks_attackers=True,
        num_colluders=0,
        sim_time=sim_time,
        warmup=0.0,
        seed=seed,
    )


@register_point("fig8")
def run_point(
    system: str,
    scale_label: str,
    num_as: int,
    hosts_per_as: int,
    bottleneck_bps: float,
    sim_time: float = 60.0,
    seed: int = 1,
) -> Fig8Row:
    """Run one (system, scale) point of the Fig. 8 sweep."""
    config = _config_for(system, scale_label, num_as, hosts_per_as, bottleneck_bps,
                         sim_time, seed)
    result = run_dumbbell_scenario(config)
    return Fig8Row(
        system=system,
        scale_label=scale_label,
        num_senders=config.num_senders,
        fair_share_bps=config.fair_share_bps,
        avg_transfer_time_s=result.average_transfer_time,
        completion_ratio=result.completion_ratio,
    )


def grid(
    systems: Sequence[str] = SYSTEMS,
    scale_steps: Sequence[tuple] = SCALE_STEPS,
    sim_time: float = 60.0,
    seed: int = 1,
) -> List[ScenarioSpec]:
    """The declarative Fig. 8 grid: one spec per (scale, system) point."""
    return [
        ScenarioSpec.make(
            "fig8", seed=seed, system=system, scale_label=label, num_as=num_as,
            hosts_per_as=hosts_per_as, bottleneck_bps=bottleneck, sim_time=sim_time,
        )
        for label, num_as, hosts_per_as, bottleneck in scale_steps
        for system in systems
    ]


def run(
    systems: Sequence[str] = SYSTEMS,
    scale_steps: Sequence[tuple] = SCALE_STEPS,
    sim_time: float = 60.0,
    seed: int = 1,
    jobs: int = 1,
    cache: Optional[SweepCache] = None,
) -> List[Fig8Row]:
    """Run the Fig. 8 sweep and return one row per (system, scale) point."""
    specs = grid(systems=systems, scale_steps=scale_steps, sim_time=sim_time, seed=seed)
    return merge_rows(run_sweep(specs, jobs=jobs, cache=cache, strict=True))


def format_table(rows: List[Fig8Row]) -> str:
    lines = ["Fig. 8 — average 20 KB transfer time (s) under unwanted-traffic floods"]
    scales = sorted({row.scale_label for row in rows},
                    key=lambda label: [r.num_senders for r in rows if r.scale_label == label][0])
    systems = sorted({row.system for row in rows})
    header = f"{'system':10s}" + "".join(f"{scale:>10s}" for scale in scales)
    lines.append(header)
    for system in systems:
        cells = []
        for scale in scales:
            match = [r for r in rows if r.system == system and r.scale_label == scale]
            cells.append(f"{match[0].avg_transfer_time_s:10.2f}" if match else f"{'-':>10s}")
        lines.append(f"{system:10s}" + "".join(cells))
    completion = min(row.completion_ratio for row in rows) if rows else 0.0
    lines.append(f"minimum completion ratio across all runs: {completion:.2f}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_table(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
