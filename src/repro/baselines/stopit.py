"""StopIt baseline: victim-installed filters plus hierarchical fair queuing.

StopIt [27] lets a DoS victim install network filters that block unwanted
(source, destination) pairs at the *source's* access router — the attack
traffic is removed near its origin, which is why StopIt has the best transfer
times in Fig. 8.  When receivers fail to install filters (the colluding
attacks of Fig. 9), StopIt falls back to two-level hierarchical fair queuing
(source AS, then source address) at congested links, which behaves like
per-sender fair queuing.

The filter-request protocol (closed-loop StopIt servers, authenticated filter
requests) is abstracted into a :class:`FilterRegistry` with a configurable
installation delay; its security properties are orthogonal to the congestion
behaviour the experiments measure.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.simulator.engine import Simulator
from repro.simulator.fairqueue import (
    HierarchicalFairQueue,
    per_sender_key,
    per_source_as_key,
)
from repro.simulator.link import Link
from repro.simulator.node import Router
from repro.simulator.packet import Packet
from repro.baselines.common import ChannelQueue


class FilterRegistry:
    """Distributes victim-requested filters to the senders' access routers."""

    def __init__(self, sim: Simulator, install_delay_s: float = 0.1) -> None:
        self.sim = sim
        self.install_delay_s = install_delay_s
        self._routers: Dict[str, "StopItAccessRouter"] = {}
        self._host_to_router: Dict[str, str] = {}
        self.filters_requested = 0

    def register_router(self, router: "StopItAccessRouter") -> None:
        self._routers[router.name] = router

    def register_host(self, host_name: str, router_name: str) -> None:
        self._host_to_router[host_name] = router_name

    def install_filter(self, src: str, dst: str) -> None:
        """Victim ``dst`` asks to block traffic from ``src``."""
        self.filters_requested += 1
        router_name = self._host_to_router.get(src)
        if router_name is None:
            return
        router = self._routers.get(router_name)
        if router is None:
            return
        self.sim.schedule(self.install_delay_s, router.add_filter, src, dst)


class StopItAccessRouter(Router):
    """An access router that enforces victim-installed (src, dst) filters."""

    def __init__(self, sim: Simulator, name: str, as_name: Optional[str] = None,
                 registry: Optional[FilterRegistry] = None) -> None:
        super().__init__(sim, name, as_name=as_name)
        self.filters: Set[Tuple[str, str]] = set()
        self.filtered_packets = 0
        if registry is not None:
            registry.register_router(self)

    def add_filter(self, src: str, dst: str) -> None:
        self.filters.add((src, dst))

    def remove_filter(self, src: str, dst: str) -> None:
        self.filters.discard((src, dst))

    def admit_from_host(self, packet: Packet, from_link: Optional[Link]) -> Optional[bool]:
        if (packet.src, packet.dst) in self.filters:
            self.filtered_packets += 1
            return False
        return True


def stopit_queue_factory(sim: Simulator) -> Callable[[float], ChannelQueue]:
    """Link queues for StopIt routers: hierarchical FQ on both channels."""

    def factory(capacity_bps: float) -> ChannelQueue:
        qlim_bytes = max(int(0.2 * capacity_bps / 8), 3_000)
        request_queue = HierarchicalFairQueue(
            level1_key=per_source_as_key,
            level2_key=per_sender_key,
            quantum_bytes=92,
            per_flow_capacity_bytes=4 * 1500,
        )
        regular_queue = HierarchicalFairQueue(
            level1_key=per_source_as_key,
            level2_key=per_sender_key,
            quantum_bytes=1500,
            per_flow_capacity_bytes=max(qlim_bytes // 4, 8 * 1500),
        )
        return ChannelQueue(
            sim,
            capacity_bps,
            request_queue=request_queue,
            regular_queue=regular_queue,
        )

    return factory
