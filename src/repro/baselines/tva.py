"""TVA+ baseline: network capabilities plus hierarchical / per-destination FQ.

TVA+ [47] (with the improvements of [27]) works as follows:

* A sender without a capability sends **request packets**.  Congested links
  schedule request packets with two-level hierarchical fair queuing — first
  by source AS, then by source address — inside a channel capped at 5 % of
  the link.
* The **receiver** decides whether to authorize the sender; if so it returns
  a capability, which the sender attaches to subsequent regular packets.
* Regular packets without a valid capability are demoted back to the request
  channel.
* To contain authorized-traffic floods from colluding (or careless)
  receivers, congested links apply **per-destination fair queuing** to the
  regular channel — which is exactly why a handful of colluders can squeeze a
  victim's share down to ``1/(N_c + 1)`` of the link (§6.3.2).

Capabilities here are modelled as per-(sender, receiver) MAC tokens granted
by the receiver's end-host shim.  Expiration and the per-flow capability
caching of the full TVA design are not modelled; the paper's own comparison
(Fig. 7) excludes capability caching as well because it needs per-flow router
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set

from repro.crypto.mac import compute_mac, mac_equal
from repro.simulator.engine import PeriodicTimer, Simulator
from repro.simulator.fairqueue import (
    DRRQueue,
    HierarchicalFairQueue,
    per_destination_key,
    per_sender_key,
    per_source_as_key,
)
from repro.simulator.link import Link
from repro.simulator.node import Host, Router
from repro.simulator.packet import Packet, PacketType
from repro.baselines.common import ChannelQueue

#: Header key for the capability carried by regular packets.
CAP_KEY = "tva"
#: Header key for a capability grant returned by the receiver.
GRANT_KEY = "tva_grant"

GRANT_PACKET_SIZE = 68


@dataclass
class Capability:
    """An authorization token for a (sender, receiver) pair."""

    sender: str
    receiver: str
    token: bytes

    def matches(self, packet: Packet) -> bool:
        return packet.src == self.sender and packet.dst == self.receiver


class CapabilityEndHost:
    """The TVA+ end-host shim: request/grant/attach capabilities.

    ``grant_policy`` decides which peers the host authorizes (the victim in
    Fig. 8 refuses attackers; colluders in Fig. 9 authorize everyone).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        grant_policy: Optional[Callable[[str], bool]] = None,
        send_grant_packets: bool = False,
        grant_packet_interval: float = 0.2,
        secret: Optional[bytes] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.grant_policy = grant_policy or (lambda peer: True)
        self.secret = secret or f"tva-secret:{host.name}".encode()
        self.capabilities: Dict[str, Capability] = {}  # peer -> capability we hold
        self._pending_grants: Set[str] = set()
        self.grants_issued = 0

        host.outbound_filters.append(self._outbound)
        host.inbound_filters.append(self._inbound)

        self._grant_timer: Optional[PeriodicTimer] = None
        if send_grant_packets:
            self._grant_timer = PeriodicTimer(sim, grant_packet_interval, self._emit_grants)
            self._grant_timer.start()

    # -- outbound -----------------------------------------------------------------
    def _outbound(self, packet: Packet) -> Optional[bool]:
        if packet.is_legacy:
            return True
        capability = self.capabilities.get(packet.dst)
        if capability is not None:
            packet.ptype = PacketType.REGULAR
            packet.set_header(CAP_KEY, capability)
        else:
            packet.ptype = PacketType.REQUEST
        if packet.dst in self._pending_grants and self.grant_policy(packet.dst):
            packet.set_header(GRANT_KEY, self._make_grant(packet.dst))
            self._pending_grants.discard(packet.dst)
        return True

    # -- inbound ------------------------------------------------------------------
    def _inbound(self, packet: Packet) -> Optional[bool]:
        grant: Optional[Capability] = packet.get_header(GRANT_KEY)
        if grant is not None and grant.sender == self.host.name:
            self.capabilities[grant.receiver] = grant
        if packet.is_request or packet.get_header(CAP_KEY) is not None:
            # Seeing traffic from a peer means it wants (continued) authorization.
            if self.grant_policy(packet.src):
                self._pending_grants.add(packet.src)
        if packet.protocol == "tva-grant":
            return False
        return True

    # -- grants -------------------------------------------------------------------
    def _make_grant(self, peer: str) -> Capability:
        self.grants_issued += 1
        token = compute_mac(self.secret, peer, self.host.name)
        return Capability(sender=peer, receiver=self.host.name, token=token)

    def _emit_grants(self) -> None:
        for peer in list(self._pending_grants):
            if not self.grant_policy(peer):
                self._pending_grants.discard(peer)
                continue
            packet = Packet(
                src=self.host.name,
                dst=peer,
                size_bytes=GRANT_PACKET_SIZE,
                ptype=PacketType.REGULAR,
                flow_id=f"grant:{self.host.name}->{peer}",
                protocol="tva-grant",
            )
            packet.set_header(GRANT_KEY, self._make_grant(peer))
            self._pending_grants.discard(peer)
            self.host.send(packet)

    def verify(self, capability: Capability) -> bool:
        expected = compute_mac(self.secret, capability.sender, capability.receiver)
        return mac_equal(capability.token, expected)

    def stop(self) -> None:
        if self._grant_timer is not None:
            self._grant_timer.stop()


class TvaRouter(Router):
    """A TVA+ router: demotes capability-less regular packets to requests.

    The queuing disciplines (hierarchical FQ on requests, per-destination FQ
    on the regular channel) live in the link queues built by
    :func:`tva_queue_factory`.
    """

    def admit_from_host(self, packet: Packet, from_link: Optional[Link]) -> Optional[bool]:
        if packet.is_legacy:
            return True
        if packet.is_regular and packet.get_header(CAP_KEY) is None:
            packet.ptype = PacketType.REQUEST
        return True

    def on_transit(self, packet: Packet, from_link: Optional[Link]) -> bool:
        if packet.is_regular:
            capability: Optional[Capability] = packet.get_header(CAP_KEY)
            if capability is None or not capability.matches(packet):
                packet.ptype = PacketType.REQUEST
        return True


def tva_queue_factory(sim: Simulator) -> Callable[[float], ChannelQueue]:
    """Link queues for TVA+ routers.

    Request channel: two-level hierarchical DRR (source AS, then source).
    Regular channel: per-destination DRR.
    """

    def factory(capacity_bps: float) -> ChannelQueue:
        qlim_bytes = max(int(0.2 * capacity_bps / 8), 3_000)
        # Request packets are normally 92 B, but senders without capabilities
        # may push full-size packets onto the request channel, so each
        # per-sender bucket must hold at least a few of them.
        request_queue = HierarchicalFairQueue(
            level1_key=per_source_as_key,
            level2_key=per_sender_key,
            quantum_bytes=92,
            per_flow_capacity_bytes=4 * 1500,
        )
        regular_queue = DRRQueue(
            key_fn=per_destination_key,
            per_flow_capacity_bytes=max(qlim_bytes // 4, 6 * 1500),
        )
        return ChannelQueue(
            sim,
            capacity_bps,
            request_queue=request_queue,
            regular_queue=regular_queue,
        )

    return factory
