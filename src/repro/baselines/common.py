"""Shared plumbing for the baseline systems.

:class:`ChannelQueue` mirrors the three-channel structure of a NetFence /
TVA+ router output port — a bandwidth-capped request channel, a regular
channel, and a low-priority legacy channel — but lets each baseline plug in
its own inner queue disciplines (hierarchical fair queuing, per-destination
DRR, ...).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, PacketQueue

#: Builds an inner queue given the byte capacity suggested for it.
InnerQueueFactory = Callable[[int], PacketQueue]

REQUEST_PACKET_COST = 92.0


class ChannelQueue(PacketQueue):
    """Request / regular / legacy channels with a rate-capped request channel."""

    def __init__(
        self,
        sim: Simulator,
        capacity_bps: float,
        request_queue: PacketQueue,
        regular_queue: PacketQueue,
        legacy_queue: Optional[PacketQueue] = None,
        request_fraction: float = 0.05,
        queue_limit_seconds: float = 0.2,
    ) -> None:
        super().__init__()
        self.sim = sim
        self.capacity_bps = capacity_bps
        self.request_fraction = request_fraction
        self.request_queue = request_queue
        self.regular_queue = regular_queue
        qlim_bytes = max(int(queue_limit_seconds * capacity_bps / 8), 3_000)
        self.legacy_queue = legacy_queue or DropTailQueue(capacity_bytes=max(qlim_bytes // 4, 3_000))
        self._request_budget = 0.0
        self._request_budget_max = max(qlim_bytes * request_fraction, 1_500)
        self._budget_updated = sim.now
        for queue in (self.request_queue, self.regular_queue, self.legacy_queue):
            queue.drop_callback = self._inner_drop

    def _inner_drop(self, packet: Packet, reason: str = "tail") -> None:
        self.stats.record_drop(packet, reason)
        if self.drop_callback is not None:
            self.drop_callback(packet, reason)

    def _refill_budget(self) -> None:
        now = self.sim.now
        elapsed = now - self._budget_updated
        if elapsed > 0:
            rate = self.request_fraction * self.capacity_bps / 8.0
            self._request_budget = min(
                self._request_budget_max, self._request_budget + elapsed * rate
            )
            self._budget_updated = now

    def enqueue(self, packet: Packet) -> bool:
        if packet.is_request:
            queue: PacketQueue = self.request_queue
        elif packet.is_regular:
            queue = self.regular_queue
        else:
            queue = self.legacy_queue
        accepted = queue.enqueue(packet)
        if accepted:
            self.stats.record_enqueue(packet)
        return accepted

    def dequeue(self) -> Optional[Packet]:
        self._refill_budget()
        if len(self.request_queue) and self._request_budget >= REQUEST_PACKET_COST:
            packet = self.request_queue.dequeue()
            if packet is not None:
                self._request_budget -= packet.size_bytes
                self.stats.record_dequeue(packet)
                return packet
        packet = self.regular_queue.dequeue()
        if packet is None:
            packet = self.legacy_queue.dequeue()
        if packet is not None:
            self.stats.record_dequeue(packet)
        return packet

    def time_until_ready(self) -> Optional[float]:
        if not len(self.request_queue):
            return None
        self._refill_budget()
        deficit = REQUEST_PACKET_COST - self._request_budget
        if deficit <= 0:
            return 1e-6
        rate = self.request_fraction * self.capacity_bps / 8.0
        return deficit / rate

    def __len__(self) -> int:
        return len(self.request_queue) + len(self.regular_queue) + len(self.legacy_queue)

    @property
    def byte_length(self) -> int:
        return (
            self.request_queue.byte_length
            + self.regular_queue.byte_length
            + self.legacy_queue.byte_length
        )


def channel_queue_factory(
    sim: Simulator,
    request_factory: InnerQueueFactory,
    regular_factory: InnerQueueFactory,
    request_fraction: float = 0.05,
    queue_limit_seconds: float = 0.2,
) -> Callable[[float], ChannelQueue]:
    """Build a topology queue factory from inner-queue factories."""

    def factory(capacity_bps: float) -> ChannelQueue:
        qlim_bytes = max(int(queue_limit_seconds * capacity_bps / 8), 3_000)
        return ChannelQueue(
            sim,
            capacity_bps,
            request_queue=request_factory(max(int(qlim_bytes * request_fraction), 2_000)),
            regular_queue=regular_factory(qlim_bytes),
            request_fraction=request_fraction,
            queue_limit_seconds=queue_limit_seconds,
        )

    return factory
