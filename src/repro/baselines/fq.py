"""Per-sender fair queuing baseline (§6.3, "FQ").

FQ represents defenses that throttle attack traffic to its fair share by
installing per-sender Deficit Round Robin queues at every link.  There is no
capability or filter machinery: every packet is forwarded, and the fairness
comes entirely from the link schedulers.
"""

from __future__ import annotations

from typing import Callable

from repro.simulator.fairqueue import DRRQueue, per_sender_key
from repro.simulator.node import Router


class FairQueueRouter(Router):
    """A plain forwarding router; fairness lives in the link queues."""


def fq_queue_factory(
    per_flow_capacity_bytes: int = 30 * 1500,
    quantum_bytes: int = 1500,
) -> Callable[[float], DRRQueue]:
    """Per-sender DRR queues for every link of the FQ baseline."""

    def factory(capacity_bps: float) -> DRRQueue:
        # Size each sender's queue like a share of the paper's 0.2 s Qlim,
        # bounded below so TCP always has room for a small window.
        qlim_bytes = max(int(0.2 * capacity_bps / 8), 3_000)
        per_flow = max(min(per_flow_capacity_bytes, qlim_bytes), 2 * 1500)
        return DRRQueue(
            key_fn=per_sender_key,
            quantum_bytes=quantum_bytes,
            per_flow_capacity_bytes=per_flow,
        )

    return factory
