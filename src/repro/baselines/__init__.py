"""Baseline DoS defense systems the paper compares against (§6.3).

* :mod:`repro.baselines.fq` — per-sender fair queuing (DRR) at every link.
* :mod:`repro.baselines.tva` — TVA+ [27, 47]: network capabilities, a
  hierarchically fair-queued request channel, and per-destination fair
  queuing on the regular channel.
* :mod:`repro.baselines.stopit` — StopIt [27]: victim-installed source
  filters with hierarchical fair queuing as the fallback.
"""

from repro.baselines.common import ChannelQueue, channel_queue_factory
from repro.baselines.fq import FairQueueRouter, fq_queue_factory
from repro.baselines.tva import CapabilityEndHost, TvaRouter, tva_queue_factory
from repro.baselines.stopit import FilterRegistry, StopItAccessRouter, stopit_queue_factory

__all__ = [
    "ChannelQueue",
    "channel_queue_factory",
    "FairQueueRouter",
    "fq_queue_factory",
    "CapabilityEndHost",
    "TvaRouter",
    "tva_queue_factory",
    "FilterRegistry",
    "StopItAccessRouter",
    "stopit_queue_factory",
]
