"""Baseline DoS defense systems the paper compares against (§6.3).

* :mod:`repro.baselines.fq` — per-sender fair queuing (DRR) at every link.
* :mod:`repro.baselines.tva` — TVA+ [27, 47]: network capabilities, a
  hierarchically fair-queued request channel, and per-destination fair
  queuing on the regular channel.
* :mod:`repro.baselines.stopit` — StopIt [27]: victim-installed source
  filters with hierarchical fair queuing as the fallback.
"""

from dataclasses import dataclass, field
from typing import Callable, Optional, Type

from repro.baselines.common import ChannelQueue, channel_queue_factory
from repro.baselines.fq import FairQueueRouter, fq_queue_factory
from repro.baselines.tva import CapabilityEndHost, TvaRouter, tva_queue_factory
from repro.baselines.stopit import FilterRegistry, StopItAccessRouter, stopit_queue_factory
from repro.simulator.engine import Simulator
from repro.simulator.node import Router

__all__ = [
    "BaselineWiring",
    "ChannelQueue",
    "baseline_wiring",
    "channel_queue_factory",
    "FairQueueRouter",
    "fq_queue_factory",
    "CapabilityEndHost",
    "TvaRouter",
    "tva_queue_factory",
    "FilterRegistry",
    "StopItAccessRouter",
    "stopit_queue_factory",
]


@dataclass
class BaselineWiring:
    """Router classes and queue factory for one baseline defense system.

    Shared by every scenario family (dumbbell, parking lot, AS graph) so
    the per-system ``if``-chains live in exactly one place.  ``registry``
    is only set for StopIt; scenario builders must register each (host,
    access router) pair with it.
    """

    access_cls: Type[Router] = Router
    core_cls: Type[Router] = Router
    access_kwargs: dict = field(default_factory=dict)
    core_kwargs: dict = field(default_factory=dict)
    queue_factory: Optional[Callable] = None
    registry: Optional[FilterRegistry] = None


def baseline_wiring(system: str, sim: Simulator) -> BaselineWiring:
    """The router/queue wiring of one baseline (``tva``/``stopit``/``fq``)."""
    if system == "tva":
        return BaselineWiring(access_cls=TvaRouter, core_cls=TvaRouter,
                              queue_factory=tva_queue_factory(sim))
    if system == "stopit":
        registry = FilterRegistry(sim)
        return BaselineWiring(access_cls=StopItAccessRouter,
                              access_kwargs={"registry": registry},
                              queue_factory=stopit_queue_factory(sim),
                              registry=registry)
    if system == "fq":
        return BaselineWiring(queue_factory=fq_queue_factory())
    raise ValueError(f"unknown baseline system {system!r}")
