"""End-to-end integration tests of the NetFence closed loop.

These exercise the whole stack (end hosts, access routers, bottleneck
routers, feedback, AIMD) on the small four-host network from conftest.
"""


from repro.simulator.trace import ThroughputMonitor
from repro.transport.traffic import FileTransferApp, LongRunningTcpApp
from repro.transport.udp import UdpSender, UdpSink


def test_tcp_works_through_netfence_without_attack(small_network):
    net = small_network
    monitor = ThroughputMonitor(net.clock, start_time=10.0)
    app = LongRunningTcpApp(net.clock, net.topo.host("good"), net.topo.host("victim"),
                            monitor=monitor)
    app.start()
    net.topo.run(until=40.0)
    monitor.stop()
    # A single TCP flow on an otherwise idle 400 Kbps bottleneck: NetFence must
    # not prevent it from using a healthy chunk of the link.
    assert monitor.throughput_bps("good") > 150e3


def test_flood_triggers_monitoring_and_policing(small_network):
    net = small_network
    UdpSink(net.clock, net.topo.host("colluder"))
    UdpSender(net.clock, net.topo.host("bad"), "colluder", rate_bps=800e3).start()
    net.topo.run(until=30.0)
    assert net.left.in_monitoring_cycle(net.bottleneck.name)
    # The attacker's access router must have created a rate limiter for it.
    assert net.access.limiter_for("bad", net.bottleneck.name) is not None


def test_colluding_attacker_held_near_fair_share(small_network):
    net = small_network
    monitor = ThroughputMonitor(net.clock, start_time=60.0)
    UdpSink(net.clock, net.topo.host("colluder"), monitor=monitor)
    monitor_victim = monitor
    UdpSink(net.clock, net.topo.host("victim"), monitor=monitor_victim)
    UdpSender(net.clock, net.topo.host("bad"), "colluder", rate_bps=800e3).start()
    app = LongRunningTcpApp(net.clock, net.topo.host("good"), net.topo.host("victim"),
                            monitor=monitor)
    app.start(at=0.5)
    net.topo.run(until=150.0)
    monitor.stop()
    bad = monitor.throughput_bps("bad")
    good = monitor.throughput_bps("good")
    fair = 400e3 / 2
    assert bad < 1.6 * fair          # attacker cannot grab much above fair share
    assert good > 0.4 * fair         # the TCP user keeps a usable share
    assert good / bad > 0.45         # throughput ratio in the expected region


def test_victim_withholding_feedback_starves_attacker(small_network):
    net = small_network
    # The victim identifies "bad" and refuses to return feedback (§3.3).
    net.endhosts["victim"].return_policy.block("bad")
    monitor = ThroughputMonitor(net.clock, start_time=20.0)
    UdpSink(net.clock, net.topo.host("victim"), monitor=monitor)
    UdpSender(net.clock, net.topo.host("bad"), "victim", rate_bps=800e3).start()
    app = LongRunningTcpApp(net.clock, net.topo.host("good"), net.topo.host("victim"),
                            monitor=monitor)
    app.start(at=0.5)
    net.topo.run(until=60.0)
    monitor.stop()
    bad = monitor.throughput_bps("bad")
    good = monitor.throughput_bps("good")
    # Without feedback the attacker is confined to the 5 % request channel.
    assert bad < 0.10 * 400e3
    assert good > 3 * bad


def test_strategic_sender_hiding_decr_gains_nothing(params, domain):
    """§4.3.4 robustness: hiding L↓ cannot raise an attacker's rate."""
    from tests.conftest import SmallNetFenceNetwork

    # Honest attacker run.
    net_honest = SmallNetFenceNetwork(params, domain)
    monitor_h = ThroughputMonitor(net_honest.clock, start_time=60.0)
    UdpSink(net_honest.clock, net_honest.topo.host("colluder"), monitor=monitor_h)
    UdpSender(net_honest.clock, net_honest.topo.host("bad"), "colluder",
              rate_bps=800e3).start()
    net_honest.topo.run(until=120.0)
    honest_rate = monitor_h.throughput_bps("bad")

    # Strategic attacker that never presents L↓.
    from repro.core.domain import NetFenceDomain
    domain2 = NetFenceDomain(params=params, master=b"strategic")
    net_cheat = SmallNetFenceNetwork(params, domain2)
    net_cheat.endhosts["bad"].presentation_strategy = "hide_decr"
    monitor_c = ThroughputMonitor(net_cheat.clock, start_time=60.0)
    UdpSink(net_cheat.clock, net_cheat.topo.host("colluder"), monitor=monitor_c)
    UdpSender(net_cheat.clock, net_cheat.topo.host("bad"), "colluder",
              rate_bps=800e3).start()
    net_cheat.topo.run(until=120.0)
    cheat_rate = monitor_c.throughput_bps("bad")

    assert cheat_rate <= honest_rate * 1.1


def test_repeated_file_transfers_complete_during_attack(small_network):
    net = small_network
    UdpSink(net.clock, net.topo.host("colluder"))
    UdpSender(net.clock, net.topo.host("bad"), "colluder", rate_bps=600e3).start()
    app = FileTransferApp(net.clock, net.topo.host("good"), net.topo.host("victim"),
                          file_bytes=20_000)
    app.start(at=1.0)
    net.topo.run(until=90.0)
    assert app.log.attempted >= 3
    assert app.log.completion_ratio > 0.8


def test_netfence_header_overhead_only_on_netfence_packets(small_network):
    net = small_network
    UdpSink(net.clock, net.topo.host("victim"))
    UdpSender(net.clock, net.topo.host("good"), "victim", rate_bps=100e3).start()
    net.topo.run(until=5.0)
    victim = net.topo.host("victim")
    assert victim.packets_received > 0
