"""End-to-end observability: spans across the wire, flight dump on breach.

Two layers of the same story:

* in-process — a loadgen scenario against a live policer over loopback UDP
  with a :class:`~repro.obs.spans.SpanRecorder` installed; the contexts the
  senders attach must come back out of the policer's admission/delivery
  spans, i.e. trace identity survived the codec.
* subprocess — ``runner serve --json --spans`` with an unreachable SLO
  floor plus ``runner loadgen --json --spans``; the monitor loop must
  trigger a flight dump, ``runner flightdump`` must accept it, and
  ``runner trace --spans`` must stitch at least one tree that crosses the
  serve/loadgen process boundary.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import time

from repro.obs.spans import SpanRecorder, build_trees, use_span_recorder
from repro.runtime.loadgen import run_scenario
from repro.runtime.serve import start_policer

CAPACITY_BPS = 1_000_000.0


def test_spans_cross_the_wire_in_process():
    spans = SpanRecorder(capacity=65_536)

    async def scenario():
        policer = await start_policer(port=0, capacity_bps=CAPACITY_BPS)
        port = policer.transport.get_extra_info("sockname")[1]
        try:
            return await run_scenario(
                ("127.0.0.1", port),
                legit=1,
                attackers=0,
                legit_rate_bps=120_000.0,
                warmup_s=0.5,
                duration_s=1.0,
                capacity_bps=CAPACITY_BPS,
            )
        finally:
            await policer.shutdown()

    with use_span_recorder(spans):
        result = asyncio.run(scenario())

    assert result["victim_rx_packets"] > 0
    names = {s.name for s in spans.spans}
    assert "loadgen.send" in names
    assert "serve.admit" in names
    assert "serve.deliver" in names

    # Serve-side spans are children of the contexts the senders attached:
    # same trace id, parent pointing at the send span.
    sends = {s.context.span_id: s for s in spans.spans
             if s.name == "loadgen.send"}
    admits = [s for s in spans.spans if s.name == "serve.admit"]
    linked = [s for s in admits if s.context.parent_id in sends]
    assert linked, "no admission span joined a sender's trace"
    for admit in linked:
        parent = sends[admit.context.parent_id]
        assert admit.context.trace_id == parent.context.trace_id

    # And the generic stitcher agrees: some tree roots at a send and
    # descends into the policer.
    trees = build_trees(spans.to_dicts())
    stitched = [t for t in trees
                if t["span"]["name"] == "loadgen.send" and t["children"]]
    assert stitched, "no send rooted a multi-span tree"
    child_names = {c["span"]["name"] for t in stitched for c in t["children"]}
    assert child_names & {"serve.admit", "serve.deliver"}


def test_slo_breach_dumps_flight_and_traces_stitch(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.abspath("src")] + env.get("PYTHONPATH", "").split(os.pathsep))
    serve_log = tmp_path / "serve.jsonl"
    loadgen_log = tmp_path / "loadgen.jsonl"
    dump_path = tmp_path / "flight.json"
    runner = [sys.executable, "-m", "repro.experiments.runner"]

    with open(serve_log, "w") as serve_out:
        serve = subprocess.Popen(
            runner + ["serve", "--port", "0", "--capacity-bps",
                      str(int(CAPACITY_BPS)), "--json", "--spans",
                      "--flight-dump", str(dump_path),
                      "--slo-min-share", "0.99",   # unreachable under flood
                      "--monitor-interval", "0.1"],
            stdout=serve_out, env=env)
        try:
            port = None
            for _ in range(100):
                if serve_log.exists() and serve_log.stat().st_size:
                    port = json.loads(
                        serve_log.read_text().splitlines()[0])["port"]
                    break
                time.sleep(0.1)
            assert port, "policer never reported its port"

            with open(loadgen_log, "w") as lg_out:
                subprocess.run(
                    runner + ["loadgen", "--port", str(port), "--quick",
                              "--attackers", "2", "--json", "--spans"],
                    stdout=lg_out, env=env, check=True, timeout=120)
        finally:
            serve.send_signal(signal.SIGTERM)
            serve.wait(timeout=30)

    # The monitor loop saw legit share < 0.99 and dumped the flight rings.
    dump = json.loads(dump_path.read_text())
    assert dump["event"] == "flight_dump"
    assert dump["trigger"] == "slo_breach"
    assert dump["context"]["legit_share"] < 0.99
    assert dump["spans"], "flight dump carries no spans"
    assert dump["metrics_snapshots"], "flight dump carries no metrics"
    assert any(r.get("event") == "flight_dump" for r in dump["logs"]) or \
        dump["logs"], "flight dump carries no log records"
    # Spans in the dump correlate with events in the serve log.
    serve_records = [json.loads(line)
                     for line in serve_log.read_text().splitlines()]
    assert any(r.get("event") == "flight_dump" for r in serve_records)
    serve_traces = {r["trace"] for r in serve_records
                    if r.get("event") == "span"}
    dump_traces = {s["trace"] for s in dump["spans"]}
    assert serve_traces & dump_traces

    # The pretty-printer accepts the dump.
    printed = subprocess.run(runner + ["flightdump", str(dump_path)],
                             env=env, capture_output=True, text=True,
                             timeout=60)
    assert printed.returncode == 0
    assert "trigger=slo_breach" in printed.stdout

    # And the cross-process stitcher reconstructs shared traces.
    stitched = subprocess.run(
        runner + ["trace", "--spans", str(serve_log), str(loadgen_log),
                  "--json"],
        env=env, capture_output=True, text=True, timeout=60)
    assert stitched.returncode == 0, stitched.stderr
    payload = json.loads(stitched.stdout)
    assert payload["span_records"] > 0
    assert payload["cross_process_traces"] > 0, payload
