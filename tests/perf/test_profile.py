"""Tests for the repro.perf profiling subsystem."""

import json

import pytest

from repro import perf
from repro.experiments.sweep import ScenarioSpec, register_point
from repro.simulator.engine import PeriodicTimer, Simulator


@register_point("perf_mini_sim")
def _mini_sim_point(seed: int = 1, events: int = 50) -> dict:
    """A tiny simulator-backed point for census/profile tests."""
    sim = Simulator()
    fired = {"ticks": 0}

    def tick():
        fired["ticks"] += 1

    timer = PeriodicTimer(sim, 0.1, tick)
    timer.start()
    for i in range(events):
        sim.schedule(i * 0.01, lambda: None)
    sim.run(until=1.0)
    timer.stop()
    return {"seed": seed, "ticks": fired["ticks"]}


def test_profile_spec_produces_hotspots_and_census():
    spec = ScenarioSpec.make("perf_mini_sim", seed=3, events=40)
    report = perf.profile_spec(spec, top=10, calib_s=0.1)
    assert report.description == spec.describe()
    assert report.wall_s > 0
    assert report.calib_s == 0.1
    assert 0 < len(report.hotspots) <= 10
    assert all(spot.ncalls >= 1 for spot in report.hotspots)
    # Census saw the scheduled lambdas and the periodic timer ticks.
    assert report.events_processed == sum(report.event_census.values())
    assert report.events_processed >= 40
    assert any("_fire" in name for name in report.event_census)


def test_profile_spec_census_tap_is_restored():
    spec = ScenarioSpec.make("perf_mini_sim", seed=1, events=5)
    perf.profile_spec(spec, top=5, calib_s=0.1)
    assert Simulator.default_dispatch_tap is None
    assert Simulator().dispatch_tap is None


def test_profile_spec_without_census():
    spec = ScenarioSpec.make("perf_mini_sim", seed=1, events=5)
    report = perf.profile_spec(spec, census=False, calib_s=0.1)
    assert report.event_census == {}
    assert report.events_processed == 0


def test_format_report_renders_tables():
    spec = ScenarioSpec.make("perf_mini_sim", seed=2, events=20)
    report = perf.profile_spec(spec, top=5, calib_s=0.1)
    text = perf.format_report(report)
    assert "hot spots (by internal time):" in text
    assert "per-phase event counts (by callback):" in text
    assert "events dispatched" in text
    assert "calibration units" in text


def test_normalized_wall_divides_by_calibration():
    report = perf.ProfileReport(description="x", wall_s=4.0, calib_s=0.5)
    assert report.normalized_wall == pytest.approx(8.0)


def test_dispatch_tap_sees_every_callback():
    sim = Simulator()
    seen = []
    sim.dispatch_tap = seen.append
    marks = []
    sim.schedule(1.0, marks.append, "a")
    sim.schedule_fast(2.0, marks.append, ("b",))
    sim.run()
    assert marks == ["a", "b"]
    assert seen == [marks.append, marks.append]


def test_cli_main_profiles_an_experiment(capsys):
    class _Def:
        @staticmethod
        def build_grid(quick):
            assert quick
            return [ScenarioSpec.make("perf_mini_sim", seed=1, events=10)]

    rc = perf.cli_main(["mini", "--quick", "--top", "5", "--json"],
                       experiments={"mini": _Def()})
    assert rc == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["wall_s"] > 0
    assert len(payload["hotspots"]) <= 5
    assert payload["event_census"]
