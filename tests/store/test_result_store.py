"""Tests for the SQLite-backed, append-only sweep result store."""

import dataclasses as dc
import sqlite3
import time

import pytest

from repro.analysis.aggregate import dashboard_payload, group_reduce, pivot_table
from repro.analysis.rows import row_schema, rows_to_csv
from repro.experiments.sweep import ScenarioSpec, SweepResult, run_sweep
from repro.store import ResultStore


@dc.dataclass
class StoreRow:
    system: str
    scale: int
    goodput: float

    def as_tuple(self):
        return (self.system, self.scale, self.goodput)


def spec_for(seed=1, **params):
    return ScenarioSpec.make("_store_test", seed=seed, **params)


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path / "results.sqlite"), worker_id="w-test")


# ---------------------------------------------------------------------------
# Round trip + append-only semantics
# ---------------------------------------------------------------------------

def test_get_returns_none_for_unknown_spec(store):
    assert store.get(spec_for(scale=1)) is None


def test_put_get_round_trips_typed_rows(store):
    spec = spec_for(scale=25, system="netfence")
    rows = [StoreRow("netfence", 25, 0.91), StoreRow("netfence", 25, 0.88)]
    store.put(spec, rows)
    fetched = store.get(spec)
    assert fetched == rows
    assert [type(row) for row in fetched] == [StoreRow, StoreRow]


def test_append_only_newest_record_wins(store):
    spec = spec_for(scale=50)
    store.put(spec, [StoreRow("netfence", 50, 0.5)])
    store.put(spec, [StoreRow("netfence", 50, 0.7)])
    assert store.get(spec) == [StoreRow("netfence", 50, 0.7)]
    records = store.point_records()
    assert len(records) == 2  # both executions kept — the perf trajectory
    assert len(store.point_records(latest_only=True)) == 1


def test_put_result_records_timing_and_worker(store):
    spec = spec_for(scale=100)
    result = SweepResult(spec=spec, rows=[StoreRow("fq", 100, 0.3)],
                         elapsed_s=1.25, worker_id="hostA:42")
    store.put_result(result)
    (record,) = store.point_records()
    assert record.experiment == "_store_test"
    assert record.seed == 1
    assert record.params == {"scale": 100}
    assert record.elapsed_s == 1.25
    assert record.worker_id == "hostA:42"
    assert record.num_rows == 1
    assert record.created_at <= time.time()


def test_put_result_refuses_failed_points(store):
    result = SweepResult(spec=spec_for(), rows=[], error="Traceback ...")
    with pytest.raises(ValueError):
        store.put_result(result)


def test_stored_schema_fingerprint_matches_shared_helper(store):
    spec = spec_for(scale=7)
    rows = [StoreRow("netfence", 7, 0.9)]
    store.put(spec, rows)
    with sqlite3.connect(store.path) as conn:
        (stored,) = conn.execute("SELECT row_schema FROM points").fetchone()
    assert stored == repr(row_schema(rows))


# ---------------------------------------------------------------------------
# Query / aggregation API
# ---------------------------------------------------------------------------

@pytest.fixture
def filled(store):
    for system in ("netfence", "fq"):
        for scale in (25, 50):
            spec = spec_for(system=system, scale=scale)
            store.put_result(SweepResult(
                spec=spec, rows=[StoreRow(system, scale, 0.9 if system == "netfence" else 0.4)],
                elapsed_s=0.5, worker_id="w-test"))
    return store


def test_query_rows_filters_by_experiment_and_params(filled):
    rows = filled.query_rows(experiment="_store_test")
    assert len(rows) == 4
    netfence = filled.query_rows(experiment="_store_test",
                                 params={"system": "netfence"})
    assert {row["system"] for row in netfence} == {"netfence"}
    assert filled.query_rows(experiment="nope") == []


def test_query_rows_predicate_and_meta(filled):
    rows = filled.query_rows(where=lambda row: row["scale"] == 50, meta=True)
    assert len(rows) == 2
    for row in rows:
        assert row["scale"] == 50
        assert row["_experiment"] == "_store_test"
        assert row["_worker_id"] == "w-test"
        assert row["_elapsed_s"] == 0.5
        assert row["_params"]["scale"] == 50


def test_summary_and_perf_trajectory(filled):
    (entry,) = filled.summary()
    assert entry["experiment"] == "_store_test"
    assert entry["points"] == 4
    assert entry["executions"] == 4
    assert entry["rows"] == 4
    assert entry["total_elapsed_s"] == pytest.approx(2.0)
    assert entry["workers"] == 1
    trajectory = filled.perf_trajectory()
    assert [p["elapsed_s"] for p in trajectory] == [0.5] * 4
    assert all(p["worker_id"] == "w-test" for p in trajectory)


def test_fetch_specs_preserves_spec_order_and_reports_missing(filled):
    specs = [spec_for(system="fq", scale=50), spec_for(system="netfence", scale=25),
             spec_for(system="netfence", scale=999)]
    merged, missing = filled.fetch_specs(specs)
    assert [row.as_tuple() for row in merged] == [("fq", 50, 0.4), ("netfence", 25, 0.9)]
    assert missing == [specs[2]]


def test_group_reduce_and_pivot_views(filled):
    rows = filled.query_rows(experiment="_store_test")
    reduced = group_reduce(rows, by=["system"], value="goodput", agg="mean")
    by_system = {entry["system"]: entry for entry in reduced}
    assert by_system["netfence"]["mean_goodput"] == pytest.approx(0.9)
    assert by_system["fq"]["n"] == 2
    pivot = pivot_table(rows, index="scale", column="system", value="goodput")
    assert pivot["index_values"] == [25, 50]
    series = {s["name"]: s["values"] for s in pivot["series"]}
    assert series["fq"] == [pytest.approx(0.4), pytest.approx(0.4)]


def test_dashboard_payload_attaches_provenance(filled):
    payload = dashboard_payload(filled, "_store_test", index="scale",
                                column="system", value="goodput",
                                params={"system": "netfence"})
    assert payload["experiment"] == "_store_test"
    assert payload["rows"] == 2
    assert payload["store_path"] == filled.path
    assert [s["name"] for s in payload["series"]] == ["netfence"]


def test_rows_to_csv_header_and_values(filled):
    text = rows_to_csv([StoreRow("netfence", 25, 0.9)])
    assert text.splitlines() == ["system,scale,goodput", "netfence,25,0.9"]


# ---------------------------------------------------------------------------
# Staleness + sweep integration
# ---------------------------------------------------------------------------

def test_get_rejects_rows_stored_under_a_stale_schema(store):
    """A row class that changed shape since the write must be a miss,
    mirroring SweepCache's VERSION-2 behavior."""
    import repro.store.result_store as store_mod

    @dc.dataclass
    class _Row:
        value: int

    _Row.__qualname__ = "_StoreSchemaRow"
    _Row.__module__ = store_mod.__name__
    store_mod._StoreSchemaRow = _Row
    try:
        spec = spec_for(scale=11)
        store.put(spec, [_Row(value=11)])
        assert store.get(spec) == [_Row(value=11)]

        @dc.dataclass
        class _RowV2:
            value: int
            extra: float = 0.0

        _RowV2.__qualname__ = "_StoreSchemaRow"
        _RowV2.__module__ = store_mod.__name__
        store_mod._StoreSchemaRow = _RowV2

        assert store.get(spec) is None
        # ... but the flattened JSON rows stay queryable regardless.
        assert store.query_rows(experiment="_store_test",
                                params={"scale": 11}) == [{"value": 11}]
    finally:
        del store_mod._StoreSchemaRow


def test_run_sweep_uses_store_as_cache(tmp_path):
    store = ResultStore(str(tmp_path / "sweep.sqlite"))
    specs = [ScenarioSpec.make("bench_sleep", seed=i, duration=0.0, payload=i)
             for i in range(3)]
    first = run_sweep(specs, cache=store)
    assert all(not r.cached for r in first)
    # run_sweep committed through put_result: wall time and worker recorded.
    records = store.point_records()
    assert len(records) == 3
    assert all(record.elapsed_s >= 0.0 and ":" in record.worker_id
               for record in records)
    second = run_sweep(specs, cache=store)
    assert all(r.cached for r in second)
    assert [r.rows for r in second] == [r.rows for r in first]


# ---------------------------------------------------------------------------
# Attempt provenance (retry budgets) + compaction
# ---------------------------------------------------------------------------

def test_put_result_records_attempt_number(store):
    spec = spec_for(scale=7)
    result = SweepResult(spec=spec, rows=[StoreRow("netfence", 7, 0.9)],
                         elapsed_s=0.5, worker_id="w-flaky")
    store.put_result(result, attempt=3)
    (record,) = store.point_records()
    assert record.attempt == 3
    (row,) = store.query_rows(meta=True)
    assert row["_attempt"] == 3


def test_attempt_defaults_to_one(store):
    store.put(spec_for(scale=8), [StoreRow("netfence", 8, 0.8)])
    (record,) = store.point_records()
    assert record.attempt == 1
    (entry,) = store.perf_trajectory()
    assert entry["attempt"] == 1


def test_pre_attempt_databases_are_migrated_in_place(tmp_path):
    path = str(tmp_path / "old.sqlite")
    store = ResultStore(path, worker_id="w-old")
    store.put(spec_for(scale=9), [StoreRow("netfence", 9, 0.9)])
    with sqlite3.connect(path) as conn:
        conn.execute("ALTER TABLE points DROP COLUMN attempt")
    migrated = ResultStore(path, worker_id="w-new")
    (record,) = migrated.point_records()
    assert record.attempt == 1  # backfilled by the migration default


def test_compact_keeps_only_latest_execution_per_point(store):
    spec_a, spec_b = spec_for(scale=1), spec_for(scale=2)
    store.put(spec_a, [StoreRow("netfence", 1, 0.1)])
    store.put(spec_a, [StoreRow("netfence", 1, 0.2)])
    store.put(spec_a, [StoreRow("netfence", 1, 0.3)])
    store.put(spec_b, [StoreRow("netfence", 2, 0.9)])
    stats = store.compact()
    assert stats["removed_executions"] == 2
    assert stats["kept_points"] == 2
    assert stats["bytes_after"] <= stats["bytes_before"]
    # The read path still serves the newest execution of every point.
    assert store.get(spec_a) == [StoreRow("netfence", 1, 0.3)]
    assert store.get(spec_b) == [StoreRow("netfence", 2, 0.9)]
    assert len(store.point_records()) == 2
    # The flattened rows of dropped executions are gone too.
    assert len(store.query_rows(latest_only=False)) == 2


def test_compact_on_compacted_store_is_a_no_op(store):
    store.put(spec_for(scale=3), [StoreRow("netfence", 3, 0.5)])
    store.compact()
    stats = store.compact()
    assert stats["removed_executions"] == 0
    assert stats["removed_rows"] == 0
    assert stats["kept_points"] == 1


# ---------------------------------------------------------------------------
# Metric rows (telemetry summaries committed next to sweep points)
# ---------------------------------------------------------------------------

def test_put_and_query_metric_rows_round_trip(store):
    rows = [
        {"name": "ingress_total", "labels": {"router": "r1"},
         "kind": "counter", "value": 42.0},
        {"name": "queue_depth", "labels": {}, "kind": "gauge", "value": 7.0},
    ]
    written = store.put_metric_rows("fig12", "cache-abc", rows, now=80.0)
    assert written == 2

    fetched = store.query_metric_rows(experiment="fig12")
    assert [row["name"] for row in fetched] == ["ingress_total", "queue_depth"]
    first = fetched[0]
    assert first["labels"] == {"router": "r1"}
    assert first["value"] == 42.0
    assert first["_experiment"] == "fig12"
    assert first["_cache_key"] == "cache-abc"
    assert first["_recorded_at"] == 80.0  # telemetry clock, not wall clock
    assert first["_created_at"] <= time.time()


def test_query_metric_rows_filters(store):
    store.put_metric_rows("fig12", "ck-1",
                          [{"name": "a", "kind": "counter", "value": 1.0}])
    store.put_metric_rows("fig12", "ck-2",
                          [{"name": "b", "kind": "counter", "value": 2.0}])
    store.put_metric_rows("fig13", "ck-3",
                          [{"name": "a", "kind": "counter", "value": 3.0}])

    assert len(store.query_metric_rows()) == 3
    assert len(store.query_metric_rows(experiment="fig12")) == 2
    (by_key,) = store.query_metric_rows(cache_key="ck-2")
    assert by_key["name"] == "b"
    by_name = store.query_metric_rows(name="a")
    assert [row["value"] for row in by_name] == [1.0, 3.0]
    assert store.query_metric_rows(experiment="nope") == []


def test_metric_rows_survive_compaction(store):
    store.put(spec_for(scale=4), [StoreRow("netfence", 4, 0.8)])
    store.put_metric_rows("_store_test", "ck",
                          [{"name": "m", "kind": "gauge", "value": 1.5}])
    store.compact()
    assert len(store.query_metric_rows()) == 1


# ---------------------------------------------------------------------------
# Worker telemetry rows (the fleet's side of each point execution)
# ---------------------------------------------------------------------------

def _worker_row(**overrides):
    row = {
        "worker_id": "w-1", "experiment": "fig12", "cache_key": "ck-1",
        "attempt": 1, "claim_latency_s": 0.125, "heartbeat_renewals": 2,
        "elapsed_s": 1.25, "rss_kb": 30_000, "outcome": "completed",
    }
    row.update(overrides)
    return row


def test_put_and_query_worker_rows_round_trip(store):
    assert store.put_worker_rows([_worker_row()]) == 1
    (row,) = store.query_worker_rows()
    assert row["_worker_id"] == "w-1"
    assert row["_experiment"] == "fig12"
    assert row["_cache_key"] == "ck-1"
    assert row["claim_latency_s"] == 0.125
    assert row["heartbeat_renewals"] == 2
    assert row["rss_kb"] == 30_000
    assert row["outcome"] == "completed"  # extra keys survive via JSON


def test_query_worker_rows_filters(store):
    store.put_worker_rows([
        _worker_row(worker_id="w-1", cache_key="ck-1"),
        _worker_row(worker_id="w-2", cache_key="ck-2",
                    experiment="fig13"),
    ])
    assert len(store.query_worker_rows()) == 2
    assert [r["_worker_id"] for r in
            store.query_worker_rows(worker_id="w-2")] == ["w-2"]
    assert [r["_experiment"] for r in
            store.query_worker_rows(experiment="fig13")] == ["fig13"]
    assert store.query_worker_rows(experiment="nope") == []


def test_fleet_summary_aggregates_per_worker(store):
    store.put_worker_rows([
        _worker_row(worker_id="w-1", claim_latency_s=0.1,
                    heartbeat_renewals=1, elapsed_s=1.0, rss_kb=10_000),
        _worker_row(worker_id="w-1", cache_key="ck-2", attempt=3,
                    claim_latency_s=0.3, heartbeat_renewals=2,
                    elapsed_s=2.0, rss_kb=20_000),
        _worker_row(worker_id="w-2", cache_key="ck-3"),
    ])
    summary = {w["worker_id"]: w for w in store.fleet_summary()}
    assert set(summary) == {"w-1", "w-2"}
    w1 = summary["w-1"]
    assert w1["points"] == 2
    assert w1["retried_points"] == 1
    assert w1["avg_claim_latency_s"] == pytest.approx(0.2)
    assert w1["max_claim_latency_s"] == pytest.approx(0.3)
    assert w1["heartbeat_renewals"] == 3
    assert w1["total_elapsed_s"] == pytest.approx(3.0)
    assert w1["max_rss_kb"] == 20_000
    assert w1["last_seen"] <= time.time()


def test_worker_rows_default_worker_id_comes_from_store(store):
    row = _worker_row()
    del row["worker_id"]
    store.put_worker_rows([row])
    (fetched,) = store.query_worker_rows()
    assert fetched["_worker_id"] == store.worker_id
