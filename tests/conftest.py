"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.access import NetFenceAccessRouter
from repro.core.bottleneck import NetFenceRouter, netfence_queue_factory
from repro.core.domain import NetFenceDomain
from repro.core.endhost import NetFenceEndHost
from repro.core.params import NetFenceParams
from repro.simulator.engine import Simulator
from repro.simulator.topology import Topology


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def params() -> NetFenceParams:
    return NetFenceParams()


@pytest.fixture
def domain(params) -> NetFenceDomain:
    return NetFenceDomain(params=params, master=b"test-master")


class SmallNetFenceNetwork:
    """A two-sender / two-receiver NetFence deployment on one bottleneck.

    Layout::

        good, bad --- Ra === Rbl --(bottleneck)-- Rbr === Rd --- victim, colluder
    """

    def __init__(self, params: NetFenceParams, domain: NetFenceDomain,
                 bottleneck_bps: float = 400e3) -> None:
        self.params = params
        self.domain = domain
        self.topo = Topology()
        sim = self.topo.clock
        queue_factory = netfence_queue_factory(sim, params)
        for name, as_name in [("good", "AS-src"), ("bad", "AS-src"),
                              ("victim", "AS-dst"), ("colluder", "AS-dst")]:
            self.topo.add_host(name, as_name=as_name)
        self.access = self.topo.add_router(
            "Ra", as_name="AS-src", router_cls=NetFenceAccessRouter, domain=domain)
        self.left = self.topo.add_router(
            "Rbl", as_name="AS-core", router_cls=NetFenceRouter, domain=domain)
        self.right = self.topo.add_router(
            "Rbr", as_name="AS-core", router_cls=NetFenceRouter, domain=domain)
        self.dst_access = self.topo.add_router(
            "Rd", as_name="AS-dst", router_cls=NetFenceAccessRouter, domain=domain)
        self.topo.add_duplex_link("good", "Ra", 100e6, 0.001)
        self.topo.add_duplex_link("bad", "Ra", 100e6, 0.001)
        self.topo.add_duplex_link("Ra", "Rbl", 100e6, 0.005)
        self.topo.add_duplex_link("Rbl", "Rbr", bottleneck_bps, 0.005,
                                  queue_factory=queue_factory)
        self.topo.add_duplex_link("Rbr", "Rd", 100e6, 0.005)
        self.topo.add_duplex_link("victim", "Rd", 100e6, 0.001)
        self.topo.add_duplex_link("colluder", "Rd", 100e6, 0.001)
        self.topo.finalize()
        self.bottleneck = self.topo.link_between("Rbl", "Rbr")
        self.endhosts = {}
        for host in ("good", "bad"):
            self.endhosts[host] = NetFenceEndHost(sim, self.topo.host(host), params=params)
        for host in ("victim", "colluder"):
            self.endhosts[host] = NetFenceEndHost(
                sim, self.topo.host(host), params=params, send_feedback_packets=True)

    @property
    def clock(self) -> Simulator:
        return self.topo.clock

    @property
    def sim(self) -> Simulator:
        """Backward-compat alias for :attr:`clock`."""
        return self.topo.clock


@pytest.fixture
def small_network(params, domain) -> SmallNetFenceNetwork:
    return SmallNetFenceNetwork(params, domain)


@pytest.fixture
def fast_params() -> NetFenceParams:
    """Parameters with short control intervals for quick closed-loop tests."""
    return NetFenceParams().with_overrides(
        control_interval=0.5,
        detection_interval=0.2,
        feedback_expiration=2.0,
    )
