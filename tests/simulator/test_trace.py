"""Tests for EWMA, throughput monitors, and link monitors."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Host
from repro.simulator.packet import Packet
from repro.simulator.trace import EWMA, LinkMonitor, ThroughputMonitor


def test_ewma_first_sample_initializes():
    ewma = EWMA(weight=0.1)
    assert ewma.get() == 0.0
    ewma.update(10.0)
    assert ewma.get() == 10.0


def test_ewma_moves_toward_samples():
    ewma = EWMA(weight=0.5, initial=0.0)
    ewma.update(10.0)
    assert ewma.get() == pytest.approx(5.0)
    ewma.update(10.0)
    assert ewma.get() == pytest.approx(7.5)


def test_ewma_weight_validation():
    with pytest.raises(ValueError):
        EWMA(weight=0.0)
    with pytest.raises(ValueError):
        EWMA(weight=1.5)


def test_throughput_monitor_counts_bytes_per_sender():
    sim = Simulator()
    monitor = ThroughputMonitor(sim)
    monitor.start()
    for _ in range(10):
        monitor.record(Packet(src="a", dst="d", size_bytes=1000))
    sim.schedule(1.0, lambda: None)
    sim.run()
    monitor.stop()
    assert monitor.throughput_bps("a") == pytest.approx(10 * 1000 * 8 / 1.0)


def test_throughput_monitor_ignores_packets_before_start_time():
    sim = Simulator()
    monitor = ThroughputMonitor(sim, start_time=5.0)
    monitor.record(Packet(src="a", dst="d", size_bytes=1000))  # at t=0, ignored
    sim.schedule(6.0, lambda: monitor.record(Packet(src="a", dst="d", size_bytes=1000)))
    sim.schedule(10.0, lambda: None)
    sim.run()
    monitor.stop()
    assert monitor.records["a"].packets_received == 1
    assert monitor.throughput_bps("a") == pytest.approx(1000 * 8 / 5.0)


def test_throughput_monitor_unknown_sender_is_zero():
    sim = Simulator()
    monitor = ThroughputMonitor(sim)
    assert monitor.throughput_bps("ghost") == 0.0


def test_throughputs_bulk_accessor():
    sim = Simulator()
    monitor = ThroughputMonitor(sim)
    monitor.start()
    monitor.record(Packet(src="a", dst="d", size_bytes=500))
    sim.schedule(1.0, lambda: None)
    sim.run()
    values = monitor.throughputs(["a", "b"])
    assert values["a"] > 0 and values["b"] == 0.0


class _Sink(Host):
    def receive(self, packet, from_link):
        pass


def test_link_monitor_utilization_series():
    from repro.simulator.queues import DropTailQueue

    sim = Simulator()
    src, dst = _Sink(sim, "s"), _Sink(sim, "d")
    link = Link(sim, src, dst, capacity_bps=1e6, delay_s=0.0,
                queue=DropTailQueue(capacity_bytes=10**6))
    monitor = LinkMonitor(sim, link, interval=1.0)
    monitor.start()

    def blast():
        for _ in range(40):
            link.send(Packet(src="s", dst="d", size_bytes=1250))

    sim.schedule(0.0, blast)
    sim.run(until=3.0)
    monitor.stop()
    assert len(monitor.utilization_series) == 3
    # 40 * 1250 B = 0.4 Mbit over a 1 Mbps link → ~0.4 utilization in second 1.
    assert monitor.utilization_series[0] == pytest.approx(0.4, abs=0.05)
    assert monitor.mean_utilization <= 1.0


def test_link_monitor_loss_series_counts_drops():
    sim = Simulator()
    src, dst = _Sink(sim, "s"), _Sink(sim, "d")
    link = Link(sim, src, dst, capacity_bps=1e5, delay_s=0.0)
    monitor = LinkMonitor(sim, link, interval=1.0)
    monitor.start()

    def blast():
        for _ in range(200):
            link.send(Packet(src="s", dst="d", size_bytes=1500))

    sim.schedule(0.0, blast)
    sim.run(until=2.0)
    monitor.stop()
    assert monitor.mean_loss_rate > 0


def test_flow_record_throughput_over_explicit_duration():
    sim = Simulator()
    monitor = ThroughputMonitor(sim)
    monitor.start()
    monitor.record(Packet(src="a", dst="d", size_bytes=1000))
    record = monitor.records["a"]
    assert record.throughput_bps(duration=2.0) == pytest.approx(4000.0)
