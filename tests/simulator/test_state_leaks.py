"""Regression tests for queue/heap state leaks (PR 5 bugfixes).

Three families:

* **Flow churn** — fair queues must evict drained per-flow state instead of
  letting ghost entries consume ``max_flows`` slots forever.  Before the
  fix, cycling through more than ``max_flows`` distinct senders made a
  :class:`DRRQueue` drop every packet from any new sender.
* **Hierarchical bucket churn** — the same leak one level up: drained
  level-1 buckets (and their inner DRR state) must be removed, so memory
  tracks the live AS set, not every AS ever seen.
* **Byte accounting** — after any enqueue/drain cycle, every queue class
  must report ``len == 0`` and ``byte_length == 0`` (no residual counters).
"""

import pytest

from repro.core.bottleneck import NetFenceChannelQueue
from repro.simulator.engine import Simulator
from repro.simulator.fairqueue import DRRQueue, HierarchicalFairQueue
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import (
    DropTailQueue,
    LevelPriorityQueue,
    PriorityChannelQueue,
    REDQueue,
)


def make_packet(src="s", dst="d", size=1000, src_as=None, ptype=PacketType.REGULAR,
                priority=0):
    return Packet(src=src, dst=dst, size_bytes=size, src_as=src_as, ptype=ptype,
                  priority=priority)


def drain(queue):
    out = []
    while True:
        packet = queue.dequeue()
        if packet is None:
            return out
        out.append(packet)


# ---------------------------------------------------------------------------
# Flow churn (DRRQueue)
# ---------------------------------------------------------------------------

def test_drr_flow_churn_does_not_exhaust_max_flows():
    # Cycle 2 x max_flows distinct senders through the queue; every one must
    # be accepted because drained flows are evicted.
    queue = DRRQueue(max_flows=4)
    for i in range(8):
        assert queue.enqueue(make_packet(src=f"sender{i}")), f"sender{i} rejected"
        assert queue.dequeue() is not None
    assert queue.active_flows == 0


def test_drr_new_sender_accepted_after_draining_max_flows_plus_one():
    # The acceptance-criterion scenario: drain max_flows + 1 distinct
    # senders, then a brand-new sender must still be accepted.
    queue = DRRQueue(max_flows=3)
    for i in range(4):
        assert queue.enqueue(make_packet(src=f"old{i}"))
        queue.dequeue()
    assert queue.enqueue(make_packet(src="newcomer"))
    assert queue.dequeue().src == "newcomer"


def test_drr_batch_churn_with_interleaved_flows():
    # Batches of concurrent flows (not strictly one-at-a-time churn).
    queue = DRRQueue(max_flows=8)
    for batch in range(5):
        for i in range(8):
            assert queue.enqueue(make_packet(src=f"b{batch}h{i}"))
        assert len(drain(queue)) == 8
        assert queue.active_flows == 0


def test_drr_simultaneously_active_flows_still_bounded():
    # Eviction must not relax the cap on *live* flows.
    queue = DRRQueue(max_flows=2)
    assert queue.enqueue(make_packet(src="a"))
    assert queue.enqueue(make_packet(src="b"))
    assert not queue.enqueue(make_packet(src="c"))
    assert queue.stats.dropped == 1


def test_drr_rejected_new_flow_leaves_no_ghost_state():
    # A new flow whose first packet is rejected (oversized) must not occupy
    # a flow slot.
    queue = DRRQueue(max_flows=2, per_flow_capacity_bytes=1500)
    assert not queue.enqueue(make_packet(src="fat", size=4000))
    assert queue.active_flows == 0
    # Both slots are still available for real flows.
    assert queue.enqueue(make_packet(src="a"))
    assert queue.enqueue(make_packet(src="b"))


# ---------------------------------------------------------------------------
# Hierarchical bucket churn
# ---------------------------------------------------------------------------

def test_hierarchical_evicts_drained_level1_buckets():
    queue = HierarchicalFairQueue()
    for cycle in range(10):
        for as_index in range(5):
            assert queue.enqueue(make_packet(
                src=f"c{cycle}a{as_index}", src_as=f"AS-{cycle}-{as_index}"))
        drain(queue)
        # Memory tracks the live AS set (zero after a drain), not the
        # 5 * (cycle + 1) ASes ever seen.
        assert queue.active_level1_buckets == 0
        assert len(queue._buckets) == 0


def test_hierarchical_rejected_packet_leaves_no_empty_bucket():
    queue = HierarchicalFairQueue(per_flow_capacity_bytes=1500)
    assert not queue.enqueue(make_packet(src="fat", src_as="AS9", size=4000))
    assert queue.active_level1_buckets == 0


def test_hierarchical_fairness_unchanged_by_eviction():
    # Eviction resets a bucket's deficit exactly like the pre-fix drain path
    # did, so round-robin service keeps level-1 fairness.
    queue = HierarchicalFairQueue(per_flow_capacity_bytes=1_000_000)
    for _ in range(60):
        queue.enqueue(make_packet(src="as1_h0", src_as="AS1"))
    for _ in range(60):
        queue.enqueue(make_packet(src="as2_h0", src_as="AS2"))
    served = [queue.dequeue() for _ in range(40)]
    as1 = sum(1 for p in served if p.src_as == "AS1")
    assert 15 <= as1 <= 25  # ~half the service each


# ---------------------------------------------------------------------------
# Byte-accounting invariants across every queue class
# ---------------------------------------------------------------------------

def _netfence_queue():
    return NetFenceChannelQueue(Simulator(), capacity_bps=10e6, seed=7)


def _priority_channel_queue():
    return PriorityChannelQueue(
        ["request", "regular", "legacy"],
        {"request": DropTailQueue(capacity_bytes=10_000_000),
         "regular": DropTailQueue(capacity_bytes=10_000_000),
         "legacy": DropTailQueue(capacity_bytes=10_000_000)},
    )


QUEUE_FACTORIES = [
    pytest.param(lambda: DropTailQueue(capacity_bytes=10_000_000), id="droptail"),
    pytest.param(lambda: REDQueue(capacity_bytes=10_000_000, seed=3), id="red"),
    pytest.param(lambda: LevelPriorityQueue(capacity_bytes=10_000_000), id="levelprio"),
    pytest.param(_priority_channel_queue, id="prio-channel"),
    pytest.param(lambda: DRRQueue(per_flow_capacity_bytes=10_000_000), id="drr"),
    pytest.param(lambda: HierarchicalFairQueue(per_flow_capacity_bytes=10_000_000),
                 id="hfq"),
    pytest.param(_netfence_queue, id="netfence-channel"),
]


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
def test_len_and_bytes_return_to_zero_after_drain(factory):
    queue = factory()
    total = 0
    for i in range(30):
        packet = make_packet(src=f"h{i % 7}", src_as=f"AS{i % 3}",
                             size=500 + 100 * (i % 4))
        assert queue.enqueue(packet)
        total += packet.size_bytes
    assert len(queue) == 30
    assert queue.byte_length == total
    served = drain(queue)
    assert len(served) == 30
    assert len(queue) == 0
    assert queue.byte_length == 0


@pytest.mark.parametrize("factory", QUEUE_FACTORIES)
def test_interleaved_enqueue_dequeue_keeps_accounting_exact(factory):
    queue = factory()
    live_bytes = 0
    live_count = 0
    for round_index in range(12):
        for i in range(4):
            packet = make_packet(src=f"h{i}", src_as=f"AS{i % 2}",
                                 size=400 + 150 * i)
            assert queue.enqueue(packet)
            live_bytes += packet.size_bytes
            live_count += 1
        for _ in range(3):
            packet = queue.dequeue()
            assert packet is not None
            live_bytes -= packet.size_bytes
            live_count -= 1
        assert len(queue) == live_count
        assert queue.byte_length == live_bytes
    drain(queue)
    assert len(queue) == 0 and queue.byte_length == 0
