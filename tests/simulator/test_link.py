"""Tests for links: serialization, propagation, accounting, rate-capped queues."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Host
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, PacketQueue


class Recorder(Host):
    """A host that records packet arrival times."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.arrivals = []

    def receive(self, packet, from_link):
        self.arrivals.append((self.sim.now, packet))


def build_link(sim, capacity_bps=1e6, delay_s=0.01, queue=None):
    src = Recorder(sim, "src")
    dst = Recorder(sim, "dst")
    link = Link(sim, src, dst, capacity_bps, delay_s, queue=queue)
    return src, dst, link


def test_single_packet_delivery_time():
    sim = Simulator()
    _, dst, link = build_link(sim, capacity_bps=1e6, delay_s=0.01)
    link.send(Packet(src="src", dst="dst", size_bytes=1250))  # 10 ms serialization
    sim.run()
    assert len(dst.arrivals) == 1
    assert dst.arrivals[0][0] == pytest.approx(0.02, abs=1e-9)


def test_back_to_back_packets_serialize_sequentially():
    sim = Simulator()
    _, dst, link = build_link(sim, capacity_bps=1e6, delay_s=0.0)
    for _ in range(3):
        link.send(Packet(src="src", dst="dst", size_bytes=1250))
    sim.run()
    times = [t for t, _ in dst.arrivals]
    assert times == pytest.approx([0.01, 0.02, 0.03])


def test_throughput_limited_by_capacity():
    sim = Simulator()
    _, dst, link = build_link(sim, capacity_bps=1e6, delay_s=0.0,
                              queue=DropTailQueue(capacity_bytes=10**7))
    count = 100
    for _ in range(count):
        link.send(Packet(src="src", dst="dst", size_bytes=1250))
    sim.run()
    # 100 packets * 10 ms each = 1 second of transmission.
    assert sim.now == pytest.approx(1.0)
    assert link.bytes_delivered == count * 1250


def test_queue_overflow_drops_and_counts():
    sim = Simulator()
    queue = DropTailQueue(capacity_bytes=3 * 1500)
    _, dst, link = build_link(sim, capacity_bps=1e5, delay_s=0.0, queue=queue)
    for _ in range(10):
        link.send(Packet(src="src", dst="dst", size_bytes=1500))
    sim.run()
    assert link.drop_rate > 0
    assert len(dst.arrivals) < 10
    assert link.packets_offered == 10


def test_utilization_accounting():
    sim = Simulator()
    _, _, link = build_link(sim, capacity_bps=1e6, delay_s=0.0)
    link.send(Packet(src="src", dst="dst", size_bytes=12500))  # 0.1 s of a 1 Mbps link
    sim.run(until=1.0)
    assert link.utilization(since=0.0, now=1.0) == pytest.approx(0.1, rel=0.01)


def test_invalid_parameters_rejected():
    sim = Simulator()
    src, dst = Recorder(sim, "a"), Recorder(sim, "b")
    with pytest.raises(ValueError):
        Link(sim, src, dst, capacity_bps=0)
    with pytest.raises(ValueError):
        Link(sim, src, dst, capacity_bps=1e6, delay_s=-1)


class PacedQueue(PacketQueue):
    """A queue that withholds packets until a fixed ready time (cap modelling)."""

    def __init__(self, ready_at, sim):
        super().__init__()
        self.ready_at = ready_at
        self.sim = sim
        self._items = []

    def enqueue(self, packet):
        self._items.append(packet)
        self.stats.record_enqueue(packet)
        return True

    def dequeue(self):
        if self.sim.now < self.ready_at or not self._items:
            return None
        packet = self._items.pop(0)
        self.stats.record_dequeue(packet)
        return packet

    def time_until_ready(self):
        return max(self.ready_at - self.sim.now, 0.0) or None

    def __len__(self):
        return len(self._items)

    @property
    def byte_length(self):
        return sum(p.size_bytes for p in self._items)


def test_link_polls_rate_capped_queue_via_time_until_ready():
    sim = Simulator()
    src = Recorder(sim, "src")
    dst = Recorder(sim, "dst")
    queue = PacedQueue(ready_at=1.0, sim=sim)
    link = Link(sim, src, dst, capacity_bps=1e6, delay_s=0.0, queue=queue)
    link.send(Packet(src="src", dst="dst", size_bytes=1250))
    sim.run(until=5.0)
    # Without the poke mechanism the packet would be stuck forever.
    assert len(dst.arrivals) == 1
    assert dst.arrivals[0][0] >= 1.0


def test_default_queue_sized_to_200ms():
    sim = Simulator()
    _, _, link = build_link(sim, capacity_bps=8e6)
    # 0.2 s * 8 Mbps / 8 = 200 KB (the paper's Qlim).
    assert link.queue.capacity_bytes == pytest.approx(200_000)


def test_link_name_defaults_to_endpoints():
    sim = Simulator()
    _, _, link = build_link(sim)
    assert link.name == "src->dst"
