"""Tests for DRR and hierarchical fair queuing."""

from repro.simulator.fairqueue import (
    DRRQueue,
    HierarchicalFairQueue,
    per_destination_key,
    per_sender_key,
    per_source_as_key,
)
from repro.simulator.packet import Packet


def make_packet(src="s", dst="d", size=1500, src_as=None):
    return Packet(src=src, dst=dst, size_bytes=size, src_as=src_as)


def drain(queue, count=None):
    out = []
    while True:
        packet = queue.dequeue()
        if packet is None:
            break
        out.append(packet)
        if count is not None and len(out) >= count:
            break
    return out


def test_key_functions():
    packet = make_packet(src="alice", dst="bob", src_as="AS1")
    assert per_sender_key(packet) == "alice"
    assert per_destination_key(packet) == "bob"
    assert per_source_as_key(packet) == "AS1"


def test_source_as_key_falls_back_to_sender():
    packet = make_packet(src="alice", dst="bob", src_as=None)
    assert per_source_as_key(packet) == "alice"


def test_drr_single_flow_is_fifo():
    queue = DRRQueue()
    packets = [make_packet(src="a") for _ in range(4)]
    for packet in packets:
        queue.enqueue(packet)
    assert [p.uid for p in drain(queue)] == [p.uid for p in packets]


def test_drr_shares_service_between_flows():
    queue = DRRQueue(per_flow_capacity_bytes=100 * 1500)
    # Flow "hog" has 50 packets queued, flow "mouse" has 5.
    for _ in range(50):
        queue.enqueue(make_packet(src="hog"))
    for _ in range(5):
        queue.enqueue(make_packet(src="mouse"))
    first_ten = drain(queue, count=10)
    mouse_served = sum(1 for p in first_ten if p.src == "mouse")
    assert mouse_served >= 4  # roughly alternating service


def test_drr_respects_per_flow_capacity():
    queue = DRRQueue(per_flow_capacity_bytes=3 * 1500)
    accepted = sum(queue.enqueue(make_packet(src="a")) for _ in range(10))
    assert accepted == 3
    assert queue.stats.dropped == 7


def test_drr_byte_and_packet_counts():
    queue = DRRQueue()
    queue.enqueue(make_packet(src="a", size=1000))
    queue.enqueue(make_packet(src="b", size=500))
    assert len(queue) == 2
    assert queue.byte_length == 1500
    queue.dequeue()
    assert len(queue) == 1


def test_drr_active_flows():
    queue = DRRQueue()
    queue.enqueue(make_packet(src="a"))
    queue.enqueue(make_packet(src="b"))
    assert queue.active_flows == 2
    drain(queue)
    assert queue.active_flows == 0


def test_drr_fairness_with_unequal_packet_sizes():
    # Flow "big" sends 1500-byte packets, flow "small" 500-byte packets; over a
    # long drain both should receive roughly equal *bytes* of service.
    queue = DRRQueue(per_flow_capacity_bytes=1_000_000)
    for _ in range(300):
        queue.enqueue(make_packet(src="big", size=1500))
    for _ in range(900):
        queue.enqueue(make_packet(src="small", size=500))
    served = drain(queue, count=600)
    big_bytes = sum(p.size_bytes for p in served if p.src == "big")
    small_bytes = sum(p.size_bytes for p in served if p.src == "small")
    assert abs(big_bytes - small_bytes) / max(big_bytes, small_bytes) < 0.1


def test_drr_max_flows_limit():
    queue = DRRQueue(max_flows=2)
    assert queue.enqueue(make_packet(src="a"))
    assert queue.enqueue(make_packet(src="b"))
    assert not queue.enqueue(make_packet(src="c"))


def test_drr_interleaves_many_flows():
    queue = DRRQueue()
    for flow in ("a", "b", "c"):
        for _ in range(3):
            queue.enqueue(make_packet(src=flow))
    served = [p.src for p in drain(queue, count=3)]
    assert set(served) == {"a", "b", "c"}


# ---------------------------------------------------------------------------
# HierarchicalFairQueue
# ---------------------------------------------------------------------------

def test_hierarchical_shares_across_ases_first():
    queue = HierarchicalFairQueue(per_flow_capacity_bytes=1_000_000)
    # AS1 has ten senders with lots of traffic; AS2 has one sender.
    for sender in range(10):
        for _ in range(20):
            queue.enqueue(make_packet(src=f"as1_h{sender}", src_as="AS1"))
    for _ in range(50):
        queue.enqueue(make_packet(src="as2_h0", src_as="AS2"))
    served = drain(queue, count=40)
    as2_share = sum(1 for p in served if p.src_as == "AS2") / len(served)
    assert 0.35 <= as2_share <= 0.65  # level-1 fairness: ~half the service


def test_hierarchical_within_as_is_per_sender_fair():
    queue = HierarchicalFairQueue(per_flow_capacity_bytes=1_000_000)
    for _ in range(50):
        queue.enqueue(make_packet(src="hog", src_as="AS1"))
    for _ in range(10):
        queue.enqueue(make_packet(src="mouse", src_as="AS1"))
    served = drain(queue, count=16)
    assert sum(1 for p in served if p.src == "mouse") >= 6


def test_hierarchical_counts():
    queue = HierarchicalFairQueue()
    queue.enqueue(make_packet(src="a", src_as="AS1"))
    queue.enqueue(make_packet(src="b", src_as="AS2"))
    assert len(queue) == 2
    assert queue.active_level1_buckets == 2
    drain(queue)
    assert len(queue) == 0


def test_hierarchical_per_flow_capacity_enforced():
    queue = HierarchicalFairQueue(per_flow_capacity_bytes=2 * 1500)
    accepted = sum(queue.enqueue(make_packet(src="a", src_as="AS1")) for _ in range(5))
    assert accepted == 2
    assert queue.stats.dropped == 3


def test_hierarchical_empty_dequeue():
    assert HierarchicalFairQueue().dequeue() is None
