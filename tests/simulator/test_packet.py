"""Tests for packets and header bookkeeping."""

from repro.simulator.packet import (
    ACK_PACKET_SIZE,
    DATA_PACKET_SIZE,
    REQUEST_PACKET_SIZE,
    Packet,
    PacketType,
)


def test_default_packet_is_regular_data_size():
    packet = Packet(src="a", dst="b")
    assert packet.is_regular
    assert packet.size_bytes == DATA_PACKET_SIZE


def test_packet_uids_are_unique():
    first = Packet(src="a", dst="b")
    second = Packet(src="a", dst="b")
    assert first.uid != second.uid


def test_packet_type_predicates():
    request = Packet(src="a", dst="b", ptype=PacketType.REQUEST)
    legacy = Packet(src="a", dst="b", ptype=PacketType.LEGACY)
    assert request.is_request and not request.is_regular and not request.is_legacy
    assert legacy.is_legacy and not legacy.is_request


def test_headers_set_and_get():
    packet = Packet(src="a", dst="b")
    packet.set_header("netfence", {"x": 1})
    assert packet.get_header("netfence") == {"x": 1}
    assert packet.get_header("missing") is None


def test_copy_for_reply_swaps_addressing():
    packet = Packet(src="a", dst="b", flow_id="f1", src_as="AS-a", dst_as="AS-b",
                    protocol="tcp")
    reply = packet.copy_for_reply()
    assert (reply.src, reply.dst) == ("b", "a")
    assert (reply.src_as, reply.dst_as) == ("AS-b", "AS-a")
    assert reply.flow_id == "f1"
    assert reply.size_bytes == ACK_PACKET_SIZE


def test_copy_for_reply_does_not_share_headers():
    packet = Packet(src="a", dst="b")
    packet.set_header("h", object())
    reply = packet.copy_for_reply()
    assert reply.get_header("h") is None


def test_paper_packet_size_constants():
    # §4.6: a request packet is 92 bytes (40 TCP/IP + 28 NetFence + 24 Passport).
    assert REQUEST_PACKET_SIZE == 92
    assert DATA_PACKET_SIZE == 1500
